"""Pytest bootstrap: make ``src/`` importable without an installed package.

The project is normally installed with ``pip install -e .``; this shim keeps
``pytest`` working in fully offline environments where the editable install
cannot build its metadata (no wheel available).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
