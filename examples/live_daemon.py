#!/usr/bin/env python3
"""Always-on streaming ingestion (the live half of SWIFT).

Runs the ingestion daemon end to end over rate-controlled synthetic
feeds — one reader per BGP session, bounded-queue backpressure, crash-safe
rolling columnar segments checkpointed in ``MANIFEST.json`` — then:

* verifies every sealed segment's CRC against the manifest,
* replays the ingested windows live (:class:`repro.ingest.LiveReplay`)
  and checks the result is **byte-identical** to an offline replay of the
  same stream, and
* demonstrates crash recovery: a writer is abandoned mid-segment with a
  torn frame appended to its log (what ``kill -9`` mid-append leaves
  behind), and :func:`repro.ingest.recover_feed` rebuilds exactly the
  acknowledged rows.

Run with:  python examples/live_daemon.py [duration_days] [segment_rows] [rate]

Defaults ingest two 0.2-day sessions unthrottled; pass a rate (lines/s per
feed) to watch the pacing. The smoke test runs
``python examples/live_daemon.py 0.05 40``.
"""

import io
import os
import pickle
import sys
import tempfile

sys.path.insert(0, "src")

from repro.ingest import (
    IngestConfig,
    IngestDaemon,
    Manifest,
    SegmentWriter,
    SyntheticFeed,
    recover_feed,
    replay_feed,
)
from repro.experiments.month_replay import replay_stream
from repro.traces.mrt import TraceReader
from repro.traces.synthetic import SyntheticTraceConfig, SyntheticTraceGenerator
from repro.traces.validation import ValidationReport


def main() -> None:
    duration_days = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    segment_rows = int(sys.argv[2]) if len(sys.argv) > 2 else 100
    rate = float(sys.argv[3]) if len(sys.argv) > 3 else 0.0

    config = SyntheticTraceConfig(
        peer_count=2,
        duration_days=duration_days,
        min_table_size=120,
        max_table_size=260,
        burst_size_minimum=60,
        noise_rate_per_second=0.02,
        seed=11,
    )
    peers = [peer.peer_as for peer in SyntheticTraceGenerator(config).stream().peers]
    feeds = [
        SyntheticFeed(config, peer_as, rate=rate or None) for peer_as in peers
    ]

    with tempfile.TemporaryDirectory(prefix="live-ingest-") as root:
        print(f"ingesting {len(feeds)} live feeds into {root} "
              f"(segment_rows={segment_rows}, rate={rate or 'unthrottled'})...")
        result = IngestDaemon(
            root,
            feeds,
            IngestConfig(flush_rows=16, segment_rows=segment_rows, queue_size=64),
        ).run()
        for name in sorted(result.feeds):
            status = result.feeds[name]
            print(f"  {name}: {status.rows_acked} rows across "
                  f"{status.segments_sealed} sealed segments "
                  f"(queue high-water {status.queue_high_water}, "
                  f"restarts {status.restarts})")

        manifest = Manifest.load(root)
        checked = manifest.verify()
        print(f"manifest integrity: {checked} sealed segments verified (CRC + size)")

        # Live windowed replay vs offline whole-stream replay, byte for byte.
        feed = feeds[0]
        lines = [line for _, line in SyntheticFeed(config, feed.peer_as).connect()]
        stream = TraceReader(
            io.StringIO("".join(line + "\n" for line in lines))
        ).read_columnar(report=ValidationReport(lenient=True))
        rib = feed.rib()
        offline = replay_stream(stream, rib, feed.peer_as, collect_events=True)
        live = replay_feed(root, feed.name, rib, feed.peer_as, collect_events=True)
        identical = pickle.dumps(live.signature()) == pickle.dumps(offline.signature())
        print(f"live windowed replay byte-identical to offline replay: {identical}")

        # Crash recovery: abandon a writer mid-segment with a torn frame —
        # the on-disk state a kill -9 mid-append leaves behind.
        crash_manifest = Manifest.load(root)
        writer = SegmentWriter(root, "crash-demo", crash_manifest)
        for offset, line in enumerate(lines[:40]):
            writer.add_line(offset, line)
        writer.flush()          # fsync: these 40 lines are acknowledged
        acked = writer.rows_acked
        for offset in range(40, 50):
            writer.add_line(offset, lines[offset])   # never flushed
        log_path = os.path.join(root, "crash-demo", "seg-00000.log")
        with open(log_path, "ab") as handle:
            handle.write(b"\x99\x00\x00\x00TORN")    # torn mid-append frame
        recovery = recover_feed(root, "crash-demo", crash_manifest)
        print(f"crash recovery: {acked} rows acknowledged before the crash, "
              f"{len(recovery.open_lines)} lines recovered from the log "
              f"(torn tail truncated, unflushed rows correctly absent)")

    print("done.")


if __name__ == "__main__":
    main()
