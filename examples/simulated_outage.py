#!/usr/bin/env python3
"""Simulated Internet outage: generate an AS-level topology, fail a link and
watch SWIFT localise the failure from a vantage point — the §6.1/§6.2.2
C-BGP-style pipeline.

The script builds a tiered, power-law AS topology (the paper uses 1,000 ASes
with 20 prefixes each), computes valley-free routing, picks a vantage session
and injects random link failures.  For each resulting burst it runs the
inference at the end of the burst and after the first 200 withdrawals, and
reports whether the inferred links contain (or neighbour) the true failure.

Run with:  python examples/simulated_outage.py [as_count]

``as_count`` (default 300) sizes the topology; the failure filter scales
with it so tiny runs (e.g. ``python examples/simulated_outage.py 80``)
still find analysable bursts.
"""

import sys

sys.path.insert(0, "src")

from repro.core.fit_score import FitScoreCalculator
from repro.bgp.messages import Update
from repro.simulation import LinkFailure, PropagationSimulator, VantagePoint
from repro.topology.generator import TopologyConfig, generate_topology


def main() -> None:
    as_count = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    config = TopologyConfig(as_count=as_count, prefixes_per_as=10, seed=42)
    graph = generate_topology(config)
    print(f"generated topology: {graph.as_count} ASes, {graph.link_count} links, "
          f"average degree {graph.average_degree:.1f}, "
          f"{graph.total_prefix_count()} prefixes")

    simulator = PropagationSimulator(graph, seed=42)

    # Vantage point: a peering (p2p) session of a well-connected AS — the peer
    # only exports its customer cone, so cone failures become withdrawals.
    vantage = None
    best_degree = -1
    for link in graph.links():
        if link.relationship.value != "p2p":
            continue
        a, b = link.endpoints
        if graph.degree(b) > best_degree:
            best_degree = graph.degree(b)
            vantage = VantagePoint(local_as=a, peer_as=b)
    assert vantage is not None
    print(f"vantage point: AS {vantage.local_as} observing its peer AS {vantage.peer_as} "
          f"(degree {best_degree})\n")

    min_withdrawals = 40 if as_count >= 200 else 10
    failures = simulator.random_failures(
        vantage, count=5, min_withdrawals=min_withdrawals, seed=1
    )
    for failure in failures:
        burst = simulator.simulate(failure, vantage)
        if burst.withdrawal_count < min(20, min_withdrawals):
            continue
        rib = {p: a.as_path for p, a in burst.initial_rib.items()}
        calculator = FitScoreCalculator(rib)
        early_links = None
        seen = 0
        for message in burst.messages:
            if isinstance(message, Update):
                for prefix in message.withdrawals:
                    calculator.record_withdrawal(prefix)
                    seen += 1
                    if seen == 200 and early_links is None:
                        scores = calculator.all_scores()
                        top = scores[0].fit_score
                        early_links = [s.links[0] for s in scores if s.fit_score >= top - 1e-9]
                for announcement in message.announcements:
                    calculator.record_update(
                        announcement.prefix, announcement.attributes.as_path
                    )
        scores = calculator.all_scores()
        top = scores[0].fit_score
        final_links = [s.links[0] for s in scores if s.fit_score >= top - 1e-9]
        failed = burst.ground_truth.failed_links[0]
        contains = failed in final_links
        adjacent = any(set(failed) & set(link) for link in final_links)
        print(f"failure of link {failed}: "
              f"{burst.withdrawal_count} withdrawals, {burst.update_count} path updates, "
              f"{burst.duration:.1f} s")
        print(f"    end-of-burst inference: {final_links[:4]}"
              f"{' ...' if len(final_links) > 4 else ''} "
              f"-> {'contains' if contains else ('adjacent to' if adjacent else 'misses')} "
              "the failed link")
        if early_links is not None:
            early_adjacent = any(set(failed) & set(link) for link in early_links)
            print(f"    after 200 withdrawals: {len(early_links)} candidate link(s), "
                  f"{'safe' if early_adjacent else 'unsafe'} to reroute around")
        print()


if __name__ == "__main__":
    main()
