#!/usr/bin/env python3
"""Case study (§7): SWIFTing an unmodified router with a controller + switch.

Reproduces the Fig. 9(a) experiment at configurable scale: a router announcing
N prefixes loses the remote link (5, 6); the vanilla router converges one
prefix at a time while the SWIFTED deployment (SWIFT controller + SDN switch)
reroutes everything within a couple of seconds.

Run with:  python examples/case_study_speedup.py [prefix_count]

Below ~20k prefixes the detection/triggering thresholds scale down with the
table so tiny runs (e.g. the smoke test's 2000-prefix variant) still fire.
"""

import sys

sys.path.insert(0, "src")

from repro.casestudy.controller import SwiftedDeployment
from repro.casestudy.testbed import build_fig1_scenario
from repro.casestudy.vanilla import VanillaRouterModel
from repro.core import InferenceConfig, SwiftConfig
from repro.core.burst_detection import BurstDetectorConfig
from repro.core.history import TriggeringSchedule


def main() -> None:
    prefix_count = int(sys.argv[1]) if len(sys.argv) > 1 else 100000
    scenario = build_fig1_scenario(prefix_count=prefix_count, probe_count=100, seed=7)
    print(f"scenario: AS 6 announces {prefix_count} prefixes, link (5, 6) fails, "
          f"{len(scenario.probe_prefixes)} probes")

    model = VanillaRouterModel()
    vanilla = model.converge_scenario(scenario)
    print(f"\nvanilla router: full convergence in "
          f"{vanilla.total_convergence_seconds:.1f} s "
          f"(paper measures 109 s for 290k prefixes)")
    # Same outage through a real BGP speaker: the whole burst goes through
    # the batched path (one best-path selection per touched prefix) and only
    # prefixes whose best route genuinely moved count as recovered.
    speaker_based = model.converge_scenario_with_speaker(scenario)
    print(f"    (speaker-based replay, batched decision path: "
          f"{speaker_based.total_convergence_seconds:.1f} s, "
          f"{len(speaker_based.recovery_time_of)} prefixes recovered)")

    # The SWIFTED deployment replays the same burst in columnar form.  For
    # tables too small to reach the paper's 2,500-withdrawal trigger, scale
    # the thresholds with the table instead of silently never firing.
    config = None
    if prefix_count < 20000:
        trigger = max(50, prefix_count // 4)
        config = SwiftConfig(
            inference=InferenceConfig(
                detector=BurstDetectorConfig(
                    start_threshold=max(10, prefix_count // 10)
                ),
                schedule=TriggeringSchedule(
                    steps=((trigger, max(10 * trigger, 10000)),),
                    unconditional_after=2 * trigger,
                ),
            )
        )
    deployment = SwiftedDeployment.for_scenario(scenario, config=config)
    swift_seconds = deployment.run_burst(scenario)
    print(f"SWIFTED router: affected traffic rerouted after {swift_seconds:.2f} s")
    action, completion = deployment.controller.reroute_completions[0]
    print(f"    inferred links {action.inferred_links}, "
          f"{action.rule_count} flow rules pushed to the switch, "
          f"{deployment.controller.switch.rule_count} rules installed in total")

    speedup = 100.0 * (1.0 - swift_seconds / vanilla.total_convergence_seconds)
    print(f"\nconvergence speed-up: {speedup:.1f}% (paper: ~98%)")

    # Loss over time, as in Fig. 9(a).
    print("\npacket loss over time (vanilla router):")
    recoveries = [
        scenario.failure_time + d for d in vanilla.probe_downtimes(scenario.probe_prefixes)
    ]
    from repro.metrics.convergence import downtime_series

    for t, loss in downtime_series(recoveries, step=max(1.0, vanilla.total_convergence_seconds / 10)):
        bar = "#" * int(loss / 5)
        print(f"  t={t:6.1f}s  {loss:5.1f}% {bar}")


if __name__ == "__main__":
    main()
