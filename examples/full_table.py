"""Provision a SWIFT router from an internet-scale (DFZ-shaped) full table.

Walks the whole full-table pipeline at a configurable scale:

1. synthesise a DFZ-shaped table (power-law origins, /8-/24 length mix,
   heavy subnet nesting) with :class:`repro.traces.fulltable.FullTableGenerator`,
2. stream every peer's full feed through the columnar substrate into a
   :class:`repro.bgp.speaker.BGPSpeaker`,
3. bulk-build the path-compressed Loc-RIB trie and answer longest-prefix-match
   queries from it, comparing its footprint against the per-bit reference trie,
4. compute the covering-prefix *aggregated* backup table, which stores one
   entry per profile-change point instead of one per prefix.

Usage::

    python examples/full_table.py [prefix_count] [peer_count]

Defaults to 150k prefixes over 3 feeds (~10 s); the 1M-prefix version of
this pipeline runs in ``benchmarks/test_bench_fulltable.py`` and records its
numbers in ``BENCH_fulltable.json``.
"""

import random
import sys
import time

sys.path.insert(0, "src")

from repro.bgp.prefix import random_addresses
from repro.bgp.speaker import BGPSpeaker
from repro.bgp.trie import PrefixTrie
from repro.bgp.trie_reference import ReferencePrefixTrie
from repro.core.backup import BackupComputer
from repro.traces.fulltable import FullTableConfig, FullTableGenerator

LOCAL_AS = 65000


def main() -> None:
    prefix_count = int(sys.argv[1]) if len(sys.argv) > 1 else 150_000
    peer_count = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    config = FullTableConfig(prefix_count=prefix_count, peer_count=peer_count)
    started = time.perf_counter()
    table = FullTableGenerator(config).generate()
    print(
        f"generated {len(table):,}-prefix table "
        f"({table.nested_count():,} nested) in {time.perf_counter() - started:.2f}s"
    )

    speaker = BGPSpeaker(local_as=LOCAL_AS)
    for peer_as in table.peers:
        speaker.add_peer(peer_as)
    started = time.perf_counter()
    speaker.receive_columnar(table.columnar_table())
    feed_seconds = time.perf_counter() - started
    print(
        f"loaded {peer_count} full feeds ({peer_count * len(table):,} messages) "
        f"in {feed_seconds:.2f}s"
    )

    started = time.perf_counter()
    best_trie = speaker.loc_rib.best_trie()
    print(
        f"bulk-built compressed Loc-RIB trie in {time.perf_counter() - started:.2f}s: "
        f"{best_trie.node_count():,} nodes, "
        f"{best_trie.memory_bytes() / 1e6:.1f} MB for {len(best_trie):,} routes"
    )

    # Footprint vs the per-bit reference on a sparse sample (a full per-bit
    # build at internet scale is exactly the explosion we are avoiding).
    rng = random.Random(7)
    sample_size = min(10_000, len(table))
    indexes = sorted(rng.sample(range(len(table)), sample_size))
    sample = [(table.prefixes[index], index) for index in indexes]
    compressed = PrefixTrie()
    compressed.build_from_sorted(sample)
    reference = ReferencePrefixTrie()
    for prefix, value in sample:
        reference.insert(prefix, value)
    print(
        f"{sample_size:,}-prefix sample: per-bit reference holds "
        f"{reference.memory_bytes() / compressed.memory_bytes():.1f}x the memory "
        f"({reference.node_count():,} vs {compressed.node_count():,} nodes)"
    )

    addresses = random_addresses(
        table.prefixes[:: max(1, len(table) // 20_000)], 50_000, random.Random(3)
    )
    started = time.perf_counter()
    for address in addresses:
        best_trie.lookup(address)
    rate = len(addresses) / (time.perf_counter() - started)
    print(f"LPM over the full table: {rate:,.0f} lookups/s")

    best = {entry.prefix: entry for entry in speaker.loc_rib.best_entries()}
    computer = BackupComputer()
    started = time.perf_counter()
    aggregated = computer.compute_table_aggregated(
        LOCAL_AS, best, speaker.alternate_routes, speaker.loc_rib.candidate_map
    )
    print(
        f"aggregated backup table in {time.perf_counter() - started:.2f}s: "
        f"{aggregated.source_entry_count:,} per-prefix entries collapsed to "
        f"{aggregated.entry_count:,} ({aggregated.reduction():.1f}x reduction)"
    )
    example = table.prefixes[len(table) // 2]
    selections = aggregated.selections_for(example)
    print(
        f"backups for {example}: "
        + (
            ", ".join(
                f"link {link} -> via AS{selection.next_hop}"
                for link, selection in sorted(selections.items())
            )
            or "(none)"
        )
    )


if __name__ == "__main__":
    main()
