#!/usr/bin/env python3
"""Trace analysis: extract bursts from a (synthetic) collector feed and
evaluate SWIFT's inference on them — the §2.2 + §6.2 pipeline.

The script generates a multi-session trace calibrated to the burst statistics
of the paper's RouteViews / RIPE RIS dataset, writes one session to the MRT-
like on-disk format, reads it back, extracts bursts with the 10 s sliding
window (start threshold 1,500 withdrawals, stop threshold 9) and runs the
SWIFT inference engine on each extracted burst, reporting TPR/FPR.

Run with:  python examples/trace_analysis.py [peer_count] [duration_days]

Defaults reproduce the §2.2/§6.2 setting (6 sessions, 10 days); the smoke
test runs a tiny ``python examples/trace_analysis.py 2 2`` variant.
"""

import os
import sys
import tempfile

sys.path.insert(0, "src")

from repro.core.inference import InferenceConfig, InferenceEngine
from repro.metrics.classification import classify_inference
from repro.traces.bursts import BurstExtractor
from repro.traces.mrt import TraceReader, TraceWriter, messages_to_records, records_to_messages
from repro.traces.synthetic import SyntheticTraceConfig, SyntheticTraceGenerator


def main() -> None:
    config = SyntheticTraceConfig(
        peer_count=int(sys.argv[1]) if len(sys.argv) > 1 else 6,
        duration_days=float(sys.argv[2]) if len(sys.argv) > 2 else 10,
        min_table_size=4000,
        max_table_size=20000,
        noise_rate_per_second=0.02,
        seed=17,
    )
    trace = SyntheticTraceGenerator(config).generate()
    print(f"generated {trace.burst_count} bursts across {len(trace.peers)} sessions")

    # Pick the busiest session and round-trip its stream through the trace format.
    peer = max(trace.peers, key=lambda p: len(trace.bursts_of(p.peer_as)))
    messages = trace.messages_of(peer.peer_as)
    with tempfile.NamedTemporaryFile("w", suffix=".trace", delete=False) as handle:
        path = handle.name
        TraceWriter(handle).write_all(messages_to_records(messages))
    replayed = records_to_messages(TraceReader(path).read_all())
    os.unlink(path)
    print(f"session AS{peer.peer_as}: {len(replayed)} messages round-tripped via {path!r}")

    # Extract bursts with the paper's sliding-window detection.
    bursts = BurstExtractor().extract(replayed, peer_as=peer.peer_as)
    print(f"extracted {len(bursts)} bursts (>=1.5k withdrawals per 10 s window)\n")

    rib = trace.rib_of(peer.peer_as)
    session_prefixes = list(rib)
    for index, burst in enumerate(bursts):
        engine = InferenceEngine(rib, config=InferenceConfig())
        engine.process_stream(burst.messages)
        result = engine.accepted_inference
        if result is None:
            print(f"burst {index}: {burst.size} withdrawals - below the triggering "
                  "threshold, no fast-reroute")
            continue
        counts = classify_inference(
            result.prediction.predicted_prefixes,
            burst.withdrawn_prefixes,
            session_prefixes,
        )
        head, middle, tail = burst.head_middle_tail()
        print(
            f"burst {index}: {burst.size} withdrawals over {burst.duration:.1f} s "
            f"(head/middle/tail {head:.0%}/{middle:.0%}/{tail:.0%})\n"
            f"    inferred links {result.inferred_links} after "
            f"{result.withdrawals_seen} withdrawals "
            f"({result.inference_delay:.1f} s into the burst)\n"
            f"    TPR {100 * counts.tpr:.1f}%  FPR {100 * counts.fpr:.2f}%  "
            f"rerouted {counts.predicted_count} prefixes"
        )


if __name__ == "__main__":
    main()
