#!/usr/bin/env python3
"""Fleet-parallel month replay (§6 at corpus scale).

Replays every session of a synthetic corpus concurrently — one worker
process per session, streams shipped as raw columnar buffers — and checks
the aggregate against the sequential baseline, the determinism property the
fleet driver guarantees.  Also demonstrates a partial (time-window) load of
a cached month stream straight off the mmap-backed column store, and the
driver's self-healing: a seeded fault plan crashes one worker's first
attempt, the retry heals it, and the result stays byte-identical.

Run with:  python examples/fleet_replay.py [workers] [duration_days] [table_size]

Defaults replay the 4-session, 4-day corpus of the fleet parity suite; the
smoke test's ``python examples/fleet_replay.py 2 0.5 400`` variant shrinks
both the streams and the per-session tables.
"""

import pickle
import sys

sys.path.insert(0, "src")

from repro.replay import build_session_jobs, format_fleet_result, replay_jobs
from repro.testing.faults import FaultPlan, FaultSpec
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    SyntheticTraceGenerator,
    cached_columnar_stream_file,
)


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    duration_days = float(sys.argv[2]) if len(sys.argv) > 2 else 4.0
    table_size = int(sys.argv[3]) if len(sys.argv) > 3 else 1500
    config = SyntheticTraceConfig(
        peer_count=4,
        duration_days=duration_days,
        min_table_size=table_size,
        max_table_size=max(table_size + 1, int(table_size * 8 / 3)),
        burst_size_minimum=400,
        noise_rate_per_second=0.01,
        seed=17,
    )
    print(f"packaging {config.peer_count} sessions ({config.duration_days:g} days each)...")
    jobs = build_session_jobs(config)

    fleet = replay_jobs(jobs, workers=workers, swifted=False)
    print(format_fleet_result(fleet))

    sequential = replay_jobs(jobs, workers=1, swifted=False)
    identical = pickle.dumps(fleet.signature()) == pickle.dumps(sequential.signature())
    print(f"byte-identical to sequential replay: {identical}")
    print(f"sequential {sequential.wall_seconds:.2f} s -> "
          f"{workers} workers {fleet.wall_seconds:.2f} s")

    # Self-healing: crash the first session's first attempt; the retry
    # recovers and the signature still matches the fault-free run.
    plan = FaultPlan(
        specs=(
            FaultSpec("crash", "fleet.worker", times=1, match=f"session:{jobs[0].peer_as}"),
        )
    )
    healed = replay_jobs(jobs, workers=workers, swifted=False, fault_plan=plan)
    healed_identical = (
        pickle.dumps(healed.signature()) == pickle.dumps(sequential.signature())
    )
    print(f"injected 1 worker crash: {healed.retries} retry(s), "
          f"degraded={healed.degraded}, still byte-identical: {healed_identical}")

    # Partial load: one day of the first session, straight off the mmap store.
    peer_as = SyntheticTraceGenerator(config).stream().peers[0].peer_as
    store = cached_columnar_stream_file(config, peer_as)
    if store is None:
        print("trace cache disabled or unwritable; skipping the window-load demo")
        return
    try:
        day = store.window(0.0, 86400.0)
        print(f"\nwindow load of session {peer_as}, day 1: "
              f"{day.message_count} of {store.message_count} messages, "
              f"{store.bytes_read} of {store.file_size} bytes read "
              f"({store.bytes_read / store.file_size:.1%})")
    finally:
        store.close()


if __name__ == "__main__":
    main()
