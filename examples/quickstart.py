#!/usr/bin/env python3
"""Quickstart: SWIFT a border router and fast-reroute around a remote outage.

This example rebuilds the paper's running example (Fig. 1) at router level:
the AS 1 border router peers with AS 2, AS 3 and AS 4 and prefers AS 2 to
reach the prefixes of AS 6, 7 and 8.  The remote link (5, 6) then fails and a
burst of withdrawals arrives on the AS 2 session.  A vanilla router would
lose traffic until it has processed every withdrawal; the SWIFTED router
infers the failure from the first few thousand messages and reroutes all the
affected prefixes to AS 3 with a couple of wildcard rules.

Run with:  python examples/quickstart.py [prefix_count]

``prefix_count`` (default 10000) is the total table size; the detection and
triggering thresholds scale with it, so tiny runs (e.g. the smoke test's
``python examples/quickstart.py 600``) exercise the same pipeline.
"""

import random
import sys

sys.path.insert(0, "src")

from repro.bgp.attributes import ASPath
from repro.bgp.messages import Update
from repro.bgp.prefix import prefix_block
from repro.core import EncoderConfig, InferenceConfig, SwiftConfig, SwiftedRouter
from repro.core.burst_detection import BurstDetectorConfig
from repro.core.history import TriggeringSchedule
from repro.dataplane.timing import FibUpdateTimingModel


def main() -> None:
    total = int(sys.argv[1]) if len(sys.argv) > 1 else 10000
    # --- the routes the router learned before the outage -------------------
    s6 = prefix_block("60.0.0.0/24", (total * 6) // 10)  # originated by AS 6
    s7 = prefix_block("70.0.0.0/24", (total * 3) // 10)  # originated by AS 7
    s8 = prefix_block("80.0.0.0/24", total // 10)        # originated by AS 8
    all_prefixes = s6 + s7 + s8

    # Paper thresholds at full scale (1,500-withdrawal detection, 2,500
    # trigger), scaled down proportionally for smaller tables.
    trigger = max(50, total // 4)
    router = SwiftedRouter(
        local_as=1,
        config=SwiftConfig(
            inference=InferenceConfig(
                detector=BurstDetectorConfig(
                    start_threshold=max(10, (total * 3) // 20)
                ),
                schedule=TriggeringSchedule(
                    steps=((trigger, max(10 * trigger, 10000)),),
                    unconditional_after=2 * trigger,
                ),
            ),
            encoder=EncoderConfig(prefix_threshold=max(50, total // 20)),
        ),
    )
    for peer in (2, 3, 4):
        router.add_peer(peer)

    def routes(first_hops):
        table = {}
        for prefix in s6:
            table[prefix] = ASPath(first_hops + [6])
        for prefix in s7:
            table[prefix] = ASPath(first_hops + [6, 7])
        for prefix in s8:
            table[prefix] = ASPath(first_hops + [6, 8])
        return table

    router.load_initial_routes(2, routes([2, 5]), local_pref=200)  # preferred
    router.load_initial_routes(3, routes([3]), local_pref=100)
    router.load_initial_routes(4, routes([4, 5]), local_pref=150)

    # --- provision SWIFT: backups, tags, default rules ----------------------
    encoded = router.provision()
    print(f"provisioned {len(encoded.tags)} tags, "
          f"{len(encoded.encoded_links)} (link, position) identifiers")
    print(f"pre-failure next-hop for {s6[0]}: AS {router.forward(s6[0].network)}")

    # --- the remote outage: link (5, 6) fails --------------------------------
    rng = random.Random(1)
    affected = list(all_prefixes)
    rng.shuffle(affected)
    burst = [
        Update.withdraw(100.0 + index / 5000.0, 2, prefix)
        for index, prefix in enumerate(affected)
    ]

    actions = router.receive_all(burst)
    action = actions[0]
    timing = FibUpdateTimingModel()
    print("\n--- SWIFT fast-reroute fired ---")
    print(f"inferred failed links : {action.inferred_links}")
    print(f"rules installed       : {action.rule_count}")
    print(f"prefixes rerouted     : {len(action.rerouted_prefixes)}")
    print(f"data-plane update     : {1000 * action.dataplane_update_seconds:.1f} ms")
    print(f"post-reroute next-hop for {s6[0]}: AS {router.forward(s6[0].network)}")
    vanilla_seconds = timing.per_prefix_convergence_time(len(all_prefixes))
    swift_seconds = action.timestamp - 100.0 + action.dataplane_update_seconds
    print(f"\nvanilla convergence for {len(all_prefixes)} prefixes: "
          f"~{vanilla_seconds:.1f} s")
    print(f"SWIFT convergence: ~{swift_seconds:.2f} s "
          f"({100 * (1 - swift_seconds / vanilla_seconds):.0f}% faster)")

    # --- BGP eventually reconverges: fall back to the BGP state --------------
    router.clear_reroutes()
    print(f"\nafter BGP reconvergence, next-hop for {s6[0]}: "
          f"AS {router.forward(s6[0].network)} (BGP state restored)")


if __name__ == "__main__":
    main()
