"""Burst extraction from BGP message streams.

§2.2.1 of the paper: "We extracted the bursts using a 10 s sliding window: a
burst starts (resp. stops) when the number of withdrawals contained in the
window is above (resp. below) a given threshold.  We choose 1,500 and 9
withdrawals for the start and stop threshold respectively."

:class:`BurstExtractor` implements that detection, plus the per-burst
statistics the paper reports: size, duration, head/middle/tail split and
popular-origin membership.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.messages import BGPMessage, Update
from repro.bgp.prefix import Prefix
from repro.traces.popularity import is_popular_asn

__all__ = ["Burst", "BurstExtractionConfig", "BurstExtractor"]


@dataclass(frozen=True)
class BurstExtractionConfig:
    """Sliding-window parameters (paper defaults)."""

    window_seconds: float = 10.0
    start_threshold: int = 1500
    stop_threshold: int = 9

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.start_threshold <= self.stop_threshold:
            raise ValueError("start_threshold must exceed stop_threshold")


@dataclass
class Burst:
    """A detected burst of withdrawals on one session."""

    peer_as: int
    messages: List[BGPMessage]
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        """Burst duration in seconds."""
        return max(0.0, self.end_time - self.start_time)

    @property
    def withdrawals(self) -> List[Tuple[float, Prefix]]:
        """Every withdrawal in the burst as ``(timestamp, prefix)``."""
        result: List[Tuple[float, Prefix]] = []
        for message in self.messages:
            if isinstance(message, Update):
                for prefix in message.withdrawals:
                    result.append((message.timestamp, prefix))
        return result

    @property
    def withdrawn_prefixes(self) -> FrozenSet[Prefix]:
        """The set of withdrawn prefixes."""
        return frozenset(prefix for _, prefix in self.withdrawals)

    @property
    def size(self) -> int:
        """Burst size, counted as the number of withdrawals (paper convention)."""
        return sum(
            len(m.withdrawals) for m in self.messages if isinstance(m, Update)
        )

    @property
    def announcement_count(self) -> int:
        """Number of announcements (path updates) interleaved in the burst."""
        return sum(
            len(m.announcements) for m in self.messages if isinstance(m, Update)
        )

    def head_middle_tail(self) -> Tuple[float, float, float]:
        """Fractions of withdrawals in the first, second and last third.

        Reproduces the paper's head/middle/tail analysis ("50% of the bursts
        have at least 26% of their withdrawals in the middle").
        """
        withdrawals = self.withdrawals
        if not withdrawals or self.duration <= 0:
            return (1.0, 0.0, 0.0)
        third = self.duration / 3.0
        head = middle = tail = 0
        for timestamp, _ in withdrawals:
            offset = timestamp - self.start_time
            if offset < third:
                head += 1
            elif offset < 2 * third:
                middle += 1
            else:
                tail += 1
        total = len(withdrawals)
        return (head / total, middle / total, tail / total)

    def touches_popular_origin(
        self, rib: Optional[Dict[Prefix, ASPath]] = None
    ) -> bool:
        """True if the burst withdraws a prefix announced by a popular origin.

        ``rib`` maps prefixes to their pre-burst AS paths; when provided, the
        origin AS of each withdrawn prefix is looked up there.  Announcements
        inside the burst are also checked directly.
        """
        if rib:
            for prefix in self.withdrawn_prefixes:
                path = rib.get(prefix)
                if path is not None and path.origin_as is not None:
                    if is_popular_asn(path.origin_as):
                        return True
        for message in self.messages:
            if isinstance(message, Update):
                for announcement in message.announcements:
                    origin = announcement.attributes.as_path.origin_as
                    if origin is not None and is_popular_asn(origin):
                        return True
        return False


class BurstExtractor:
    """Extracts bursts from a message stream with the paper's sliding window."""

    def __init__(self, config: Optional[BurstExtractionConfig] = None) -> None:
        self.config = config or BurstExtractionConfig()

    def extract(
        self, messages: Sequence[BGPMessage], peer_as: Optional[int] = None
    ) -> List[Burst]:
        """Detect the bursts in a (sorted) message stream.

        Parameters
        ----------
        messages:
            The message stream, sorted by timestamp.
        peer_as:
            When provided, only messages from this peer are considered (a
            stream can interleave several sessions).
        """
        config = self.config
        withdrawals: List[Tuple[float, int]] = []  # (timestamp, index in messages)
        relevant: List[BGPMessage] = []
        for message in messages:
            if peer_as is not None and message.peer_as != peer_as:
                continue
            relevant.append(message)
        for index, message in enumerate(relevant):
            if isinstance(message, Update) and message.withdrawals:
                withdrawals.append((message.timestamp, index))

        bursts: List[Burst] = []
        if not withdrawals:
            return bursts

        in_burst = False
        burst_start_index = 0
        window: List[Tuple[float, int]] = []  # (timestamp, withdrawal count)
        window_count = 0
        cursor = 0  # index into ``withdrawals``

        # Walk withdrawal-carrying messages in time order, maintaining the
        # number of withdrawals in the trailing window.
        for position, (timestamp, message_index) in enumerate(withdrawals):
            message = relevant[message_index]
            count = len(message.withdrawals)  # type: ignore[union-attr]
            window.append((timestamp, count))
            window_count += count
            while window and window[0][0] < timestamp - config.window_seconds:
                window_count -= window[0][1]
                window.pop(0)

            if not in_burst and window_count >= config.start_threshold:
                in_burst = True
                # The burst starts at the first message of the current window.
                burst_start_time = window[0][0]
                burst_start_index = self._first_index_at(
                    relevant, burst_start_time, message_index
                )
            elif in_burst and window_count <= config.stop_threshold:
                in_burst = False
                bursts.append(
                    self._finalise(relevant, burst_start_index, message_index, peer_as)
                )
        if in_burst:
            bursts.append(
                self._finalise(relevant, burst_start_index, len(relevant) - 1, peer_as)
            )
        return bursts

    def _first_index_at(
        self, messages: Sequence[BGPMessage], start_time: float, upper: int
    ) -> int:
        """Find the first message index at or after ``start_time``."""
        index = upper
        while index > 0 and messages[index - 1].timestamp >= start_time:
            index -= 1
        return index

    def _finalise(
        self,
        messages: Sequence[BGPMessage],
        start_index: int,
        end_index: int,
        peer_as: Optional[int],
    ) -> Burst:
        selected = list(messages[start_index : end_index + 1])
        peer = peer_as if peer_as is not None else selected[0].peer_as
        return Burst(
            peer_as=peer,
            messages=selected,
            start_time=selected[0].timestamp,
            end_time=selected[-1].timestamp,
        )
