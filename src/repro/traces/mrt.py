"""A lightweight MRT-like trace format.

Real RouteViews / RIS archives come as binary MRT files read with
``pybgpstream`` or ``mrtparse``.  Offline we keep the same *shape* of the
pipeline — dump records to disk, stream them back, convert them into BGP
messages — with a simple line-oriented text format, one record per line:

``type|timestamp|peer_as|prefix|as_path``

where ``type`` is ``A`` (announcement), ``W`` (withdrawal), ``R`` (RIB entry
from a table dump) or ``S`` (session state change).  The format is close to
the classic ``bgpdump -m`` one-line output, which keeps it human greppable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Optional, Sequence, Union

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.messages import BGPMessage, Notification, Update
from repro.bgp.prefix import Prefix
from repro.traces.columnar import ColumnarTrace, InternPool
from repro.traces.validation import TraceValidationError, ValidationReport

__all__ = [
    "TraceReader",
    "TraceRecord",
    "TraceWriter",
    "messages_to_records",
    "records_to_columnar",
    "records_to_messages",
]

_VALID_TYPES = ("A", "W", "R", "S")


@dataclass(frozen=True)
class TraceRecord:
    """One record of the trace format."""

    type: str
    timestamp: float
    peer_as: int
    prefix: Optional[Prefix] = None
    as_path: Optional[ASPath] = None

    def __post_init__(self) -> None:
        if self.type not in _VALID_TYPES:
            raise ValueError(f"invalid record type {self.type!r}")
        if self.type in ("A", "R") and (self.prefix is None or self.as_path is None):
            raise ValueError("announcement/RIB records need a prefix and an AS path")
        if self.type == "W" and self.prefix is None:
            raise ValueError("withdrawal records need a prefix")

    def to_line(self) -> str:
        """Serialise the record to its one-line text form."""
        prefix_text = str(self.prefix) if self.prefix is not None else ""
        path_text = str(self.as_path) if self.as_path is not None else ""
        return f"{self.type}|{self.timestamp:.6f}|{self.peer_as}|{prefix_text}|{path_text}"

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        """Parse a record from its one-line text form.

        Any defect — wrong field count, unparsable numbers, bad prefix or
        path syntax, an invalid type byte — raises
        :class:`~repro.traces.validation.TraceValidationError` (reason
        ``malformed-line``), which is still a :class:`ValueError` for
        callers that only care about pass/fail.
        """
        parts = line.rstrip("\n").split("|")
        if len(parts) != 5:
            raise TraceValidationError(
                "malformed-line", f"expected 5 |-separated fields: {line!r}"
            )
        record_type, timestamp_text, peer_text, prefix_text, path_text = parts
        try:
            prefix = Prefix.from_string(prefix_text) if prefix_text else None
            as_path = ASPath.from_string(path_text) if path_text else None
            return cls(
                type=record_type,
                timestamp=float(timestamp_text),
                peer_as=int(peer_text),
                prefix=prefix,
                as_path=as_path,
            )
        except TraceValidationError:
            raise
        except ValueError as error:
            raise TraceValidationError("malformed-line", f"{line!r}: {error}") from error


class TraceWriter:
    """Writes trace records to a file (or file-like object)."""

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            self._file: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = destination
            self._owns_file = False
        self.records_written = 0

    def write(self, record: TraceRecord) -> None:
        """Write one record."""
        self._file.write(record.to_line() + "\n")
        self.records_written += 1

    def write_all(self, records: Iterable[TraceRecord]) -> None:
        """Write many records."""
        for record in records:
            self.write(record)

    def close(self) -> None:
        """Flush and close the underlying file if we own it."""
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class TraceReader:
    """Streams trace records back from a file (or file-like object).

    Pass a lenient :class:`~repro.traces.validation.ValidationReport` to
    count-and-skip malformed lines instead of raising on the first one;
    the report collects per-reason skip counts and one example each.
    """

    def __init__(
        self, source: Union[str, IO[str]], report: Optional[ValidationReport] = None
    ) -> None:
        self._source = source
        self._report = report

    def __iter__(self) -> Iterator[TraceRecord]:
        if isinstance(self._source, str):
            with open(self._source, "r", encoding="utf-8") as handle:
                yield from self._iter_handle(handle)
        else:
            yield from self._iter_handle(self._source)

    def _iter_handle(self, handle: IO[str]) -> Iterator[TraceRecord]:
        report = self._report
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if report is None:
                yield TraceRecord.from_line(line)
                continue
            report.checked += 1
            try:
                yield TraceRecord.from_line(line)
            except TraceValidationError as error:
                if not report.lenient:
                    raise
                report.note(error)

    def read_all(self) -> List[TraceRecord]:
        """Materialise every record in a list."""
        return list(iter(self))

    def read_columnar(
        self,
        pool: Optional[InternPool] = None,
        report: Optional[ValidationReport] = None,
    ) -> ColumnarTrace:
        """Parse the whole dump straight into columns.

        Streams records through :func:`records_to_columnar` — the file is
        read line by line and at no point does an object-form message list
        exist, which is how month-scale dumps should be loaded for replay.
        ``report`` governs record-level validation (distinct from the
        reader's own line-level report).
        """
        return records_to_columnar(iter(self), pool=pool, report=report)


def messages_to_records(messages: Iterable[BGPMessage]) -> List[TraceRecord]:
    """Convert BGP messages into trace records (UPDATE and NOTIFICATION only)."""
    records: List[TraceRecord] = []
    for message in messages:
        if isinstance(message, Update):
            for prefix in message.withdrawals:
                records.append(
                    TraceRecord(
                        type="W",
                        timestamp=message.timestamp,
                        peer_as=message.peer_as,
                        prefix=prefix,
                    )
                )
            for announcement in message.announcements:
                records.append(
                    TraceRecord(
                        type="A",
                        timestamp=message.timestamp,
                        peer_as=message.peer_as,
                        prefix=announcement.prefix,
                        as_path=announcement.attributes.as_path,
                    )
                )
        elif isinstance(message, Notification):
            records.append(
                TraceRecord(
                    type="S", timestamp=message.timestamp, peer_as=message.peer_as
                )
            )
    return records


def records_to_columnar(
    records: Iterable[TraceRecord],
    pool: Optional[InternPool] = None,
    report: Optional[ValidationReport] = None,
) -> ColumnarTrace:
    """Parse trace records into a columnar stream (one prefix per message).

    Mirrors :func:`records_to_messages` — ``W`` becomes a withdrawal UPDATE
    row, ``A``/``R`` an announcement row, ``S`` a NOTIFICATION row — but
    writes columns directly: prefixes, AS paths and attribute sets are
    interned in the pool and the per-message state is a handful of array
    appends, so a dump parses into replayable form without building the
    object stream.

    Records with a non-positive peer AS or a timestamp running backwards
    raise :class:`~repro.traces.validation.TraceValidationError`; pass a
    lenient ``report`` to count-and-skip them instead.
    """
    if report is None:
        report = ValidationReport()
    trace = ColumnarTrace(pool=pool)
    # Records repeat (path, peer) pairs heavily; interning the constructed
    # attribute objects here keeps the pool's value-keyed dedup from
    # rebuilding an identical PathAttributes per record.
    attributes_of: dict = {}
    previous_time: Optional[float] = None
    for record in records:
        report.checked += 1
        if record.peer_as < 1:
            report.flag(
                "invalid-peer", f"record {report.checked}: peer AS {record.peer_as}"
            )
            continue
        if previous_time is not None and record.timestamp < previous_time:
            report.flag(
                "non-monotone-timestamp",
                f"record {report.checked}: {record.timestamp} after {previous_time}",
            )
            continue
        previous_time = record.timestamp
        if record.type == "W":
            assert record.prefix is not None
            trace.withdraw(record.timestamp, record.peer_as, record.prefix)
        elif record.type in ("A", "R"):
            assert record.prefix is not None and record.as_path is not None
            key = (record.as_path.asns, record.peer_as)
            attributes = attributes_of.get(key)
            if attributes is None:
                attributes = attributes_of[key] = PathAttributes(
                    as_path=record.as_path,
                    next_hop=record.as_path.first_hop or record.peer_as,
                )
            trace.announce(record.timestamp, record.peer_as, record.prefix, attributes)
        elif record.type == "S":
            trace.append(
                Notification(timestamp=record.timestamp, peer_as=record.peer_as)
            )
    return trace


def records_to_messages(records: Iterable[TraceRecord]) -> List[BGPMessage]:
    """Convert trace records back into BGP messages (one prefix per message).

    RIB-dump records (type ``R``) are converted into announcements so a
    session can be pre-loaded by replaying them before the updates.
    """
    messages: List[BGPMessage] = []
    for record in records:
        if record.type == "W":
            assert record.prefix is not None
            messages.append(
                Update.withdraw(record.timestamp, record.peer_as, record.prefix)
            )
        elif record.type in ("A", "R"):
            assert record.prefix is not None and record.as_path is not None
            attributes = PathAttributes(
                as_path=record.as_path,
                next_hop=record.as_path.first_hop or record.peer_as,
            )
            messages.append(
                Update.announce(
                    record.timestamp, record.peer_as, record.prefix, attributes
                )
            )
        elif record.type == "S":
            messages.append(
                Notification(timestamp=record.timestamp, peer_as=record.peer_as)
            )
    return messages
