"""On-disk memoisation for generated traces and burst corpora.

The synthetic month traces behind the benchmark suite take minutes to
generate but are pure functions of their configuration, so they are perfect
memoisation targets: :func:`load_or_build` persists the built value under a
key derived from the configuration's fingerprint, and later sessions reload
it in seconds instead of regenerating.

Cache keys are *hardened* on two axes:

* every key embeds the global :data:`CACHE_VERSION` **and** the caller's
  per-format ``format_version`` (e.g. the columnar schema version), so
  entries written by older code — in particular the pre-columnar
  pickled-object-graph traces — are never even opened: a version bump
  changes the file name and the stale entry simply stops being referenced
  (migration is transparent: the value is rebuilt and re-cached under the
  new key);
* :func:`fingerprint` renders a configuration *including its default
  fields*, so changing a default changes the key even for callers that
  never passed the field explicitly.

Values may be persisted through an ``encode``/``decode`` pair — this is how
trace payloads are stored as columnar array blobs
(:mod:`repro.traces.columnar`) instead of pickled object graphs.  As a last
line of defence, columnar blobs embed their own format version and refuse
to restore across versions; the resulting exception is treated as a miss,
so a stale entry can never be half-loaded.

The cache lives in ``.trace_cache/`` at the repository root by default;
set ``REPRO_TRACE_CACHE`` to relocate it or ``REPRO_TRACE_CACHE=off`` to
disable caching entirely (every load then falls through to the builder).
Corrupt or unreadable cache files are treated as misses and rebuilt.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from typing import Any, Callable, Optional

__all__ = [
    "cache_path_for",
    "clear_cache",
    "fingerprint",
    "load_or_build",
]

#: Bump when the generators' output for a given configuration changes, so
#: stale entries from older code are never served.  v5: trace payloads moved
#: from pickled object graphs to columnar blobs.
CACHE_VERSION = 5

_ENV_VAR = "REPRO_TRACE_CACHE"


def _default_cache_dir() -> str:
    # src/repro/traces/trace_cache.py -> repository root.
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, ".trace_cache")


def _cache_dir() -> Optional[str]:
    configured = os.environ.get(_ENV_VAR)
    if configured is not None:
        if configured.strip().lower() in {"off", "0", "none", ""}:
            return None
        return configured
    return _default_cache_dir()


def fingerprint(value: Any) -> str:
    """Deterministic, default-inclusive description of a configuration.

    Dataclasses render with *every* field (sorted by name), so defaulted
    parameters participate in the cache key; mappings and sets render with
    sorted keys/members.  Anything else falls back to ``repr``, which is
    deterministic for the value types configurations are built from.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{field.name}={fingerprint(getattr(value, field.name))}"
            for field in sorted(dataclasses.fields(value), key=lambda f: f.name)
        )
        return f"{type(value).__name__}({fields})"
    if isinstance(value, dict):
        items = ",".join(
            f"{fingerprint(key)}:{fingerprint(value[key])}" for key in sorted(value)
        )
        return f"{{{items}}}"
    if isinstance(value, (set, frozenset)):
        return f"{{{','.join(sorted(fingerprint(item) for item in value))}}}"
    if isinstance(value, (list, tuple)):
        body = ",".join(fingerprint(item) for item in value)
        return f"[{body}]" if isinstance(value, list) else f"({body})"
    return repr(value)


def cache_path_for(
    kind: str, spec: str, format_version: Optional[int] = None
) -> Optional[str]:
    """The cache file a (kind, spec) pair would use, or ``None`` if disabled.

    ``spec`` should be a deterministic description of everything the built
    value depends on — prefer :func:`fingerprint` of the full configuration
    over a bare ``repr``, so defaulted parameters are part of the key.
    ``format_version`` is the caller's on-disk format version (e.g.
    :data:`repro.traces.columnar.COLUMNAR_FORMAT_VERSION`); bumping either
    version changes the key, so pre-bump entries miss cleanly.
    """
    directory = _cache_dir()
    if directory is None:
        return None
    digest = hashlib.sha256(
        f"v{CACHE_VERSION}|f{format_version}|{kind}|{spec}".encode("utf-8")
    ).hexdigest()[:24]
    return os.path.join(directory, f"{kind}-{digest}.pkl")


def load_or_build(
    kind: str,
    spec: str,
    builder: Callable[[], Any],
    format_version: Optional[int] = None,
    encode: Optional[Callable[[Any], Any]] = None,
    decode: Optional[Callable[[Any], Any]] = None,
) -> Any:
    """Return the memoised value for (kind, spec), building it on a miss.

    When ``encode``/``decode`` are given, the cache persists
    ``encode(value)`` (e.g. a columnar array payload) and returns
    ``decode(payload)`` on a hit; a miss returns the freshly built value
    directly.  Any failure to read, decode or write — including a columnar
    blob refusing to restore across format versions — silently degrades to
    ``builder()``: stale or corrupt entries are never half-loaded.

    The write is atomic (temp file + rename) so concurrent test sessions
    never observe a half-written entry.
    """
    path = cache_path_for(kind, spec, format_version=format_version)
    if path is not None and os.path.exists(path):
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            return decode(payload) if decode is not None else payload
        except Exception:
            pass  # corrupt / incompatible cache entry: rebuild below
    value = builder()
    if path is not None:
        try:
            payload = encode(value) if encode is not None else value
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_path, path)
            except Exception:
                os.unlink(temp_path)
                raise
        except Exception:
            pass  # read-only filesystem etc.: caching is best-effort
    return value


def clear_cache() -> int:
    """Delete every cache entry; returns the number of files removed."""
    directory = _cache_dir()
    if directory is None or not os.path.isdir(directory):
        return 0
    removed = 0
    for name in os.listdir(directory):
        if name.endswith(".pkl") or name.endswith(".tmp"):
            try:
                os.unlink(os.path.join(directory, name))
                removed += 1
            except OSError:
                continue
    return removed
