"""On-disk memoisation for generated traces and burst corpora.

The synthetic month traces behind the benchmark suite take minutes to
generate but are pure functions of their configuration, so they are perfect
memoisation targets: :func:`load_or_build` persists the built value under a
key derived from the configuration's fingerprint, and later sessions reload
it in seconds instead of regenerating.

Cache keys are *hardened* on two axes:

* every key embeds the global :data:`CACHE_VERSION` **and** the caller's
  per-format ``format_version`` (e.g. the columnar schema version), so
  entries written by older code — in particular the pre-columnar
  pickled-object-graph traces — are never even opened: a version bump
  changes the file name and the stale entry simply stops being referenced
  (migration is transparent: the value is rebuilt and re-cached under the
  new key);
* :func:`fingerprint` renders a configuration *including its default
  fields*, so changing a default changes the key even for callers that
  never passed the field explicitly.

Values may be persisted through an ``encode``/``decode`` pair — this is how
trace payloads are stored as columnar array blobs
(:mod:`repro.traces.columnar`) instead of pickled object graphs.  Plain
:class:`~repro.traces.columnar.ColumnarTrace` values go further:
:func:`load_or_build_columnar` stores them in the mmap-backed column-store
layout (``.cols``, see :mod:`repro.traces.columnar_store`) and
:func:`open_columnar` serves partial time-window loads straight off that
file.  As a last line of defence, columnar blobs embed their own format
version and refuse to restore across versions; the resulting exception is
treated as a miss, so a stale entry can never be half-loaded.

The cache lives in ``.trace_cache/`` at the repository root by default;
set ``REPRO_TRACE_CACHE`` to relocate it or ``REPRO_TRACE_CACHE=off`` to
disable caching entirely (every load then falls through to the builder).
Corrupt or unreadable cache files are treated as misses and rebuilt;
provably-damaged column-store blobs (a failed CRC or truncation check —
:class:`~repro.traces.columnar_store.CorruptColumnStoreError`) are
additionally **quarantined**: the bad blob is renamed to ``<entry>.corrupt``
for post-mortem, a warning is logged once per entry, and the value is
rebuilt under the original name.  Writes ``fsync`` the temp file before the
rename (and the directory after), so a crash mid-write can leave at most an
unreferenced temp file — never a torn blob under the final name.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import logging
import os
import pickle
import re
import tempfile
import time
from typing import Any, Callable, Optional

from repro.util.atomic import write_atomic

logger = logging.getLogger(__name__)

__all__ = [
    "cache_path_for",
    "clear_cache",
    "fingerprint",
    "load_or_build",
    "load_or_build_columnar",
    "open_columnar",
]

#: Bump when the generators' output for a given configuration changes, so
#: stale entries from older code are never served.  v5: trace payloads moved
#: from pickled object graphs to columnar blobs.
CACHE_VERSION = 5

_ENV_VAR = "REPRO_TRACE_CACHE"


def _default_cache_dir() -> str:
    # src/repro/traces/trace_cache.py -> repository root.
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, ".trace_cache")


def _cache_dir() -> Optional[str]:
    configured = os.environ.get(_ENV_VAR)
    if configured is not None:
        if configured.strip().lower() in {"off", "0", "none", ""}:
            return None
        return configured
    return _default_cache_dir()


#: Scalar types whose ``repr`` is deterministic by construction; anything
#: else falling through to the ``repr`` branch is screened for
#: memory-address markers first.
_SCALAR_TYPES = (type(None), bool, int, float, complex, str, bytes, bytearray)

#: The ``<module.Class object at 0x7f...>`` marker of reprs that embed the
#: instance's memory address — a different string every process.
_ADDRESS_REPR = re.compile(r" at 0x[0-9a-fA-F]+")


def fingerprint(value: Any) -> str:
    """Deterministic, default-inclusive description of a configuration.

    Dataclasses render with *every* field (sorted by name), so defaulted
    parameters participate in the cache key; mappings and sets render with
    sorted keys/members (ordered by their *fingerprints*, so mixed-type
    keys never hit an unorderable ``sorted``).  Anything else falls back to
    ``repr`` — but a repr embedding the object's memory address (the
    ``object.__repr__`` default) raises :class:`TypeError` instead of
    silently minting a fresh cache key every process, which would turn the
    cache into a permanent miss that regenerates minutes-long traces.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{field.name}={fingerprint(getattr(value, field.name))}"
            for field in sorted(dataclasses.fields(value), key=lambda f: f.name)
        )
        return f"{type(value).__name__}({fields})"
    if isinstance(value, dict):
        items = ",".join(
            f"{key_print}:{fingerprint(item)}"
            for key_print, item in sorted(
                ((fingerprint(key), item) for key, item in value.items()),
                key=lambda pair: pair[0],
            )
        )
        return f"{{{items}}}"
    if isinstance(value, (set, frozenset)):
        return f"{{{','.join(sorted(fingerprint(item) for item in value))}}}"
    if isinstance(value, (list, tuple)):
        body = ",".join(fingerprint(item) for item in value)
        return f"[{body}]" if isinstance(value, list) else f"({body})"
    if isinstance(value, _SCALAR_TYPES) or isinstance(value, enum.Enum):
        return repr(value)
    rendered = repr(value)
    if _ADDRESS_REPR.search(rendered):
        raise TypeError(
            f"cannot fingerprint {type(value).__name__}: its repr embeds a "
            f"memory address ({rendered!r}), which would change every "
            f"process and permanently miss the cache; give the type a "
            f"deterministic __repr__ or make it a dataclass"
        )
    return rendered


def cache_path_for(
    kind: str, spec: str, format_version: Optional[int] = None, suffix: str = ".pkl"
) -> Optional[str]:
    """The cache file a (kind, spec) pair would use, or ``None`` if disabled.

    ``spec`` should be a deterministic description of everything the built
    value depends on — prefer :func:`fingerprint` of the full configuration
    over a bare ``repr``, so defaulted parameters are part of the key.
    ``format_version`` is the caller's on-disk format version (e.g.
    :data:`repro.traces.columnar.COLUMNAR_FORMAT_VERSION`); bumping either
    version changes the key, so pre-bump entries miss cleanly.  ``suffix``
    selects the storage layout: ``.pkl`` for pickled payloads, ``.cols``
    for the mmap-backed column store.
    """
    directory = _cache_dir()
    if directory is None:
        return None
    digest = hashlib.sha256(
        f"v{CACHE_VERSION}|f{format_version}|{kind}|{spec}".encode("utf-8")
    ).hexdigest()[:24]
    return os.path.join(directory, f"{kind}-{digest}{suffix}")


#: Orphan ``.tmp`` files older than this are swept opportunistically; young
#: ones are left alone — they may belong to a live concurrent writer.
_STALE_TMP_SECONDS = 3600.0


def _sweep_stale_tmp(directory: str, max_age_seconds: float = _STALE_TMP_SECONDS) -> int:
    """Remove orphaned temp files an interrupted writer left behind.

    Called from the write path of :func:`load_or_build` (and friends) and
    from :func:`clear_cache`, so a crash mid-write can no longer accumulate
    ``.tmp`` litter forever.  Returns the number of files removed; never
    raises — sweeping is best-effort by design.
    """
    removed = 0
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    horizon = time.time() - max_age_seconds
    for name in names:
        if not name.endswith(".tmp"):
            continue
        path = os.path.join(directory, name)
        try:
            if max_age_seconds <= 0 or os.path.getmtime(path) < horizon:
                os.unlink(path)
                removed += 1
        except OSError:
            continue
    return removed


def _fault_hook(temp_path: str, final_path: str) -> None:
    """Consult the fault-injection harness on the cache write path.

    Keyed by the *final* entry name (so specs can match cache entries),
    applied to the temp file: ``io_error`` specs raise (the write degrades
    to best-effort, exactly like a real filesystem error); ``corrupt``
    specs flip a seeded byte in the about-to-be-renamed blob — the
    torn-write damage the store checksums exist to detect.  A no-op when
    the harness is idle.
    """
    from repro.testing import faults

    injector = faults.active_injector()
    if injector is None:
        return
    spec = injector.fire("cache.write", key=os.path.basename(final_path))
    if spec is not None and spec.kind == "corrupt":
        faults.corrupt_file(temp_path, seed=injector.plan.seed)


def _write_atomic(path: str, writer: Callable[[str], None]) -> None:
    """Write a cache entry via temp file + fsync + rename.

    Delegates to :func:`repro.util.atomic.write_atomic` (shared with the
    ingestion manifest/segment writers) after sweeping stale ``.tmp``
    litter, with the fault-injection hook pointed between the write and
    the fsync — exactly where a real torn write would land.
    """
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    _sweep_stale_tmp(directory)
    write_atomic(path, writer, hook=lambda temp_path: _fault_hook(temp_path, path))


#: Entries already quarantine-logged this process (one warning per blob).
_QUARANTINE_LOGGED: set = set()


def _quarantine(path: str, error: Exception) -> None:
    """Move a provably-corrupt cache blob aside and log once.

    The blob is renamed to ``<path>.corrupt`` (replacing any previous
    quarantined copy) so the damaged bytes stay available for post-mortem
    while the cache path is freed for the rebuild.  If even the rename
    fails, the blob is unlinked; if that fails too, the rebuild will
    overwrite it.  Never raises — quarantine is best-effort by design.
    """
    target = path + ".corrupt"
    try:
        # repro: allow(durability-ordering): best-effort rename-aside of an
        # already-corrupt blob; nothing durable is being written.
        os.replace(path, target)
    except OSError:
        target = None
        try:
            os.unlink(path)
        except OSError:
            pass
    if path not in _QUARANTINE_LOGGED:
        _QUARANTINE_LOGGED.add(path)
        destination = f"quarantined to {target}" if target else "removed"
        logger.warning(
            "corrupt trace-cache entry %s (%s); %s, rebuilding",
            path,
            error,
            destination,
        )


def load_or_build(
    kind: str,
    spec: str,
    builder: Callable[[], Any],
    format_version: Optional[int] = None,
    encode: Optional[Callable[[Any], Any]] = None,
    decode: Optional[Callable[[Any], Any]] = None,
) -> Any:
    """Return the memoised value for (kind, spec), building it on a miss.

    When ``encode``/``decode`` are given, the cache persists
    ``encode(value)`` (e.g. a columnar array payload) and returns
    ``decode(payload)`` on a hit; a miss returns the freshly built value
    directly.  Any failure to read, decode or write — including a columnar
    blob refusing to restore across format versions — silently degrades to
    ``builder()``: stale or corrupt entries are never half-loaded.

    The write is atomic (temp file + rename) so concurrent test sessions
    never observe a half-written entry.
    """
    path = cache_path_for(kind, spec, format_version=format_version)
    if path is not None and os.path.exists(path):
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            return decode(payload) if decode is not None else payload
        except Exception:
            pass  # corrupt / incompatible cache entry: rebuild below
    value = builder()
    if path is not None:
        try:
            payload = encode(value) if encode is not None else value

            def write(temp_path: str) -> None:
                with open(temp_path, "wb") as handle:
                    pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)

            _write_atomic(path, write)
        except Exception:
            pass  # read-only filesystem etc.: caching is best-effort
    return value


def load_or_build_columnar(
    kind: str,
    spec: str,
    builder: Callable[[], Any],
    format_version: Optional[int] = None,
) -> Any:
    """Memoise a :class:`~repro.traces.columnar.ColumnarTrace` on disk.

    Like :func:`load_or_build`, but the entry is stored in the mmap-backed
    column-store layout (``.cols``: header + raw column segments, see
    :mod:`repro.traces.columnar_store`) instead of a pickle, so a hit is
    ``mmap`` + per-column ``frombytes`` and :func:`open_columnar` can serve
    partial time-window loads of the same entry without reading the whole
    file.  A blob failing the store's integrity checks (CRC mismatch,
    truncation) is a cache miss: it is quarantined to ``<entry>.corrupt``,
    a warning is logged once, and the value is rebuilt.
    """
    from repro.traces import columnar_store

    path = cache_path_for(kind, spec, format_version=format_version, suffix=".cols")
    if path is not None and os.path.exists(path):
        try:
            return columnar_store.read_trace(path)
        except columnar_store.CorruptColumnStoreError as error:
            _quarantine(path, error)
        except Exception:
            pass  # stale-format entry: rebuild below
    value = builder()
    if path is not None:
        try:
            _write_atomic(path, lambda temp: columnar_store.write_trace(temp, value))
        except Exception:
            pass  # read-only filesystem etc.: caching is best-effort
    return value


def open_columnar(
    kind: str,
    spec: str,
    builder: Callable[[], Any],
    format_version: Optional[int] = None,
):
    """Open a column-store cache entry for on-demand (windowed) loads.

    Returns a :class:`~repro.traces.columnar_store.ColumnarTraceFile` whose
    :meth:`~repro.traces.columnar_store.ColumnarTraceFile.window` /
    :meth:`~repro.traces.columnar_store.ColumnarTraceFile.load` read only
    the byte ranges they need, or ``None`` when caching is disabled or the
    cache directory is unwritable (the caller falls back to ``builder()``
    in memory).  Writability is probed *before* building, so a minutes-long
    generation is never spent on a value that could not be persisted.  A
    missing or stale entry is built and persisted first, exactly as in
    :func:`load_or_build_columnar` — including the quarantine-and-rebuild
    handling of blobs that fail the store's integrity checks.
    """
    from repro.traces import columnar_store

    path = cache_path_for(kind, spec, format_version=format_version, suffix=".cols")
    if path is None:
        return None
    if os.path.exists(path):
        try:
            return columnar_store.ColumnarTraceFile(path)
        except columnar_store.CorruptColumnStoreError as error:
            _quarantine(path, error)
        except Exception:
            pass  # stale-format entry: rebuild below
    if not _directory_writable(os.path.dirname(path)):
        return None
    value = builder()
    try:
        _write_atomic(path, lambda temp: columnar_store.write_trace(temp, value))
        return columnar_store.ColumnarTraceFile(path)
    except Exception:
        return None  # the filesystem turned read-only mid-build etc.


def _directory_writable(directory: str) -> bool:
    """Probe whether a cache directory can take a new entry."""
    try:
        os.makedirs(directory, exist_ok=True)
        fd, probe = tempfile.mkstemp(dir=directory, suffix=".tmp")
        os.close(fd)
        os.unlink(probe)
        return True
    except OSError:
        return False


def clear_cache() -> int:
    """Delete every cache entry; returns the number of files removed."""
    directory = _cache_dir()
    if directory is None or not os.path.isdir(directory):
        return 0
    removed = 0
    for name in os.listdir(directory):
        if name.endswith((".pkl", ".cols", ".tmp", ".corrupt")):
            try:
                os.unlink(os.path.join(directory, name))
                removed += 1
            except OSError:
                continue
    return removed
