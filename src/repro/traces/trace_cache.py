"""On-disk memoisation for generated traces and burst corpora.

The synthetic month traces behind the benchmark suite take minutes to
generate but are pure functions of their configuration, so they are perfect
memoisation targets: :func:`load_or_build` pickles the built value under a
key derived from the configuration's repr (plus a cache version bumped
whenever the generator's output changes), and later sessions reload it in
seconds instead of regenerating.

The cache lives in ``.trace_cache/`` at the repository root by default;
set ``REPRO_TRACE_CACHE`` to relocate it or ``REPRO_TRACE_CACHE=off`` to
disable caching entirely (every load then falls through to the builder).
Corrupt or unreadable cache files are treated as misses and rebuilt.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Any, Callable, Optional

__all__ = ["cache_path_for", "clear_cache", "load_or_build"]

#: Bump when the generator's output for a given configuration changes, so
#: stale pickles from older code are never served.
CACHE_VERSION = 4

_ENV_VAR = "REPRO_TRACE_CACHE"


def _default_cache_dir() -> str:
    # src/repro/traces/trace_cache.py -> repository root.
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, ".trace_cache")


def _cache_dir() -> Optional[str]:
    configured = os.environ.get(_ENV_VAR)
    if configured is not None:
        if configured.strip().lower() in {"off", "0", "none", ""}:
            return None
        return configured
    return _default_cache_dir()


def cache_path_for(kind: str, spec: str) -> Optional[str]:
    """The cache file a (kind, spec) pair would use, or ``None`` if disabled.

    ``spec`` should be a deterministic description of everything the built
    value depends on — typically the ``repr`` of a frozen config dataclass.
    """
    directory = _cache_dir()
    if directory is None:
        return None
    digest = hashlib.sha256(
        f"v{CACHE_VERSION}|{kind}|{spec}".encode("utf-8")
    ).hexdigest()[:24]
    return os.path.join(directory, f"{kind}-{digest}.pkl")


def load_or_build(kind: str, spec: str, builder: Callable[[], Any]) -> Any:
    """Return the memoised value for (kind, spec), building it on a miss.

    The write is atomic (temp file + rename) so concurrent test sessions
    never observe a half-written pickle; any failure to read or write the
    cache silently degrades to calling ``builder()``.
    """
    path = cache_path_for(kind, spec)
    if path is not None and os.path.exists(path):
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception:
            pass  # corrupt / incompatible cache entry: rebuild below
    value = builder()
    if path is not None:
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_path, path)
            except Exception:
                os.unlink(temp_path)
                raise
        except Exception:
            pass  # read-only filesystem etc.: caching is best-effort
    return value


def clear_cache() -> int:
    """Delete every cache entry; returns the number of files removed."""
    directory = _cache_dir()
    if directory is None or not os.path.isdir(directory):
        return 0
    removed = 0
    for name in os.listdir(directory):
        if name.endswith(".pkl") or name.endswith(".tmp"):
            try:
                os.unlink(os.path.join(directory, name))
                removed += 1
            except OSError:
                continue
    return removed
