"""Synthetic BGP trace generation calibrated to the paper's measurements.

§2.2.1 of the paper characterises one month of RouteViews / RIS data (213
sessions): 3,335 bursts above 1,500 withdrawals (≈15.7 per session-month on
average), 16% above 10k withdrawals, 1.5% above 100k, the largest at ~560k;
37% of bursts last more than 10 s and 9.7% more than 30 s; a significant part
of the withdrawals arrives in the middle and tail of a burst; 84% of bursts
touch prefixes of popular organizations; background noise sits at ~9
withdrawals per 10 s at the 99.9th percentile.

:class:`SyntheticTraceGenerator` produces, per peering session, a RIB
snapshot plus a month-long message stream with those properties.  Each burst
is *internally consistent*: it corresponds to the failure of a specific AS
link in the session's AS-path structure, withdrawing (most of) the prefixes
routed across that link and re-announcing some of them over alternate paths —
which is exactly the structure the SWIFT inference algorithm exploits.

Generation is *streaming-first*: :meth:`SyntheticTraceGenerator.stream`
returns a :class:`SyntheticTraceStream` whose per-session message iterators
materialise bursts and background noise lazily, in timestamp order — a cheap
planning pass fixes every burst's size, start time and private RNG seed, and
the (expensive) message lists are only built when the replay clock reaches
each burst.  The eager API is a thin wrapper: ``generate()`` simply drains
the stream (:meth:`SyntheticTraceStream.materialise`) into a
:class:`SyntheticTrace`, so the two paths produce identical traces.  For the
benchmark corpus, :mod:`repro.traces.trace_cache` adds an on-disk
memoisation layer so month-long traces are generated once and reloaded in
seconds.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from array import array
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.messages import BGPMessage, Update
from repro.bgp.prefix import Prefix
from repro.traces.collectors import Collector, CollectorPeer, build_collector_fleet
from repro.traces.columnar import (
    COLUMNAR_FORMAT_VERSION,
    ColumnarMessageView,
    ColumnarTrace,
    InternPool,
    decode_rib,
    encode_rib,
)
from repro.traces.session_topology import SessionTopology, SessionTopologyConfig

__all__ = [
    "BurstPlan",
    "ColumnarSyntheticTrace",
    "SyntheticBurst",
    "SyntheticTrace",
    "SyntheticTraceConfig",
    "SyntheticTraceGenerator",
    "SyntheticTraceStream",
    "cached_columnar_stream",
    "cached_columnar_stream_file",
    "cached_trace",
]

SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Knobs of the synthetic trace.

    The defaults are scaled down (fewer peers, smaller tables) so tests and
    examples run in seconds; :meth:`paper_scale` returns the month-long,
    213-session configuration matching §2.2.1 / §6.1.
    """

    peer_count: int = 20
    duration_days: float = 30.0
    bursts_per_session_month: float = 15.7
    burst_size_minimum: int = 1500
    burst_size_alpha: float = 0.96
    burst_size_maximum: int = 560000
    min_table_size: int = 4000
    max_table_size: int = 60000
    withdrawal_fraction: float = 0.8
    throughput_median: float = 500.0
    throughput_sigma: float = 1.2
    head_skew: float = 2.2
    noise_rate_per_second: float = 0.05
    reannounce_delay: float = 300.0
    flapping_peers: int = 0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.peer_count <= 0:
            raise ValueError("peer_count must be positive")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.burst_size_minimum < 1:
            raise ValueError("burst_size_minimum must be at least 1")
        if not 0.0 < self.withdrawal_fraction <= 1.0:
            raise ValueError("withdrawal_fraction must be in (0, 1]")

    @classmethod
    def paper_scale(cls) -> "SyntheticTraceConfig":
        """The full-scale configuration of the paper (213 peers, big tables).

        Generating it takes minutes and several GB of memory; use it only for
        full reproduction runs, not in unit tests.
        """
        return cls(
            peer_count=213,
            duration_days=30.0,
            min_table_size=10000,
            max_table_size=600000,
            flapping_peers=5,
        )

    @property
    def duration_seconds(self) -> float:
        """Trace duration in seconds."""
        return self.duration_days * SECONDS_PER_DAY


@dataclass
class SyntheticBurst:
    """One generated burst with its ground truth."""

    peer: CollectorPeer
    start_time: float
    failed_link: Tuple[int, int]
    messages: List[BGPMessage]
    withdrawn_prefixes: FrozenSet[Prefix]
    updated_prefixes: FrozenSet[Prefix]
    noise_prefixes: FrozenSet[Prefix]
    popular: bool

    @property
    def withdrawal_count(self) -> int:
        """Number of withdrawn prefixes (including noise withdrawals).

        Column-backed bursts (cache reloads) answer from the withdrawal
        bounds without materialising a single message object.
        """
        counter = getattr(self.messages, "withdrawal_count", None)
        if counter is not None:
            return counter()
        return sum(
            len(m.withdrawals) for m in self.messages if isinstance(m, Update)
        )

    @property
    def size(self) -> int:
        """Burst size as the paper counts it: withdrawn prefixes."""
        return self.withdrawal_count

    @property
    def duration(self) -> float:
        """Burst duration in seconds."""
        if len(self.messages) < 2:
            return 0.0
        last = getattr(self.messages, "last_timestamp", None)
        if last is not None:
            return last - self.messages.first_timestamp
        return self.messages[-1].timestamp - self.messages[0].timestamp

    @property
    def end_time(self) -> float:
        """Timestamp of the last message of the burst."""
        if not len(self.messages):
            return self.start_time
        last = getattr(self.messages, "last_timestamp", None)
        return last if last is not None else self.messages[-1].timestamp


@dataclass
class SyntheticTrace:
    """A generated multi-session trace."""

    config: SyntheticTraceConfig
    peers: List[CollectorPeer]
    topologies: Dict[int, SessionTopology]
    bursts: List[SyntheticBurst]
    background: Dict[int, List[BGPMessage]] = field(default_factory=dict)

    def rib_of(self, peer_as: int) -> Dict[Prefix, ASPath]:
        """Pre-trace RIB snapshot of a session."""
        return self.topologies[peer_as].rib

    def bursts_of(self, peer_as: int) -> List[SyntheticBurst]:
        """All bursts generated on one session, in time order."""
        return sorted(
            (burst for burst in self.bursts if burst.peer.peer_as == peer_as),
            key=lambda burst: burst.start_time,
        )

    def messages_of(self, peer_as: int) -> List[BGPMessage]:
        """The full message stream of one session (bursts + noise), sorted."""
        messages: List[BGPMessage] = list(self.background.get(peer_as, []))
        for burst in self.bursts_of(peer_as):
            messages.extend(burst.messages)
        messages.sort(key=lambda m: m.timestamp)
        return messages

    @property
    def burst_count(self) -> int:
        """Total number of generated bursts."""
        return len(self.bursts)


@dataclass(frozen=True)
class BurstPlan:
    """The cheap, pre-drawn parameters of one burst.

    The planning pass fixes everything that determines a burst — its target
    size, start time and a private RNG seed for the message materialisation —
    without building a single message object.  Streaming replay materialises
    a plan only when the session clock reaches ``start_time``.
    """

    peer: CollectorPeer
    number: int
    target_size: int
    start_time: float
    seed: int


class SyntheticTraceGenerator:
    """Generates :class:`SyntheticTrace` / :class:`SyntheticTraceStream` objects."""

    def __init__(self, config: Optional[SyntheticTraceConfig] = None) -> None:
        self.config = config or SyntheticTraceConfig()
        self._rng = random.Random(self.config.seed)

    # -- public API ----------------------------------------------------------

    def stream(self) -> "SyntheticTraceStream":
        """Return a lazy, per-session view of the trace (streaming-first API)."""
        config = self.config
        collectors = build_collector_fleet(
            peer_count=config.peer_count,
            seed=config.seed,
            min_table_size=config.min_table_size,
            max_table_size=config.max_table_size,
            flapping_peers=config.flapping_peers,
        )
        peers = [peer for collector in collectors for peer in collector.peers]
        return SyntheticTraceStream(self, peers)

    def generate(self) -> SyntheticTrace:
        """Generate the full multi-session trace eagerly.

        Thin wrapper over the streaming path: equivalent to
        ``self.stream().materialise()``, kept as the convenient API for
        callers that want every burst and message in memory.
        """
        return self.stream().materialise()

    def generate_burst(
        self,
        topology: SessionTopology,
        target_size: int,
        start_time: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> Optional[SyntheticBurst]:
        """Generate a single burst of roughly ``target_size`` withdrawals.

        Exposed publicly so experiments can create individual bursts with a
        controlled size without generating a whole month of trace.
        Returns ``None`` when the session has no link carrying enough
        prefixes to host the requested burst size.
        """
        rng = rng or self._rng
        peer = CollectorPeer(
            collector="adhoc", peer_as=topology.peer_as, table_size=topology.prefix_count
        )
        return self._build_burst(peer, topology, target_size, start_time, rng)

    # -- internals -------------------------------------------------------------

    def _session_topology(self, peer: CollectorPeer, index: int) -> SessionTopology:
        """Build the AS-path topology of one session (O(table size))."""
        config = self.config
        return SessionTopology(
            SessionTopologyConfig(
                peer_as=peer.peer_as,
                total_prefixes=peer.table_size,
                seed=config.seed * 1009 + index,
                prefix_base_octet=20 + (index % 60),
                base_asn=10000 + index * 500,
            )
        )

    def _session_plans(self, peer: CollectorPeer, index: int) -> List[BurstPlan]:
        """Draw the burst plans of one session, sorted by start time.

        This is the cheap part of generation — a handful of RNG draws per
        burst.  Each plan carries its own materialisation seed so bursts can
        be built lazily, in any order, and still be deterministic.
        """
        config = self.config
        rng = random.Random(config.seed * 7919 + index)
        expected = (
            config.bursts_per_session_month
            * peer.activity_multiplier
            * (config.duration_days / 30.0)
        )
        count = _poisson(expected, rng)
        plans: List[BurstPlan] = []
        for number in range(count):
            target = self._draw_burst_size(rng)
            start = rng.uniform(0.0, config.duration_seconds)
            seed = rng.getrandbits(61)
            plans.append(
                BurstPlan(
                    peer=peer,
                    number=number,
                    target_size=target,
                    start_time=start,
                    seed=seed,
                )
            )
        plans.sort(key=lambda plan: plan.start_time)
        return plans

    def _materialise_burst(
        self, plan: BurstPlan, topology: SessionTopology
    ) -> Optional[SyntheticBurst]:
        """Build the messages of one planned burst (the expensive part)."""
        return self._build_burst(
            plan.peer,
            topology,
            plan.target_size,
            plan.start_time,
            random.Random(plan.seed),
        )

    def _draw_burst_size(self, rng: random.Random) -> int:
        """Draw a burst size from the calibrated Pareto distribution."""
        config = self.config
        size = config.burst_size_minimum * rng.paretovariate(config.burst_size_alpha)
        return int(min(size, config.burst_size_maximum))

    def _build_burst(
        self,
        peer: CollectorPeer,
        topology: SessionTopology,
        target_size: int,
        start_time: float,
        rng: random.Random,
    ) -> Optional[SyntheticBurst]:
        config = self.config
        link_counts = topology.link_prefix_counts()
        if not link_counts:
            return None
        # Pick the link whose prefix count best accommodates the target size;
        # prefer links at least as large as the target, fall back to the largest.
        candidates = [
            (link, count)
            for link, count in link_counts.items()
            if count >= max(target_size, config.burst_size_minimum)
        ]
        if candidates:
            # Among links big enough, prefer the smallest (tightest fit), with
            # randomisation among near-ties so different bursts hit different links.
            candidates.sort(key=lambda item: item[1])
            pool = candidates[: max(1, len(candidates) // 4)]
            link, available = pool[rng.randrange(len(pool))]
        else:
            link, available = max(link_counts.items(), key=lambda item: item[1])
        target_size = min(target_size, available)
        if target_size < config.burst_size_minimum:
            return None

        child = topology.child_of_link(link)
        failed_subtree = topology.subtree(child)
        affected = topology.prefixes_via_link(link)
        rng.shuffle(affected)

        withdrawn: List[Prefix] = []
        updated: List[Tuple[Prefix, ASPath]] = []
        for prefix in affected:
            if len(withdrawn) >= target_size and rng.random() < 0.8:
                break
            if rng.random() < config.withdrawal_fraction:
                withdrawn.append(prefix)
            else:
                origin = topology.origin_of(prefix)
                reroute = topology.reroute_path(origin, child, failed_subtree)
                if reroute is not None:
                    updated.append((prefix, reroute))
                else:
                    withdrawn.append(prefix)
        if len(withdrawn) < config.burst_size_minimum:
            return None

        # Noise: a handful of unrelated withdrawals mixed into the burst.
        affected_set = set(affected)
        unrelated = [prefix for prefix in topology.rib if prefix not in affected_set]
        rng.shuffle(unrelated)
        noise_count = _poisson(len(withdrawn) * 0.0005 + 1.0, rng)
        noise = unrelated[:noise_count]

        duration = self._draw_duration(len(withdrawn) + len(updated), rng)
        messages = self._pace_burst(
            peer.peer_as, withdrawn, updated, noise, start_time, duration, rng
        )
        popular = any(
            topology.origin_of(prefix) in topology.popular_asns
            for prefix in withdrawn[: min(len(withdrawn), 2000)]
        )
        return SyntheticBurst(
            peer=peer,
            start_time=start_time,
            failed_link=link,
            messages=messages,
            withdrawn_prefixes=frozenset(withdrawn),
            updated_prefixes=frozenset(prefix for prefix, _ in updated),
            noise_prefixes=frozenset(noise),
            popular=popular,
        )

    def _draw_duration(self, message_count: int, rng: random.Random) -> float:
        """Burst duration: size / throughput with log-normal throughput."""
        config = self.config
        throughput = math.exp(
            rng.gauss(math.log(config.throughput_median), config.throughput_sigma)
        )
        throughput = max(50.0, min(throughput, 50000.0))
        return max(0.5, message_count / throughput)

    def _pace_burst(
        self,
        peer_as: int,
        withdrawn: Sequence[Prefix],
        updated: Sequence[Tuple[Prefix, ASPath]],
        noise: Sequence[Prefix],
        start_time: float,
        duration: float,
        rng: random.Random,
    ) -> List[BGPMessage]:
        """Interleave withdrawals, updates and noise over the burst duration."""
        config = self.config
        events: List[Tuple[str, object]] = [("withdraw", p) for p in withdrawn]
        events.extend(("update", item) for item in updated)
        events.extend(("withdraw", p) for p in noise)
        rng.shuffle(events)
        messages: List[BGPMessage] = []
        for kind, payload in events:
            position = rng.random() ** config.head_skew
            timestamp = start_time + position * duration
            if kind == "withdraw":
                messages.append(Update.withdraw(timestamp, peer_as, payload))  # type: ignore[arg-type]
            else:
                prefix, path = payload  # type: ignore[misc]
                attributes = PathAttributes(as_path=path, next_hop=peer_as)
                messages.append(Update.announce(timestamp, peer_as, prefix, attributes))
        messages.sort(key=lambda m: m.timestamp)
        return messages

    def _background_stream(
        self, peer: CollectorPeer, topology: SessionTopology, index: int
    ) -> Iterator[BGPMessage]:
        """Low-rate unrelated withdrawals/announcements across the whole trace.

        Generated lazily as a Poisson process (exponential inter-arrivals),
        so the messages come out in timestamp order without ever holding the
        whole month in memory.  The rate is chosen so that quiet 10 s windows
        carry well under the paper's 1,500-withdrawal burst-start threshold
        (the observed noise floor is ~9 withdrawals per 10 s at the 90th
        percentile).
        """
        config = self.config
        rng = random.Random(config.seed * 104729 + index)
        if config.noise_rate_per_second <= 0:
            return
        prefixes = list(topology.rib)
        if not prefixes:
            return
        clock = 0.0
        emitted = 0
        # Cap the background volume so month-long traces stay tractable.
        while emitted < 200000:
            clock += rng.expovariate(config.noise_rate_per_second)
            if clock >= config.duration_seconds:
                return
            prefix = prefixes[rng.randrange(len(prefixes))]
            if rng.random() < 0.5:
                yield Update.withdraw(clock, peer.peer_as, prefix)
            else:
                path = topology.rib[prefix]
                attributes = PathAttributes(as_path=path, next_hop=peer.peer_as)
                yield Update.announce(clock, peer.peer_as, prefix, attributes)
            emitted += 1


class SyntheticTraceStream:
    """A lazy, per-session view of a synthetic trace.

    Topologies and burst plans are built per session on first access; the
    message iterators merge each session's bursts and background noise in
    timestamp order, materialising a burst's messages only once the replay
    clock reaches its planned start.  Replaying a month of one session
    therefore starts yielding messages immediately and keeps at most a few
    in-flight bursts in memory, instead of paying the full eager generation
    (~minutes for the benchmark corpus) upfront.

    :meth:`materialise` drains the stream into the eager
    :class:`SyntheticTrace`; both paths draw from the same per-burst RNG
    seeds, so they produce identical traces.
    """

    def __init__(
        self, generator: SyntheticTraceGenerator, peers: List[CollectorPeer]
    ) -> None:
        self._generator = generator
        self.config = generator.config
        self.peers = peers
        self._index_of = {peer.peer_as: index for index, peer in enumerate(peers)}
        self._topologies: Dict[int, SessionTopology] = {}
        self._plans: Dict[int, List[BurstPlan]] = {}

    # -- lazy per-session state ----------------------------------------------

    def _peer(self, peer_as: int) -> CollectorPeer:
        return self.peers[self._index_of[peer_as]]

    def topology_of(self, peer_as: int) -> SessionTopology:
        """The session's AS-path topology (built on first access)."""
        topology = self._topologies.get(peer_as)
        if topology is None:
            index = self._index_of[peer_as]
            topology = self._generator._session_topology(self.peers[index], index)
            self._topologies[peer_as] = topology
        return topology

    def rib_of(self, peer_as: int) -> Dict[Prefix, ASPath]:
        """Pre-trace RIB snapshot of a session."""
        return self.topology_of(peer_as).rib

    def plans_of(self, peer_as: int) -> List[BurstPlan]:
        """The session's burst plans, sorted by start time (cheap to draw)."""
        plans = self._plans.get(peer_as)
        if plans is None:
            index = self._index_of[peer_as]
            plans = self._generator._session_plans(self.peers[index], index)
            self._plans[peer_as] = plans
        return plans

    # -- streaming ------------------------------------------------------------

    def iter_bursts(self, peer_as: int) -> Iterator[SyntheticBurst]:
        """Materialise the session's bursts one at a time, in start order."""
        topology = self.topology_of(peer_as)
        for plan in self.plans_of(peer_as):
            burst = self._generator._materialise_burst(plan, topology)
            if burst is not None:
                yield burst

    def iter_messages(self, peer_as: int) -> Iterator[BGPMessage]:
        """The session's full message stream (bursts + noise), lazily merged.

        Messages come out in timestamp order.  A burst is only materialised
        when the merged clock reaches its planned start time, so consuming
        the head of a month-long stream does not pay for its tail.
        """
        index = self._index_of[peer_as]
        peer = self.peers[index]
        topology = self.topology_of(peer_as)
        pending = deque(self.plans_of(peer_as))
        heap: List[Tuple[float, int, BGPMessage, Iterator[BGPMessage]]] = []
        counter = itertools.count()

        def push(iterator: Iterator[BGPMessage]) -> None:
            for message in iterator:
                heapq.heappush(
                    heap, (message.timestamp, next(counter), message, iterator)
                )
                return

        push(self._generator._background_stream(peer, topology, index))
        while heap or pending:
            # Materialise every burst that could out-date the earliest
            # queued message (burst messages never precede their start).
            while pending and (not heap or pending[0].start_time <= heap[0][0]):
                burst = self._generator._materialise_burst(
                    pending.popleft(), topology
                )
                if burst is not None and burst.messages:
                    push(iter(burst.messages))
            if not heap:
                continue
            _, _, message, iterator = heapq.heappop(heap)
            yield message
            push(iterator)

    def columnar_messages(
        self, peer_as: int, pool: Optional[InternPool] = None
    ) -> ColumnarTrace:
        """Drain one session's full stream straight into a columnar writer.

        The per-burst message lists are materialised one at a time by
        :meth:`iter_messages` and appended to the columns immediately, so at
        no point does the month-long object stream exist in memory — this is
        the builder behind :func:`cached_columnar_stream`.
        """
        trace = ColumnarTrace(pool=pool)
        append = trace.append
        for message in self.iter_messages(peer_as):
            append(message)
        return trace

    # -- eager drain -----------------------------------------------------------

    def materialise(self) -> SyntheticTrace:
        """Drain the whole stream into an eager :class:`SyntheticTrace`."""
        topologies: Dict[int, SessionTopology] = {}
        bursts: List[SyntheticBurst] = []
        background: Dict[int, List[BGPMessage]] = {}
        for index, peer in enumerate(self.peers):
            topology = self.topology_of(peer.peer_as)
            topologies[peer.peer_as] = topology
            bursts.extend(self.iter_bursts(peer.peer_as))
            background[peer.peer_as] = list(
                self._generator._background_stream(peer, topology, index)
            )
        bursts.sort(key=lambda burst: burst.start_time)
        return SyntheticTrace(
            config=self.config,
            peers=self.peers,
            topologies=topologies,
            bursts=bursts,
            background=background,
        )


class ColumnarSyntheticTrace(SyntheticTrace):
    """A cache-reloaded trace whose heavy state lives in columns.

    Behaves like :class:`SyntheticTrace` — same bursts, RIBs and message
    streams — but burst/background message lists are lazy
    :class:`~repro.traces.columnar.ColumnarMessageView`\\ s over shared
    columns and per-session RIBs decode on first access.  ``topologies`` is
    intentionally empty: the cache stores RIB columns, not the generator's
    internal tree structures.
    """

    def __init__(
        self,
        config: SyntheticTraceConfig,
        peers: List[CollectorPeer],
        bursts: List[SyntheticBurst],
        background: Dict[int, List[BGPMessage]],
        pool: InternPool,
        rib_columns: Dict[int, Tuple],
    ) -> None:
        super().__init__(
            config=config,
            peers=peers,
            topologies={},
            bursts=bursts,
            background=background,
        )
        self._pool = pool
        self._rib_columns = rib_columns
        self._rib_cache: Dict[int, Dict[Prefix, ASPath]] = {}

    def rib_of(self, peer_as: int) -> Dict[Prefix, ASPath]:
        """Pre-trace RIB snapshot of a session (decoded once, then memoised)."""
        rib = self._rib_cache.get(peer_as)
        if rib is None:
            prefix_column, path_column = self._rib_columns[peer_as]
            rib = self._rib_cache[peer_as] = decode_rib(
                prefix_column, path_column, self._pool
            )
        return rib


def _encode_trace(trace: SyntheticTrace) -> dict:
    """Encode an eager trace as a columnar payload (see ``cached_trace``)."""
    pool = InternPool()
    intern_prefix = pool.intern_prefix
    burst_columns = ColumnarTrace(pool=pool)
    burst_rows = []
    for burst in trace.bursts:
        start = burst_columns.message_count
        burst_columns.extend(burst.messages)
        burst_rows.append(
            (
                burst.peer,
                burst.start_time,
                burst.failed_link,
                start,
                burst_columns.message_count,
                array("I", map(intern_prefix, burst.withdrawn_prefixes)),
                array("I", map(intern_prefix, burst.updated_prefixes)),
                array("I", map(intern_prefix, burst.noise_prefixes)),
                burst.popular,
            )
        )
    background = {
        peer_as: ColumnarTrace.from_messages(messages, pool=pool)
        for peer_as, messages in trace.background.items()
        if messages
    }
    ribs = {
        peer.peer_as: encode_rib(trace.rib_of(peer.peer_as), pool)
        for peer in trace.peers
    }
    return {
        "config": trace.config,
        "peers": trace.peers,
        "pool": pool,
        "bursts_trace": burst_columns,
        "bursts": burst_rows,
        "background": background,
        "ribs": ribs,
    }


def _decode_trace(payload: dict) -> ColumnarSyntheticTrace:
    """Rebuild a (lazy) trace from its columnar payload."""
    pool: InternPool = payload["pool"]
    burst_columns: ColumnarTrace = payload["bursts_trace"]
    prefix_at = pool.prefix_at
    bursts: List[SyntheticBurst] = []
    for (
        peer,
        start_time,
        failed_link,
        message_start,
        message_stop,
        withdrawn,
        updated,
        noise,
        popular,
    ) in payload["bursts"]:
        bursts.append(
            SyntheticBurst(
                peer=peer,
                start_time=start_time,
                failed_link=failed_link,
                messages=ColumnarMessageView(
                    burst_columns, range(message_start, message_stop)
                ),
                withdrawn_prefixes=frozenset(map(prefix_at, withdrawn)),
                updated_prefixes=frozenset(map(prefix_at, updated)),
                noise_prefixes=frozenset(map(prefix_at, noise)),
                popular=popular,
            )
        )
    background = {
        peer_as: columns.view() for peer_as, columns in payload["background"].items()
    }
    return ColumnarSyntheticTrace(
        config=payload["config"],
        peers=payload["peers"],
        bursts=bursts,
        background=background,
        pool=pool,
        rib_columns=payload["ribs"],
    )


def cached_trace(config: Optional[SyntheticTraceConfig] = None) -> SyntheticTrace:
    """Generate (or reload from the on-disk cache) a multi-session trace.

    The trace is a pure function of its configuration, so the entry under
    ``.trace_cache/`` — keyed by the config's full fingerprint plus the
    cache and columnar format versions — is always valid for the running
    code; see :mod:`repro.traces.trace_cache`.  The persisted form is a
    columnar payload (arrays of primitives restoring at memcpy speed), so a
    reload costs array restores plus lazy decoding instead of unpickling
    millions of message objects; the first call pays the full generation
    and returns the eager trace, later sessions get an equivalent
    :class:`ColumnarSyntheticTrace`.
    """
    from repro.traces.trace_cache import fingerprint, load_or_build

    config = config or SyntheticTraceConfig()
    return load_or_build(
        "trace",
        fingerprint(config),
        lambda: SyntheticTraceGenerator(config).generate(),
        format_version=COLUMNAR_FORMAT_VERSION,
        encode=_encode_trace,
        decode=_decode_trace,
    )


def cached_columnar_stream(
    config: SyntheticTraceConfig, peer_as: int
) -> ColumnarTrace:
    """The full columnar message stream of one session, memoised on disk.

    The natural input of the month-replay drivers.  Entries live in the
    mmap-backed column-store layout (header + raw column segments, see
    :mod:`repro.traces.columnar_store`), so a reload is ``mmap`` plus one
    ``frombytes`` per column and replay consumes
    :meth:`~repro.traces.columnar.ColumnarTrace.iter_batches` without ever
    materialising the object stream.  For partial (time-window) loads of
    the same entry, use :func:`cached_columnar_stream_file`.
    """
    from repro.traces.trace_cache import fingerprint, load_or_build_columnar

    return load_or_build_columnar(
        "stream",
        f"{fingerprint(config)}|peer={peer_as}",
        lambda: SyntheticTraceGenerator(config).stream().columnar_messages(peer_as),
        format_version=COLUMNAR_FORMAT_VERSION,
    )


def cached_columnar_stream_file(config: SyntheticTraceConfig, peer_as: int):
    """Open one session's cached stream for on-demand (windowed) loads.

    Returns a :class:`~repro.traces.columnar_store.ColumnarTraceFile` —
    ``window(t0, t1)`` loads a time slice of the month without reading the
    rest of the file — or ``None`` when caching is disabled; the entry is
    generated and persisted first if missing.
    """
    from repro.traces.trace_cache import fingerprint, open_columnar

    return open_columnar(
        "stream",
        f"{fingerprint(config)}|peer={peer_as}",
        lambda: SyntheticTraceGenerator(config).stream().columnar_messages(peer_as),
        format_version=COLUMNAR_FORMAT_VERSION,
    )


def _poisson(mean: float, rng: random.Random) -> int:
    """Draw a Poisson variate (Knuth for small means, normal approx for large)."""
    if mean <= 0:
        return 0
    if mean > 50:
        return max(0, int(round(rng.gauss(mean, math.sqrt(mean)))))
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
