"""Synthetic full-table (DFZ-shaped) workload generator.

The synthetic burst traces top out around 30k prefixes; a real default-free
zone table is ~1M routes.  This module synthesises a table of that shape so
the trie RIB, the covering-prefix backup aggregation and the provisioning
pipeline can be driven at internet scale (`benchmarks/test_bench_fulltable.py`
→ ``BENCH_fulltable.json``):

* **Length mix** — covering blocks between /11 and /20 with /21–/24
  more-specifics underneath, plus flat /24-ish runs, echoing the measured
  DFZ distribution where ~60% of routes are /24 and most of them nest
  inside a shorter covering announcement.
* **Subnet nesting** — a configurable fraction of the table is generated as
  *blocks*: one covering prefix plus more-specific children scattered under
  it that overwhelmingly inherit the block's origin (a small
  ``divergent_fraction`` originates elsewhere, e.g. anycast or customer
  carve-outs).  This nesting is what the covering-prefix backup aggregation
  collapses — children sharing the cover's candidate profile cost no extra
  backup entries.
* **Power-law origins** — origin ASes are drawn with a heavily skewed
  distribution (a few hypergiants originate thousands of prefixes, a long
  tail originates one or two), which keeps the distinct-profile count far
  below the prefix count, exactly like interned real table dumps.

Per ``(peer, origin)`` the announced :class:`PathAttributes` are interned in
the table object, so every prefix sharing an origin shares attribute
*objects* — the invariant the profile-grouped and aggregated backup
computations key on.

Generation is deterministic per seed and streams straight into the columnar
substrate (:meth:`FullTable.columnar_table`); nothing quadratic, so the 1M
default builds in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.prefix import Prefix
from repro.traces.columnar import ColumnarTrace

__all__ = ["FullTable", "FullTableConfig", "FullTableGenerator"]

#: First usable network (skip 0/8); legacy short blocks go in
#: [_BASE_ADDRESS, _SHORT_REGION_END), /16 slots above it.
_BASE_ADDRESS = 0x01000000
_SHORT_REGION_END = 0x60000000

#: /16 allocation slots (upper 16 bits): [96.0.0.0, 224.0.0.0) — below
#: multicast.  Slots are shuffled so consecutive table entries land in
#: unrelated parts of the address space, like real registry allocations.
_SLOT_BASE = 0x6000
_SLOT_END = 0xE000

#: Rare legacy short covering blocks (/11–/15) with their weights, and the
#: common slot-sized covers (/16–/20): most allocations are /16–/20.
_SHORT_COVER_LENGTHS = (11, 12, 14, 15)
_SHORT_COVER_WEIGHTS = (1, 1, 2, 2)
_SLOT_COVER_LENGTHS = (16, 17, 18, 19, 20)
_SLOT_COVER_WEIGHTS = (40, 40, 44, 44, 40)

#: Flat-run lengths (routes with no covering announcement): the classic
#: DFZ histogram spike at /24 with a tail of shorter standalone routes.
_FLAT_LENGTHS = (16, 19, 20, 21, 22, 23, 24)
_FLAT_WEIGHTS = (2, 2, 3, 4, 6, 6, 30)


@dataclass(frozen=True)
class FullTableConfig:
    """Shape of the synthesised table.

    Attributes
    ----------
    prefix_count:
        Total number of routed prefixes to generate (~1M for a DFZ table).
    peer_count:
        Number of full-feed peering sessions announcing every prefix.
    origin_count:
        Size of the origin-AS pool (the DFZ sees ~65k origin ASes).
    nested_fraction:
        Fraction of blocks generated as cover + more-specific children (the
        rest are flat runs without a covering route).
    divergent_fraction:
        Probability that a nested child originates from a different AS than
        its covering block (breaking profile sharing for that child).
    transit_count:
        Size of the transit-AS pool used to build announced AS paths.
    seed:
        Generation seed; same seed, same table.
    """

    prefix_count: int = 1_000_000
    peer_count: int = 3
    origin_count: int = 65_000
    nested_fraction: float = 0.95
    divergent_fraction: float = 0.02
    transit_count: int = 400
    seed: int = 20170821

    def __post_init__(self) -> None:
        if self.prefix_count < 1:
            raise ValueError("prefix_count must be positive")
        if self.peer_count < 1:
            raise ValueError("peer_count must be positive")
        if self.origin_count < 1:
            raise ValueError("origin_count must be positive")
        if not 0.0 <= self.nested_fraction <= 1.0:
            raise ValueError("nested_fraction must be in [0, 1]")
        if not 0.0 <= self.divergent_fraction <= 1.0:
            raise ValueError("divergent_fraction must be in [0, 1]")

    @property
    def peers(self) -> Tuple[int, ...]:
        """The peer AS numbers (65001, 65002, ...)."""
        return tuple(65001 + index for index in range(self.peer_count))


class FullTable:
    """A generated full table: sorted prefixes with their origin ASes.

    Prefixes are unique and sorted by ``(network, length)`` — ready for
    ``PrefixTrie.build_from_sorted`` — with ``origins[i]`` the origin AS of
    ``prefixes[i]``.  Announced attributes are interned per
    ``(peer, origin)`` so profile-grouped consumers see shared objects.
    """

    def __init__(
        self,
        config: FullTableConfig,
        prefixes: List[Prefix],
        origins: List[int],
    ) -> None:
        self.config = config
        self.prefixes = prefixes
        self.origins = origins
        self.peers = config.peers
        self._attr_cache: Dict[Tuple[int, int], PathAttributes] = {}
        self._rng = Random(config.seed ^ 0x5F5F5F5F)

    def __len__(self) -> int:
        return len(self.prefixes)

    def attributes_for(self, peer_as: int, origin: int) -> PathAttributes:
        """The (interned) attributes ``peer_as`` announces for ``origin``.

        The AS path is ``peer -> transit(s) -> origin`` with one or two
        transits picked deterministically from the pool, so paths are 3–4
        hops and every prefix of an origin shares one attribute object per
        peer.
        """
        key = (peer_as, origin)
        attributes = self._attr_cache.get(key)
        if attributes is None:
            transit_count = self.config.transit_count
            first = 10_000 + (origin * 31 + peer_as * 7) % transit_count
            hops: Tuple[int, ...]
            if (origin + peer_as) % 3 == 0:
                hops = (peer_as, first, origin)
            else:
                second = 10_000 + (origin * 17 + peer_as * 13) % transit_count
                if second == first:
                    second = 10_000 + (second + 1 - 10_000) % transit_count
                hops = (peer_as, first, second, origin)
            attributes = PathAttributes(as_path=ASPath(hops), next_hop=peer_as)
            self._attr_cache[key] = attributes
        return attributes

    def entries(self, peer_as: int) -> Iterator[Tuple[Prefix, PathAttributes]]:
        """Yield the ``(prefix, attributes)`` feed of one peer, sorted."""
        attributes_for = self.attributes_for
        for prefix, origin in zip(self.prefixes, self.origins):
            yield prefix, attributes_for(peer_as, origin)

    def columnar_table(self) -> ColumnarTrace:
        """The full table as one columnar announcement trace at t=0.

        Peer-major order (the whole feed of peer 1, then peer 2, ...) so the
        speaker's columnar replay sees one long same-peer run per session.
        """
        trace = ColumnarTrace()
        announce = trace.announce
        for peer_as in self.peers:
            for prefix, attributes in self.entries(peer_as):
                announce(0.0, peer_as, prefix, attributes)
        return trace

    def burst(
        self,
        peer_as: int,
        count: int,
        start_time: float = 0.0,
        offset: int = 0,
        spacing: float = 0.0005,
    ) -> ColumnarTrace:
        """A withdrawal burst from one peer over a contiguous table slice.

        Models the paper's outage workload at table scale: ``count``
        consecutive prefixes (starting at ``offset`` in table order) are
        withdrawn by ``peer_as`` at ``spacing`` second intervals.
        """
        if count < 0 or offset < 0 or offset + count > len(self.prefixes):
            raise ValueError(
                f"burst slice [{offset}, {offset + count}) out of range "
                f"for a {len(self.prefixes)}-prefix table"
            )
        trace = ColumnarTrace()
        withdraw = trace.withdraw
        timestamp = start_time
        for prefix in self.prefixes[offset : offset + count]:
            withdraw(timestamp, peer_as, prefix)
            timestamp += spacing
        return trace

    def length_histogram(self) -> Dict[int, int]:
        """Mapping prefix length -> number of generated prefixes."""
        histogram: Dict[int, int] = {}
        for prefix in self.prefixes:
            length = prefix.length
            histogram[length] = histogram.get(length, 0) + 1
        return dict(sorted(histogram.items()))

    def nested_count(self) -> int:
        """Number of prefixes covered by a shorter prefix also in the table."""
        nested = 0
        covers: List[Prefix] = []
        for prefix in self.prefixes:
            while covers and not covers[-1].contains(prefix):
                covers.pop()
            if covers:
                nested += 1
            covers.append(prefix)
        return nested


class FullTableGenerator:
    """Streams out a :class:`FullTable` for a :class:`FullTableConfig`."""

    def __init__(self, config: Optional[FullTableConfig] = None) -> None:
        self.config = config or FullTableConfig()

    def _draw_origin(self, rng: Random) -> int:
        """Power-law origin draw: cubing the uniform skews mass to low ids."""
        origin_count = self.config.origin_count
        index = int(origin_count * rng.random() ** 3)
        if index >= origin_count:
            index = origin_count - 1
        return 3_000 + index

    def generate(self) -> FullTable:
        """Build the table (sorted, unique prefixes; aligned origins).

        Allocation is scattered, not packed: every /16-or-longer block claims
        a random /16 slot (and a random sub-position inside it), and a
        block's more-specific children sit at random offsets under the
        cover.  A packed layout would let per-bit structures share nearly
        every path between consecutive routes, which real tables — built
        from decades of unrelated registry allocations — do not allow.
        """
        config = self.config
        rng = Random(config.seed)
        pairs: List[Tuple[int, int, int]] = []  # (network, length, origin)
        target = config.prefix_count
        slots = list(range(_SLOT_BASE, _SLOT_END))
        rng.shuffle(slots)
        slot_index = 0
        short_cursor = _BASE_ADDRESS
        cover_lengths = _SHORT_COVER_LENGTHS + _SLOT_COVER_LENGTHS
        cover_weights = _SHORT_COVER_WEIGHTS + _SLOT_COVER_WEIGHTS
        while len(pairs) < target:
            remaining = target - len(pairs)
            if rng.random() < config.nested_fraction and remaining > 1:
                # Nested block: covering prefix + scattered children.
                cover_len = rng.choices(cover_lengths, cover_weights)[0]
                cover_size = 1 << (32 - cover_len)
                if cover_len < 16:
                    # Legacy short block: low region, random slack between.
                    base = (short_cursor + cover_size - 1) & ~(cover_size - 1)
                    if base + cover_size > _SHORT_REGION_END:
                        raise RuntimeError(
                            "full-table generation ran out of legacy space; "
                            "lower prefix_count"
                        )
                    short_cursor = base + cover_size * (1 + rng.randint(0, 1))
                else:
                    if slot_index >= len(slots):
                        raise RuntimeError(
                            "full-table generation ran out of /16 slots; "
                            "lower prefix_count"
                        )
                    slot = slots[slot_index]
                    slot_index += 1
                    sub = rng.randrange(1 << (cover_len - 16))
                    base = (slot << 16) | (sub * cover_size)
                origin = self._draw_origin(rng)
                pairs.append((base, cover_len, origin))
                child_len = rng.randint(max(cover_len + 2, 21), 24)
                child_size = 1 << (32 - child_len)
                capacity = cover_size // child_size
                child_count = min(rng.randint(32, 96), capacity, remaining - 1)
                for offset in rng.sample(range(capacity), child_count):
                    child_origin = origin
                    if rng.random() < config.divergent_fraction:
                        child_origin = self._draw_origin(rng)
                    pairs.append((base + offset * child_size, child_len, child_origin))
            else:
                # Flat run: same-length standalone routes scattered in a slot.
                if slot_index >= len(slots):
                    raise RuntimeError(
                        "full-table generation ran out of /16 slots; "
                        "lower prefix_count"
                    )
                slot = slots[slot_index]
                slot_index += 1
                flat_len = rng.choices(_FLAT_LENGTHS, _FLAT_WEIGHTS)[0]
                flat_size = 1 << (32 - flat_len)
                capacity = 1 << (flat_len - 16)
                run = min(rng.randint(1, 24), capacity, remaining)
                base = slot << 16
                for offset in rng.sample(range(capacity), run):
                    pairs.append((base + offset * flat_size, flat_len, self._draw_origin(rng)))
        pairs.sort()
        prefixes = [Prefix(network, length) for network, length, _ in pairs]
        origins = [origin for _, _, origin in pairs]
        return FullTable(config, prefixes, origins)
