"""Route collectors and collector peers.

RouteViews and RIPE RIS operate collectors, each maintaining BGP sessions
with tens of peer routers around the world; the paper uses 15 collectors and
213 peering sessions (§6.1).  This module models that fleet: a
:class:`CollectorPeer` is one peering session with its own table size and
activity level, a :class:`Collector` groups several peers, and
:func:`build_collector_fleet` creates a realistic mix (a few very large
transit feeds, many medium ones).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Collector", "CollectorPeer", "build_collector_fleet"]


@dataclass(frozen=True)
class CollectorPeer:
    """One peering session between a collector and a peer router.

    ``table_size`` is the number of prefixes the peer announces to the
    collector; ``activity_multiplier`` scales how many bursts the session
    sees in a month (62% of sessions see 1-10 bursts, 24% more than 10 and
    14% none, per §2.2.1).
    """

    collector: str
    peer_as: int
    table_size: int
    activity_multiplier: float = 1.0
    flapping: bool = False

    @property
    def name(self) -> str:
        """Stable identifier, e.g. ``"rrc00-AS3356"``."""
        return f"{self.collector}-AS{self.peer_as}"


@dataclass
class Collector:
    """A route collector with its set of peering sessions."""

    name: str
    project: str
    peers: List[CollectorPeer] = field(default_factory=list)

    @property
    def peer_count(self) -> int:
        """Number of peering sessions this collector maintains."""
        return len(self.peers)


# Names follow the real projects: RouteViews collectors and RIPE RIS "rrc" boxes.
_ROUTEVIEWS_NAMES = (
    "route-views2",
    "route-views3",
    "route-views4",
    "route-views6",
    "route-views.eqix",
    "route-views.isc",
    "route-views.kixp",
    "route-views.linx",
    "route-views.sydney",
    "route-views.wide",
)
_RIS_NAMES = ("rrc00", "rrc01", "rrc03", "rrc04", "rrc05")


def build_collector_fleet(
    peer_count: int = 213,
    seed: int = 0,
    min_table_size: int = 4000,
    max_table_size: int = 120000,
    flapping_peers: int = 0,
) -> List[Collector]:
    """Create a fleet of collectors totalling ``peer_count`` peering sessions.

    Sessions are spread over 10 RouteViews and 5 RIS collectors (the paper's
    mix).  Table sizes are drawn log-uniformly between the bounds so the
    fleet contains both small customer feeds and large transit feeds, and
    activity multipliers reproduce the observed spread in per-session burst
    counts.  ``flapping_peers`` sessions are marked as flapping — the paper
    excludes 5 such peers from its analysis (§6.1), and we reproduce that
    filtering capability.
    """
    if peer_count <= 0:
        raise ValueError("peer_count must be positive")
    rng = random.Random(seed)
    collectors = [
        Collector(name=name, project="routeviews") for name in _ROUTEVIEWS_NAMES
    ] + [Collector(name=name, project="ris") for name in _RIS_NAMES]

    next_asn = 2900
    flapping_budget = flapping_peers
    for index in range(peer_count):
        collector = collectors[index % len(collectors)]
        log_min, log_max = math.log(min_table_size), math.log(max_table_size)
        table_size = int(round(math.exp(rng.uniform(log_min, log_max))))
        # Activity: 14% quiet, 62% normal (x1), 24% busy (x3-6).
        draw = rng.random()
        if draw < 0.14:
            activity = 0.0
        elif draw < 0.76:
            activity = rng.uniform(0.3, 1.5)
        else:
            activity = rng.uniform(2.0, 6.0)
        flapping = flapping_budget > 0
        if flapping:
            flapping_budget -= 1
            activity = max(activity, 8.0)
        peer = CollectorPeer(
            collector=collector.name,
            peer_as=next_asn,
            table_size=table_size,
            activity_multiplier=activity,
            flapping=flapping,
        )
        collector.peers.append(peer)
        next_asn += rng.randrange(3, 50)
    return collectors


def all_peers(collectors: Sequence[Collector], exclude_flapping: bool = True) -> List[CollectorPeer]:
    """Flatten a fleet into its list of peers, optionally dropping flapping ones."""
    peers: List[CollectorPeer] = []
    for collector in collectors:
        for peer in collector.peers:
            if exclude_flapping and peer.flapping:
                continue
            peers.append(peer)
    return peers
