"""Popular origin organizations.

§2.2.1 of the paper extracts, from the Cisco "Umbrella 1 Million" list, the
organizations behind the top 100 DNS domains (15 organizations: Google,
Akamai, Amazon, Apple, Microsoft, Facebook, etc.) and reports that 84% of the
observed withdrawal bursts include at least one prefix announced by one of
them.  We hard-code the organizations with a representative set of their
well-known origin AS numbers so the synthetic trace generator can mark some
origins as popular and the burst analysis can reproduce the statistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

__all__ = [
    "POPULAR_ORGANIZATIONS",
    "PopularOrigin",
    "all_popular_asns",
    "is_popular_asn",
    "organization_of",
]


@dataclass(frozen=True)
class PopularOrigin:
    """A popular content/cloud organization and its best-known origin ASNs."""

    name: str
    asns: Tuple[int, ...]


#: The 15 organizations behind the Umbrella top-100 domains (§2.2.1), with
#: representative public ASNs.
POPULAR_ORGANIZATIONS: Tuple[PopularOrigin, ...] = (
    PopularOrigin("Google", (15169, 396982, 43515)),
    PopularOrigin("Akamai", (20940, 16625, 32787)),
    PopularOrigin("Amazon", (16509, 14618)),
    PopularOrigin("Apple", (714, 6185)),
    PopularOrigin("Microsoft", (8075, 8068)),
    PopularOrigin("Facebook", (32934, 54115)),
    PopularOrigin("Netflix", (2906, 40027)),
    PopularOrigin("Cloudflare", (13335, 209242)),
    PopularOrigin("Twitter", (13414, 35995)),
    PopularOrigin("Yahoo", (10310, 26101)),
    PopularOrigin("Verisign", (7342, 26134)),
    PopularOrigin("Fastly", (54113,)),
    PopularOrigin("Limelight", (22822,)),
    PopularOrigin("Dropbox", (19679,)),
    PopularOrigin("LinkedIn", (14413, 20049)),
)


def all_popular_asns() -> FrozenSet[int]:
    """The set of every ASN belonging to a popular organization."""
    asns: List[int] = []
    for organization in POPULAR_ORGANIZATIONS:
        asns.extend(organization.asns)
    return frozenset(asns)


_POPULAR_LOOKUP: Dict[int, str] = {
    asn: organization.name
    for organization in POPULAR_ORGANIZATIONS
    for asn in organization.asns
}


def is_popular_asn(asn: int) -> bool:
    """True if ``asn`` belongs to one of the popular organizations."""
    return asn in _POPULAR_LOOKUP


def organization_of(asn: int) -> str:
    """Name of the popular organization owning ``asn`` (KeyError if not popular)."""
    return _POPULAR_LOOKUP[asn]


def popular_origins_in(origin_asns: Iterable[int]) -> FrozenSet[str]:
    """Names of the popular organizations present in a collection of origin ASNs."""
    return frozenset(
        _POPULAR_LOOKUP[asn] for asn in origin_asns if asn in _POPULAR_LOOKUP
    )
