"""Columnar (array-backed) BGP update streams.

A month of replay input is millions of tiny :class:`~repro.bgp.messages`
objects; pickling and — above all — unpickling that object graph dominates
cold-start time, and iterating it keeps the replay hot path busy chasing
pointers.  This module stores a trace as parallel arrays of primitives
(stdlib :mod:`array` only):

* **Interning tables** (:class:`InternPool`): every distinct prefix, AS
  path, community set and attribute set is stored once, as columns, and
  referenced by index.  Real streams repeat a few thousand attribute sets
  across millions of messages, so the tables stay tiny next to the stream.
* **Message columns** (:class:`ColumnarTrace`): one row per message —
  float64 timestamp, peer AS, a kind byte — plus cumulative withdrawal /
  announcement bounds indexing into flat per-prefix columns.

The columns pickle as raw bytes (a memcpy at load time), which is what makes
the trace cache reload month traces several-fold faster than the previous
pickled-object-graph entries; :data:`COLUMNAR_FORMAT_VERSION` is embedded in
the pickle and checked on restore so stale blobs fail loudly (the cache
layer treats the failure as a miss and rebuilds).

Consumers have three access grains:

* :meth:`ColumnarTrace.iter_messages` materialises :class:`BGPMessage`
  objects lazily, sharing the interned prefix/attribute objects — a
  round-trip through the columns yields messages equal to the originals;
* :meth:`ColumnarTrace.iter_batches` yields :class:`ColumnarRun` views —
  consecutive same-peer runs in exactly the shape the batched speaker path
  wants.  A run is a sequence of messages *and* a window onto the raw
  columns, which lets :meth:`repro.bgp.session.PeeringSession.process_columnar_run`
  apply a run without constructing a single message object;
* :class:`ColumnarMessageView` answers aggregate questions (withdrawal
  counts, time bounds) straight from the columns in O(1).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Sequence as SequenceABC
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.bgp.attributes import ASPath, Community, Origin, PathAttributes
from repro.bgp.messages import (
    Announcement,
    BGPMessage,
    KeepAlive,
    Notification,
    OpenMessage,
    Update,
)
from repro.bgp.prefix import Prefix

__all__ = [
    "COLUMNAR_FORMAT_VERSION",
    "POOL_COLUMNS",
    "TRACE_COLUMNS",
    "ColumnarMessageView",
    "ColumnarRun",
    "ColumnarTrace",
    "InternPool",
    "decode_rib",
    "encode_rib",
]

#: Bump whenever the column schema changes; embedded in every pickled blob
#: and checked on restore, so an old blob can never be half-loaded.
COLUMNAR_FORMAT_VERSION = 1

#: The (name, typecode) schema of the interning-table columns, in payload
#: order.  Shared by the pickle path, the raw-buffer payloads and the
#: mmap-backed column store so the three on-disk forms can never drift.
POOL_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("prefix_net", "I"),
    ("prefix_len", "B"),
    ("path_asns", "I"),
    ("path_bounds", "I"),
    ("comm_packed", "I"),
    ("comm_bounds", "I"),
    ("attr_path", "I"),
    ("attr_next_hop", "q"),
    ("attr_local_pref", "q"),
    ("attr_med", "q"),
    ("attr_origin", "B"),
    ("attr_comms", "I"),
)

#: The (name, typecode) schema of the per-message stream columns.
TRACE_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("msg_time", "d"),
    ("msg_peer", "q"),
    ("msg_kind", "B"),
    ("wd_end", "I"),
    ("ann_end", "I"),
    ("wd_prefix", "I"),
    ("ann_prefix", "I"),
    ("ann_attr", "I"),
)

# Message kind bytes (column ``msg_kind``).
KIND_UPDATE = 0
KIND_OPEN = 1
KIND_KEEPALIVE = 2
KIND_NOTIFICATION = 3

_KIND_OF_TYPE = {
    OpenMessage: KIND_OPEN,
    KeepAlive: KIND_KEEPALIVE,
    Notification: KIND_NOTIFICATION,
}

_object_new = object.__new__
_EMPTY_TUPLE: Tuple = ()


def _make_update(
    timestamp: float,
    peer_as: int,
    announcements: Tuple[Announcement, ...],
    withdrawals: Tuple[Prefix, ...],
) -> Update:
    """Build an Update without the frozen-dataclass ``__setattr__`` tax.

    The fields land directly in the instance ``__dict__``; equality, hashing
    and pickling behave exactly as for a constructor-built message.  Used on
    the lazy materialisation path, where millions of messages may be built.
    """
    update = _object_new(Update)
    fields = update.__dict__
    fields["timestamp"] = timestamp
    fields["peer_as"] = peer_as
    fields["announcements"] = announcements
    fields["withdrawals"] = withdrawals
    return update


def _rebased(column: array, base: int) -> array:
    """Shift a sliced cumulative-bound column back to a zero origin."""
    if base:
        for index in range(len(column)):
            column[index] -= base
    return column


class InternPool:
    """Interning tables shared by the columns of one (or more) traces.

    Every distinct prefix, AS path, community set and attribute set is
    stored once as primitive columns and referenced by index.  Decoding is
    lazy and memoised per table entry, so two messages referencing the same
    attribute set materialise the *same* :class:`PathAttributes` object —
    which is exactly the identity-sharing the batched decision path groups
    by.
    """

    __slots__ = (
        "prefix_net",
        "prefix_len",
        "path_asns",
        "path_bounds",
        "comm_packed",
        "comm_bounds",
        "attr_path",
        "attr_next_hop",
        "attr_local_pref",
        "attr_med",
        "attr_origin",
        "attr_comms",
        "_maps_stale",
        "_prefix_ids",
        "_path_ids",
        "_comm_ids",
        "_attr_ids",
        "_prefix_cache",
        "_path_cache",
        "_comm_cache",
        "_attr_cache",
    )

    def __init__(self) -> None:
        self.prefix_net = array("I")
        self.prefix_len = array("B")
        self.path_asns = array("I")  # flattened ASNs of every interned path
        self.path_bounds = array("I", (0,))  # cumulative ends, len = paths + 1
        self.comm_packed = array("I")  # (asn << 16) | value, sorted per set
        self.comm_bounds = array("I", (0,))  # entry 0 is the empty set
        self.attr_path = array("I")
        self.attr_next_hop = array("q")
        self.attr_local_pref = array("q")
        self.attr_med = array("q")
        self.attr_origin = array("B")
        self.attr_comms = array("I")
        self._init_transients()
        # The empty community set is always entry 0.
        self.comm_bounds.append(0)
        self._comm_ids[_EMPTY_TUPLE] = 0
        self._comm_cache.append(frozenset())

    def _init_transients(self) -> None:
        self._maps_stale = False
        self._prefix_ids: Dict[Prefix, int] = {}
        self._path_ids: Dict[Tuple[int, ...], int] = {}
        self._comm_ids: Dict[Tuple[int, ...], int] = {}
        self._attr_ids: Dict[PathAttributes, int] = {}
        self._prefix_cache: List[Optional[Prefix]] = []
        self._path_cache: List[Optional[ASPath]] = []
        self._comm_cache: List[Optional[frozenset]] = []
        self._attr_cache: List[Optional[PathAttributes]] = []

    # -- interning (write path) -------------------------------------------

    def intern_prefix(self, prefix: Prefix) -> int:
        """Return the table index of ``prefix``, adding it if new."""
        if self._maps_stale:
            self._rebuild_intern_maps()
        index = self._prefix_ids.get(prefix)
        if index is None:
            index = self._prefix_ids[prefix] = len(self.prefix_net)
            self.prefix_net.append(prefix.network)
            self.prefix_len.append(prefix.length)
            self._prefix_cache.append(prefix)
        return index

    def intern_path(self, path: ASPath) -> int:
        """Return the table index of ``path``, adding it if new."""
        if self._maps_stale:
            self._rebuild_intern_maps()
        asns = path.asns
        index = self._path_ids.get(asns)
        if index is None:
            index = self._path_ids[asns] = len(self.path_bounds) - 1
            self.path_asns.extend(asns)
            self.path_bounds.append(len(self.path_asns))
            self._path_cache.append(path)
        return index

    def intern_communities(self, communities: frozenset) -> int:
        """Return the table index of a community set, adding it if new."""
        if not communities:
            return 0
        if self._maps_stale:
            self._rebuild_intern_maps()
        packed = tuple(
            sorted((community.asn << 16) | community.value for community in communities)
        )
        index = self._comm_ids.get(packed)
        if index is None:
            index = self._comm_ids[packed] = len(self.comm_bounds) - 1
            self.comm_packed.extend(packed)
            self.comm_bounds.append(len(self.comm_packed))
            self._comm_cache.append(frozenset(communities))
        return index

    def intern_attributes(self, attributes: PathAttributes) -> int:
        """Return the table index of an attribute set, adding it if new."""
        if self._maps_stale:
            self._rebuild_intern_maps()
        index = self._attr_ids.get(attributes)
        if index is None:
            index = self._attr_ids[attributes] = len(self.attr_path)
            self.attr_path.append(self.intern_path(attributes.as_path))
            self.attr_next_hop.append(attributes.next_hop)
            self.attr_local_pref.append(attributes.local_pref)
            self.attr_med.append(attributes.med)
            self.attr_origin.append(int(attributes.origin))
            self.attr_comms.append(self.intern_communities(attributes.communities))
            self._attr_cache.append(attributes)
        return index

    # -- materialisation (read path) --------------------------------------

    def prefix_at(self, index: int) -> Prefix:
        """The interned prefix at ``index`` (materialised once)."""
        prefix = self._prefix_cache[index]
        if prefix is None:
            prefix = self._prefix_cache[index] = Prefix(
                self.prefix_net[index], self.prefix_len[index]
            )
        return prefix

    def path_at(self, index: int) -> ASPath:
        """The interned AS path at ``index`` (materialised once)."""
        path = self._path_cache[index]
        if path is None:
            start, stop = self.path_bounds[index], self.path_bounds[index + 1]
            path = self._path_cache[index] = ASPath(self.path_asns[start:stop])
        return path

    def communities_at(self, index: int) -> frozenset:
        """The interned community set at ``index`` (materialised once)."""
        communities = self._comm_cache[index]
        if communities is None:
            start, stop = self.comm_bounds[index], self.comm_bounds[index + 1]
            communities = self._comm_cache[index] = frozenset(
                Community(packed >> 16, packed & 0xFFFF)
                for packed in self.comm_packed[start:stop]
            )
        return communities

    def attributes_at(self, index: int) -> PathAttributes:
        """The interned attribute set at ``index`` (materialised once)."""
        attributes = self._attr_cache[index]
        if attributes is None:
            attributes = self._attr_cache[index] = PathAttributes(
                as_path=self.path_at(self.attr_path[index]),
                next_hop=self.attr_next_hop[index],
                local_pref=self.attr_local_pref[index],
                med=self.attr_med[index],
                origin=Origin(self.attr_origin[index]),
                communities=self.communities_at(self.attr_comms[index]),
            )
        return attributes

    def prefix_id(self, prefix: Prefix) -> Optional[int]:
        """Table index of an already-interned prefix, ``None`` when unknown.

        The read-side inverse of :meth:`prefix_at`.  Unlike the intern_*
        writers it refills only the *prefix* map of a restored pool (the
        path/community/attribute maps stay lazy), so reverse lookups on a
        replayed trace do not force the whole pool to materialise.
        """
        ids = self._prefix_ids
        if not ids and len(self.prefix_net):
            prefix_at = self.prefix_at
            for index in range(len(self.prefix_net)):
                ids[prefix_at(index)] = index
        return ids.get(prefix)

    def prefixes_at(self, indices: Sequence[int]) -> List[Prefix]:
        """Materialise many interned prefixes at once.

        The batched twin of :meth:`prefix_at`: one C-speed gather over the
        decoded-prefix cache, with a Python fixup only for entries not yet
        decoded.  This is how the vectorised fit-score fold turns a kernel's
        row indices back into the interned objects the engine's index keys
        by — the interning table stays outside the kernel.
        """
        cache = self._prefix_cache
        prefixes = list(map(cache.__getitem__, indices))
        if None in prefixes:
            prefix_at = self.prefix_at
            for position, prefix in enumerate(prefixes):
                if prefix is None:
                    prefixes[position] = prefix_at(indices[position])
        return prefixes

    # -- sizes -------------------------------------------------------------

    @property
    def prefix_count(self) -> int:
        """Number of interned prefixes."""
        return len(self.prefix_net)

    @property
    def path_count(self) -> int:
        """Number of interned AS paths."""
        return len(self.path_bounds) - 1

    @property
    def attribute_count(self) -> int:
        """Number of interned attribute sets."""
        return len(self.attr_path)

    # -- pickling ----------------------------------------------------------

    def __getstate__(self):
        return (
            COLUMNAR_FORMAT_VERSION,
            self.prefix_net,
            self.prefix_len,
            self.path_asns,
            self.path_bounds,
            self.comm_packed,
            self.comm_bounds,
            self.attr_path,
            self.attr_next_hop,
            self.attr_local_pref,
            self.attr_med,
            self.attr_origin,
            self.attr_comms,
        )

    def __setstate__(self, state) -> None:
        version = state[0]
        if version != COLUMNAR_FORMAT_VERSION:
            raise ValueError(
                f"columnar format v{version} blob, running code expects "
                f"v{COLUMNAR_FORMAT_VERSION}"
            )
        (
            _,
            self.prefix_net,
            self.prefix_len,
            self.path_asns,
            self.path_bounds,
            self.comm_packed,
            self.comm_bounds,
            self.attr_path,
            self.attr_next_hop,
            self.attr_local_pref,
            self.attr_med,
            self.attr_origin,
            self.attr_comms,
        ) = state
        self._init_transients()
        # Restored pools decode lazily: the materialisation caches start
        # empty and the interning maps refill on the first intern_* call
        # (_rebuild_intern_maps), so append-after-load re-uses existing
        # table entries instead of duplicating them.
        self._maps_stale = True
        self._prefix_cache = [None] * len(self.prefix_net)
        self._path_cache = [None] * (len(self.path_bounds) - 1)
        self._comm_cache = [None] * (len(self.comm_bounds) - 1)
        self._attr_cache = [None] * len(self.attr_path)

    def _rebuild_intern_maps(self) -> None:
        """Refill the interning maps of a restored pool (append-after-load)."""
        self._maps_stale = False
        for index in range(len(self.prefix_net)):
            self._prefix_ids[self.prefix_at(index)] = index
        for index in range(len(self.path_bounds) - 1):
            self._path_ids[self.path_at(index).asns] = index
        for index in range(len(self.comm_bounds) - 1):
            start, stop = self.comm_bounds[index], self.comm_bounds[index + 1]
            self._comm_ids[tuple(self.comm_packed[start:stop])] = index
        for index in range(len(self.attr_path)):
            self._attr_ids[self.attributes_at(index)] = index

    # -- raw-buffer payloads ------------------------------------------------

    def to_payload(self) -> Dict[str, bytes]:
        """Export the tables as a flat name -> raw ``bytes`` mapping.

        The payload contains no Python object graph — only the column
        buffers — so it ships across process boundaries (or into the mmap
        column store) at memcpy cost.  Restore with :meth:`from_payload`.
        """
        return {name: getattr(self, name).tobytes() for name, _ in POOL_COLUMNS}

    @classmethod
    def from_payload(cls, payload: Mapping[str, bytes]) -> "InternPool":
        """Rebuild a pool from :meth:`to_payload` buffers (lazy decoding)."""
        pool = _object_new(cls)
        for name, typecode in POOL_COLUMNS:
            column = array(typecode)
            column.frombytes(payload[name])
            setattr(pool, name, column)
        pool._init_transients()
        pool._maps_stale = True
        pool._prefix_cache = [None] * len(pool.prefix_net)
        pool._path_cache = [None] * (len(pool.path_bounds) - 1)
        pool._comm_cache = [None] * (len(pool.comm_bounds) - 1)
        pool._attr_cache = [None] * len(pool.attr_path)
        return pool


class ColumnarTrace:
    """A BGP message stream stored as parallel arrays of primitives.

    Doubles as its own writer: :meth:`append` (or the cheaper
    :meth:`announce` / :meth:`withdraw` fast paths) grow the columns in
    place, which is how the synthetic generator and the MRT reader emit
    straight into columnar form without an intermediate object stream.
    """

    __slots__ = (
        "pool",
        "msg_time",
        "msg_peer",
        "msg_kind",
        "wd_end",
        "ann_end",
        "wd_prefix",
        "ann_prefix",
        "ann_attr",
        "extras",
        "_announcement_cache",
    )

    def __init__(self, pool: Optional[InternPool] = None) -> None:
        self.pool = pool if pool is not None else InternPool()
        self.msg_time = array("d")
        self.msg_peer = array("q")
        self.msg_kind = array("B")
        # Cumulative withdrawal / announcement counts *through* message i;
        # message i's withdrawals are wd_prefix[wd_end[i-1]:wd_end[i]].
        self.wd_end = array("I")
        self.ann_end = array("I")
        self.wd_prefix = array("I")
        self.ann_prefix = array("I")
        self.ann_attr = array("I")
        # Rare non-UPDATE payloads, keyed by message index:
        # OPEN -> (hold_time,), NOTIFICATION -> (error_code, subcode, reason).
        self.extras: Dict[int, tuple] = {}
        # (prefix index, attribute index) -> shared Announcement object.
        self._announcement_cache: Dict[Tuple[int, int], Announcement] = {}

    # -- write path --------------------------------------------------------

    def announce(
        self, timestamp: float, peer_as: int, prefix: Prefix, attributes: PathAttributes
    ) -> None:
        """Append a single-prefix announcement UPDATE."""
        pool = self.pool
        self.msg_time.append(timestamp)
        self.msg_peer.append(peer_as)
        self.msg_kind.append(KIND_UPDATE)
        self.ann_prefix.append(pool.intern_prefix(prefix))
        self.ann_attr.append(pool.intern_attributes(attributes))
        self.ann_end.append(len(self.ann_prefix))
        self.wd_end.append(len(self.wd_prefix))

    def withdraw(self, timestamp: float, peer_as: int, prefix: Prefix) -> None:
        """Append a single-prefix withdrawal UPDATE."""
        self.msg_time.append(timestamp)
        self.msg_peer.append(peer_as)
        self.msg_kind.append(KIND_UPDATE)
        self.wd_prefix.append(self.pool.intern_prefix(prefix))
        self.wd_end.append(len(self.wd_prefix))
        self.ann_end.append(len(self.ann_prefix))

    def append(self, message: BGPMessage) -> None:
        """Append any BGP message."""
        if isinstance(message, Update):
            pool = self.pool
            self.msg_time.append(message.timestamp)
            self.msg_peer.append(message.peer_as)
            self.msg_kind.append(KIND_UPDATE)
            for prefix in message.withdrawals:
                self.wd_prefix.append(pool.intern_prefix(prefix))
            for announcement in message.announcements:
                self.ann_prefix.append(pool.intern_prefix(announcement.prefix))
                self.ann_attr.append(pool.intern_attributes(announcement.attributes))
            self.wd_end.append(len(self.wd_prefix))
            self.ann_end.append(len(self.ann_prefix))
            return
        kind = _KIND_OF_TYPE.get(type(message))
        if kind is None:
            raise TypeError(f"cannot encode message of type {type(message).__name__}")
        index = len(self.msg_time)
        self.msg_time.append(message.timestamp)
        self.msg_peer.append(message.peer_as)
        self.msg_kind.append(kind)
        self.wd_end.append(len(self.wd_prefix))
        self.ann_end.append(len(self.ann_prefix))
        if kind == KIND_OPEN:
            self.extras[index] = (message.hold_time,)
        elif kind == KIND_NOTIFICATION:
            self.extras[index] = (
                message.error_code,
                message.error_subcode,
                message.reason,
            )

    def extend(self, messages: Iterable[BGPMessage]) -> None:
        """Append a stream of messages."""
        append = self.append
        for message in messages:
            append(message)

    @classmethod
    def from_messages(
        cls, messages: Iterable[BGPMessage], pool: Optional[InternPool] = None
    ) -> "ColumnarTrace":
        """Encode an object stream into columns."""
        trace = cls(pool=pool)
        trace.extend(messages)
        return trace

    # -- aggregate queries (no materialisation) ----------------------------

    def __len__(self) -> int:
        return len(self.msg_time)

    @property
    def message_count(self) -> int:
        """Number of encoded messages."""
        return len(self.msg_time)

    @property
    def withdrawal_total(self) -> int:
        """Total number of withdrawn prefixes across the stream."""
        return len(self.wd_prefix)

    @property
    def announcement_total(self) -> int:
        """Total number of announced prefixes across the stream."""
        return len(self.ann_prefix)

    def withdrawals_between(self, start: int, stop: int) -> int:
        """Withdrawn-prefix count over the message index window [start, stop)."""
        if stop <= start:
            return 0
        low = self.wd_end[start - 1] if start else 0
        return self.wd_end[stop - 1] - low

    def announcements_between(self, start: int, stop: int) -> int:
        """Announced-prefix count over the message index window [start, stop)."""
        if stop <= start:
            return 0
        low = self.ann_end[start - 1] if start else 0
        return self.ann_end[stop - 1] - low

    # -- materialisation ---------------------------------------------------

    def _announcement_at(self, index: int) -> Announcement:
        key = (self.ann_prefix[index], self.ann_attr[index])
        announcement = self._announcement_cache.get(key)
        if announcement is None:
            pool = self.pool
            announcement = self._announcement_cache[key] = Announcement(
                pool.prefix_at(key[0]), pool.attributes_at(key[1])
            )
        return announcement

    def message_at(self, index: int) -> BGPMessage:
        """Materialise the message at ``index``."""
        kind = self.msg_kind[index]
        timestamp = self.msg_time[index]
        peer_as = self.msg_peer[index]
        if kind == KIND_UPDATE:
            wd_low = self.wd_end[index - 1] if index else 0
            ann_low = self.ann_end[index - 1] if index else 0
            wd_high = self.wd_end[index]
            ann_high = self.ann_end[index]
            prefix_at = self.pool.prefix_at
            withdrawals = tuple(
                prefix_at(self.wd_prefix[j]) for j in range(wd_low, wd_high)
            )
            announcements = tuple(
                self._announcement_at(j) for j in range(ann_low, ann_high)
            )
            return _make_update(timestamp, peer_as, announcements, withdrawals)
        if kind == KIND_OPEN:
            (hold_time,) = self.extras.get(index, (90.0,))
            return OpenMessage(timestamp=timestamp, peer_as=peer_as, hold_time=hold_time)
        if kind == KIND_KEEPALIVE:
            return KeepAlive(timestamp=timestamp, peer_as=peer_as)
        error_code, error_subcode, reason = self.extras.get(index, (6, 0, ""))
        return Notification(
            timestamp=timestamp,
            peer_as=peer_as,
            error_code=error_code,
            error_subcode=error_subcode,
            reason=reason,
        )

    def iter_messages(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[BGPMessage]:
        """Materialise messages lazily over [start, stop)."""
        if stop is None:
            stop = len(self.msg_time)
        message_at = self.message_at
        for index in range(start, stop):
            yield message_at(index)

    def to_messages(self) -> List[BGPMessage]:
        """Materialise the whole stream eagerly."""
        return list(self.iter_messages())

    # -- batched views -----------------------------------------------------

    def iter_batches(
        self, max_run: Optional[int] = None, kernel=None
    ) -> Iterator["ColumnarRun"]:
        """Yield consecutive same-peer runs, the batched replay unit.

        Each run is a :class:`ColumnarRun` — a lazy message sequence plus a
        raw-column window — sized so :meth:`BGPSpeaker.receive_batch` /
        :meth:`SpeakerBatch.add_columnar_run` can consume it directly.
        ``max_run`` caps run length (long single-peer streams are split so
        batch state stays bounded); splitting never reorders messages and
        does not change replay results.

        Run segmentation is a kernel (``run_boundaries``); ``kernel``
        overrides the auto-selected backend
        (:func:`repro.core.kernels.default_backend`).
        """
        if kernel is None:
            from repro.core import kernels

            kernel = kernels.default_backend()
        peers = self.msg_peer
        for start, stop in kernel.run_boundaries(peers, len(peers), max_run):
            yield ColumnarRun(self, start, stop, peers[start])

    def view(self, indices: Union[range, Sequence[int], None] = None) -> "ColumnarMessageView":
        """A (possibly non-contiguous) lazy message view over the trace."""
        if indices is None:
            indices = range(len(self.msg_time))
        return ColumnarMessageView(self, indices)

    def column_view(self, name: str) -> memoryview:
        """A zero-copy read-only view of one message column.

        ``name`` is a :data:`TRACE_COLUMNS` column (``msg_time``,
        ``msg_peer``, ``msg_kind``, ``wd_end``, ``ann_end``, ``wd_prefix``,
        ``ann_prefix``, ``ann_attr``).  The view shares the column's buffer
        — kernel backends wrap it (or the column itself) without copying —
        and therefore **pins** it: hold views only transiently, as appending
        to an exported column raises ``BufferError``.  This is the
        sanctioned way for out-of-tree kernels to reach raw column storage;
        in-tree kernels receive the columns as call arguments instead.
        """
        if not any(name == column for column, _ in TRACE_COLUMNS):
            raise KeyError(f"unknown trace column {name!r}")
        return memoryview(getattr(self, name)).toreadonly()

    # -- pickling ----------------------------------------------------------

    def __getstate__(self):
        return (
            COLUMNAR_FORMAT_VERSION,
            self.pool,
            self.msg_time,
            self.msg_peer,
            self.msg_kind,
            self.wd_end,
            self.ann_end,
            self.wd_prefix,
            self.ann_prefix,
            self.ann_attr,
            self.extras,
        )

    def __setstate__(self, state) -> None:
        version = state[0]
        if version != COLUMNAR_FORMAT_VERSION:
            raise ValueError(
                f"columnar format v{version} blob, running code expects "
                f"v{COLUMNAR_FORMAT_VERSION}"
            )
        (
            _,
            self.pool,
            self.msg_time,
            self.msg_peer,
            self.msg_kind,
            self.wd_end,
            self.ann_end,
            self.wd_prefix,
            self.ann_prefix,
            self.ann_attr,
            self.extras,
        ) = state
        self._announcement_cache = {}

    # -- raw-buffer payloads ------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """Export the trace as plain buffers — no object-graph pickling.

        The returned mapping holds only primitives: the format version, one
        raw ``bytes`` buffer per message column, the pool's buffers (nested
        under ``"pool"``) and the tiny ``extras`` dict of non-UPDATE
        payloads.  Pickling the payload is a handful of memcpys, which is
        what makes it the fleet-replay transport: a worker process receives
        the buffers and rebuilds the trace with :meth:`from_payload` without
        ever deserialising a message object graph.
        """
        payload: Dict[str, Any] = {
            "format": COLUMNAR_FORMAT_VERSION,
            "pool": self.pool.to_payload(),
            "extras": dict(self.extras),
        }
        for name, _ in TRACE_COLUMNS:
            payload[name] = getattr(self, name).tobytes()
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ColumnarTrace":
        """Rebuild a trace from :meth:`to_payload` buffers."""
        version = payload.get("format")
        if version != COLUMNAR_FORMAT_VERSION:
            raise ValueError(
                f"columnar format v{version} payload, running code expects "
                f"v{COLUMNAR_FORMAT_VERSION}"
            )
        trace = _object_new(cls)
        trace.pool = InternPool.from_payload(payload["pool"])
        for name, typecode in TRACE_COLUMNS:
            column = array(typecode)
            column.frombytes(payload[name])
            setattr(trace, name, column)
        trace.extras = dict(payload.get("extras") or {})
        trace._announcement_cache = {}
        return trace

    # -- windows -------------------------------------------------------------

    @property
    def first_timestamp(self) -> Optional[float]:
        """Timestamp of the first message, or ``None`` for an empty trace."""
        return self.msg_time[0] if len(self.msg_time) else None

    @property
    def last_timestamp(self) -> Optional[float]:
        """Timestamp of the last message, or ``None`` for an empty trace."""
        return self.msg_time[-1] if len(self.msg_time) else None

    def window(self, t0: float, t1: float) -> "ColumnarTrace":
        """The sub-trace with ``t0 <= timestamp < t1``, sharing the pool.

        Message timestamps are non-decreasing in every generated/parsed
        trace, so the window bounds come from a bisect on the timestamp
        column; the result is a standalone trace (its own rebased bound
        columns over sliced per-prefix columns) that replays through
        :meth:`iter_batches` like any other.
        """
        start = bisect_left(self.msg_time, t0)
        stop = bisect_left(self.msg_time, t1)
        return self.slice(start, stop)

    def slice(self, start: int, stop: int) -> "ColumnarTrace":
        """The sub-trace over the message index window [start, stop)."""
        total = len(self.msg_time)
        start = max(0, min(start, total))
        stop = max(start, min(stop, total))
        w_low = self.wd_end[start - 1] if start else 0
        a_low = self.ann_end[start - 1] if start else 0
        w_high = self.wd_end[stop - 1] if stop else 0
        a_high = self.ann_end[stop - 1] if stop else 0
        trace = _object_new(type(self))
        trace.pool = self.pool
        trace.msg_time = self.msg_time[start:stop]
        trace.msg_peer = self.msg_peer[start:stop]
        trace.msg_kind = self.msg_kind[start:stop]
        trace.wd_end = _rebased(self.wd_end[start:stop], w_low)
        trace.ann_end = _rebased(self.ann_end[start:stop], a_low)
        trace.wd_prefix = self.wd_prefix[w_low:w_high]
        trace.ann_prefix = self.ann_prefix[a_low:a_high]
        trace.ann_attr = self.ann_attr[a_low:a_high]
        trace.extras = {
            index - start: extra
            for index, extra in self.extras.items()
            if start <= index < stop
        }
        trace._announcement_cache = {}
        return trace


class ColumnarMessageView(SequenceABC):
    """A lazy, list-like view of selected messages of a columnar trace.

    Supports arbitrary index selections (burst membership lists) as well as
    contiguous ranges; aggregate queries are answered from the columns
    without materialising messages.
    """

    __slots__ = ("trace", "_indices")

    def __init__(self, trace: ColumnarTrace, indices: Union[range, Sequence[int]]) -> None:
        self.trace = trace
        self._indices = indices

    def __len__(self) -> int:
        return len(self._indices)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return [self.trace.message_at(index) for index in self._indices[item]]
        return self.trace.message_at(self._indices[item])

    def __iter__(self) -> Iterator[BGPMessage]:
        message_at = self.trace.message_at
        for index in self._indices:
            yield message_at(index)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} of {len(self)} messages>"

    # -- aggregates --------------------------------------------------------

    def withdrawal_count(self) -> int:
        """Total withdrawn prefixes in the view (column arithmetic only)."""
        indices = self._indices
        trace = self.trace
        if isinstance(indices, range) and indices.step == 1:
            return trace.withdrawals_between(indices.start, indices.stop)
        wd_end = trace.wd_end
        return sum(
            wd_end[index] - (wd_end[index - 1] if index else 0) for index in indices
        )

    def announcement_count(self) -> int:
        """Total announced prefixes in the view (column arithmetic only)."""
        indices = self._indices
        trace = self.trace
        if isinstance(indices, range) and indices.step == 1:
            return trace.announcements_between(indices.start, indices.stop)
        ann_end = trace.ann_end
        return sum(
            ann_end[index] - (ann_end[index - 1] if index else 0) for index in indices
        )

    @property
    def first_timestamp(self) -> Optional[float]:
        """Timestamp of the first message in the view, or ``None``."""
        if not len(self._indices):
            return None
        return self.trace.msg_time[self._indices[0]]

    @property
    def last_timestamp(self) -> Optional[float]:
        """Timestamp of the last message in the view, or ``None``."""
        if not len(self._indices):
            return None
        return self.trace.msg_time[self._indices[-1]]

    def materialise(self) -> List[BGPMessage]:
        """Build the message objects eagerly."""
        return list(self)


class ColumnarRun(ColumnarMessageView):
    """A consecutive same-peer window of a columnar trace.

    The unit yielded by :meth:`ColumnarTrace.iter_batches`:
    ``trace``/``start``/``stop`` expose the raw column window (the
    run-column contract documented in ``src/repro/traces/README.md``) that
    the session layer (:meth:`~repro.bgp.session.PeeringSession.process_columnar_run`)
    *and* the inference stack
    (:meth:`~repro.core.inference.InferenceEngine.process_columnar_run`)
    apply with zero message-object construction; iterating it still
    materialises messages lazily for consumers that want objects.
    """

    __slots__ = ("start", "stop", "peer_as")

    def __init__(self, trace: ColumnarTrace, start: int, stop: int, peer_as: int) -> None:
        super().__init__(trace, range(start, stop))
        self.start = start
        self.stop = stop
        self.peer_as = peer_as

    def withdrawal_count(self) -> int:
        """Withdrawn prefixes in the run (O(1))."""
        return self.trace.withdrawals_between(self.start, self.stop)

    def announcement_count(self) -> int:
        """Announced prefixes in the run (O(1))."""
        return self.trace.announcements_between(self.start, self.stop)

    def __repr__(self) -> str:
        return (
            f"ColumnarRun(peer_as={self.peer_as}, start={self.start}, "
            f"stop={self.stop})"
        )


# -- RIB columns ------------------------------------------------------------


def encode_rib(
    rib: Mapping[Prefix, ASPath], pool: InternPool
) -> Tuple[array, array]:
    """Encode a prefix -> AS-path table as (prefix index, path index) columns."""
    prefix_column = array("I")
    path_column = array("I")
    intern_prefix = pool.intern_prefix
    intern_path = pool.intern_path
    for prefix, path in rib.items():
        prefix_column.append(intern_prefix(prefix))
        path_column.append(intern_path(path))
    return prefix_column, path_column


def decode_rib(
    prefix_column: Sequence[int], path_column: Sequence[int], pool: InternPool
) -> Dict[Prefix, ASPath]:
    """Materialise a RIB from its columns, sharing interned objects."""
    prefix_at = pool.prefix_at
    path_at = pool.path_at
    return {
        prefix_at(prefix_index): path_at(path_index)
        for prefix_index, path_index in zip(prefix_column, path_column)
    }
