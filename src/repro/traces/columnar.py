"""Columnar (array-backed) BGP update streams.

A month of replay input is millions of tiny :class:`~repro.bgp.messages`
objects; pickling and — above all — unpickling that object graph dominates
cold-start time, and iterating it keeps the replay hot path busy chasing
pointers.  This module stores a trace as parallel arrays of primitives
(stdlib :mod:`array` only):

* **Interning tables** (:class:`InternPool`): every distinct prefix, AS
  path, community set and attribute set is stored once, as columns, and
  referenced by index.  Real streams repeat a few thousand attribute sets
  across millions of messages, so the tables stay tiny next to the stream.
* **Message columns** (:class:`ColumnarTrace`): one row per message —
  float64 timestamp, peer AS, a kind byte — plus cumulative withdrawal /
  announcement bounds indexing into flat per-prefix columns.

The columns pickle as raw bytes (a memcpy at load time), which is what makes
the trace cache reload month traces several-fold faster than the previous
pickled-object-graph entries; :data:`COLUMNAR_FORMAT_VERSION` is embedded in
the pickle and checked on restore so stale blobs fail loudly (the cache
layer treats the failure as a miss and rebuilds).

Consumers have three access grains:

* :meth:`ColumnarTrace.iter_messages` materialises :class:`BGPMessage`
  objects lazily, sharing the interned prefix/attribute objects — a
  round-trip through the columns yields messages equal to the originals;
* :meth:`ColumnarTrace.iter_batches` yields :class:`ColumnarRun` views —
  consecutive same-peer runs in exactly the shape the batched speaker path
  wants.  A run is a sequence of messages *and* a window onto the raw
  columns, which lets :meth:`repro.bgp.session.PeeringSession.process_columnar_run`
  apply a run without constructing a single message object;
* :class:`ColumnarMessageView` answers aggregate questions (withdrawal
  counts, time bounds) straight from the columns in O(1).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Sequence as SequenceABC
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.bgp.attributes import ASPath, Community, Origin, PathAttributes
from repro.bgp.messages import (
    Announcement,
    BGPMessage,
    KeepAlive,
    Notification,
    OpenMessage,
    Update,
)
from repro.bgp.prefix import Prefix
from repro.traces.validation import TraceValidationError, ValidationReport

__all__ = [
    "COLUMNAR_FORMAT_VERSION",
    "POOL_COLUMNS",
    "TRACE_COLUMNS",
    "ColumnarMessageView",
    "ColumnarRun",
    "ColumnarTrace",
    "InternPool",
    "decode_rib",
    "encode_rib",
]

#: Bump whenever the column schema changes; embedded in every pickled blob
#: and checked on restore, so an old blob can never be half-loaded.
COLUMNAR_FORMAT_VERSION = 1

#: The (name, typecode) schema of the interning-table columns, in payload
#: order.  Shared by the pickle path, the raw-buffer payloads and the
#: mmap-backed column store so the three on-disk forms can never drift.
POOL_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("prefix_net", "I"),
    ("prefix_len", "B"),
    ("path_asns", "I"),
    ("path_bounds", "I"),
    ("comm_packed", "I"),
    ("comm_bounds", "I"),
    ("attr_path", "I"),
    ("attr_next_hop", "q"),
    ("attr_local_pref", "q"),
    ("attr_med", "q"),
    ("attr_origin", "B"),
    ("attr_comms", "I"),
)

#: The (name, typecode) schema of the per-message stream columns.
TRACE_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("msg_time", "d"),
    ("msg_peer", "q"),
    ("msg_kind", "B"),
    ("wd_end", "I"),
    ("ann_end", "I"),
    ("wd_prefix", "I"),
    ("ann_prefix", "I"),
    ("ann_attr", "I"),
)

# Message kind bytes (column ``msg_kind``).
KIND_UPDATE = 0
KIND_OPEN = 1
KIND_KEEPALIVE = 2
KIND_NOTIFICATION = 3

_KIND_OF_TYPE = {
    OpenMessage: KIND_OPEN,
    KeepAlive: KIND_KEEPALIVE,
    Notification: KIND_NOTIFICATION,
}

_object_new = object.__new__
_EMPTY_TUPLE: Tuple = ()


def _make_update(
    timestamp: float,
    peer_as: int,
    announcements: Tuple[Announcement, ...],
    withdrawals: Tuple[Prefix, ...],
) -> Update:
    """Build an Update without the frozen-dataclass ``__setattr__`` tax.

    The fields land directly in the instance ``__dict__``; equality, hashing
    and pickling behave exactly as for a constructor-built message.  Used on
    the lazy materialisation path, where millions of messages may be built.
    """
    update = _object_new(Update)
    fields = update.__dict__
    fields["timestamp"] = timestamp
    fields["peer_as"] = peer_as
    fields["announcements"] = announcements
    fields["withdrawals"] = withdrawals
    return update


def _rebased(column: array, base: int) -> array:
    """Shift a sliced cumulative-bound column back to a zero origin."""
    if base:
        for index in range(len(column)):
            column[index] -= base
    return column


class InternPool:
    """Interning tables shared by the columns of one (or more) traces.

    Every distinct prefix, AS path, community set and attribute set is
    stored once as primitive columns and referenced by index.  Decoding is
    lazy and memoised per table entry, so two messages referencing the same
    attribute set materialise the *same* :class:`PathAttributes` object —
    which is exactly the identity-sharing the batched decision path groups
    by.
    """

    __slots__ = (
        "prefix_net",
        "prefix_len",
        "path_asns",
        "path_bounds",
        "comm_packed",
        "comm_bounds",
        "attr_path",
        "attr_next_hop",
        "attr_local_pref",
        "attr_med",
        "attr_origin",
        "attr_comms",
        "_maps_stale",
        "_prefix_ids",
        "_path_ids",
        "_comm_ids",
        "_attr_ids",
        "_prefix_cache",
        "_path_cache",
        "_comm_cache",
        "_attr_cache",
    )

    def __init__(self) -> None:
        self.prefix_net = array("I")
        self.prefix_len = array("B")
        self.path_asns = array("I")  # flattened ASNs of every interned path
        self.path_bounds = array("I", (0,))  # cumulative ends, len = paths + 1
        self.comm_packed = array("I")  # (asn << 16) | value, sorted per set
        self.comm_bounds = array("I", (0,))  # entry 0 is the empty set
        self.attr_path = array("I")
        self.attr_next_hop = array("q")
        self.attr_local_pref = array("q")
        self.attr_med = array("q")
        self.attr_origin = array("B")
        self.attr_comms = array("I")
        self._init_transients()
        # The empty community set is always entry 0.
        self.comm_bounds.append(0)
        self._comm_ids[_EMPTY_TUPLE] = 0
        self._comm_cache.append(frozenset())

    def _init_transients(self) -> None:
        self._maps_stale = False
        self._prefix_ids: Dict[Prefix, int] = {}
        self._path_ids: Dict[Tuple[int, ...], int] = {}
        self._comm_ids: Dict[Tuple[int, ...], int] = {}
        self._attr_ids: Dict[PathAttributes, int] = {}
        self._prefix_cache: List[Optional[Prefix]] = []
        self._path_cache: List[Optional[ASPath]] = []
        self._comm_cache: List[Optional[frozenset]] = []
        self._attr_cache: List[Optional[PathAttributes]] = []

    # -- interning (write path) -------------------------------------------

    def intern_prefix(self, prefix: Prefix) -> int:
        """Return the table index of ``prefix``, adding it if new."""
        if self._maps_stale:
            self._rebuild_intern_maps()
        index = self._prefix_ids.get(prefix)
        if index is None:
            index = self._prefix_ids[prefix] = len(self.prefix_net)
            self.prefix_net.append(prefix.network)
            self.prefix_len.append(prefix.length)
            self._prefix_cache.append(prefix)
        return index

    def intern_path(self, path: ASPath) -> int:
        """Return the table index of ``path``, adding it if new."""
        if self._maps_stale:
            self._rebuild_intern_maps()
        asns = path.asns
        index = self._path_ids.get(asns)
        if index is None:
            index = self._path_ids[asns] = len(self.path_bounds) - 1
            self.path_asns.extend(asns)
            self.path_bounds.append(len(self.path_asns))
            self._path_cache.append(path)
        return index

    def intern_communities(self, communities: frozenset) -> int:
        """Return the table index of a community set, adding it if new."""
        if not communities:
            return 0
        if self._maps_stale:
            self._rebuild_intern_maps()
        packed = tuple(
            sorted((community.asn << 16) | community.value for community in communities)
        )
        index = self._comm_ids.get(packed)
        if index is None:
            index = self._comm_ids[packed] = len(self.comm_bounds) - 1
            self.comm_packed.extend(packed)
            self.comm_bounds.append(len(self.comm_packed))
            self._comm_cache.append(frozenset(communities))
        return index

    def intern_attributes(self, attributes: PathAttributes) -> int:
        """Return the table index of an attribute set, adding it if new."""
        if self._maps_stale:
            self._rebuild_intern_maps()
        index = self._attr_ids.get(attributes)
        if index is None:
            index = self._attr_ids[attributes] = len(self.attr_path)
            self.attr_path.append(self.intern_path(attributes.as_path))
            self.attr_next_hop.append(attributes.next_hop)
            self.attr_local_pref.append(attributes.local_pref)
            self.attr_med.append(attributes.med)
            self.attr_origin.append(int(attributes.origin))
            self.attr_comms.append(self.intern_communities(attributes.communities))
            self._attr_cache.append(attributes)
        return index

    # -- materialisation (read path) --------------------------------------

    def prefix_at(self, index: int) -> Prefix:
        """The interned prefix at ``index`` (materialised once)."""
        prefix = self._prefix_cache[index]
        if prefix is None:
            prefix = self._prefix_cache[index] = Prefix(
                self.prefix_net[index], self.prefix_len[index]
            )
        return prefix

    def path_at(self, index: int) -> ASPath:
        """The interned AS path at ``index`` (materialised once)."""
        path = self._path_cache[index]
        if path is None:
            start, stop = self.path_bounds[index], self.path_bounds[index + 1]
            path = self._path_cache[index] = ASPath(self.path_asns[start:stop])
        return path

    def communities_at(self, index: int) -> frozenset:
        """The interned community set at ``index`` (materialised once)."""
        communities = self._comm_cache[index]
        if communities is None:
            start, stop = self.comm_bounds[index], self.comm_bounds[index + 1]
            communities = self._comm_cache[index] = frozenset(
                Community(packed >> 16, packed & 0xFFFF)
                for packed in self.comm_packed[start:stop]
            )
        return communities

    def attributes_at(self, index: int) -> PathAttributes:
        """The interned attribute set at ``index`` (materialised once)."""
        attributes = self._attr_cache[index]
        if attributes is None:
            attributes = self._attr_cache[index] = PathAttributes(
                as_path=self.path_at(self.attr_path[index]),
                next_hop=self.attr_next_hop[index],
                local_pref=self.attr_local_pref[index],
                med=self.attr_med[index],
                origin=Origin(self.attr_origin[index]),
                communities=self.communities_at(self.attr_comms[index]),
            )
        return attributes

    def prefix_id(self, prefix: Prefix) -> Optional[int]:
        """Table index of an already-interned prefix, ``None`` when unknown.

        The read-side inverse of :meth:`prefix_at`.  Unlike the intern_*
        writers it refills only the *prefix* map of a restored pool (the
        path/community/attribute maps stay lazy), so reverse lookups on a
        replayed trace do not force the whole pool to materialise.
        """
        ids = self._prefix_ids
        if not ids and len(self.prefix_net):
            prefix_at = self.prefix_at
            for index in range(len(self.prefix_net)):
                ids[prefix_at(index)] = index
        return ids.get(prefix)

    def prefixes_at(self, indices: Sequence[int]) -> List[Prefix]:
        """Materialise many interned prefixes at once.

        The batched twin of :meth:`prefix_at`: one C-speed gather over the
        decoded-prefix cache, with a Python fixup only for entries not yet
        decoded.  This is how the vectorised fit-score fold turns a kernel's
        row indices back into the interned objects the engine's index keys
        by — the interning table stays outside the kernel.
        """
        cache = self._prefix_cache
        prefixes = list(map(cache.__getitem__, indices))
        if None in prefixes:
            prefix_at = self.prefix_at
            for position, prefix in enumerate(prefixes):
                if prefix is None:
                    prefixes[position] = prefix_at(indices[position])
        return prefixes

    # -- sizes -------------------------------------------------------------

    @property
    def prefix_count(self) -> int:
        """Number of interned prefixes."""
        return len(self.prefix_net)

    @property
    def path_count(self) -> int:
        """Number of interned AS paths."""
        return len(self.path_bounds) - 1

    @property
    def attribute_count(self) -> int:
        """Number of interned attribute sets."""
        return len(self.attr_path)

    # -- pickling ----------------------------------------------------------

    def __getstate__(self):
        return (
            COLUMNAR_FORMAT_VERSION,
            self.prefix_net,
            self.prefix_len,
            self.path_asns,
            self.path_bounds,
            self.comm_packed,
            self.comm_bounds,
            self.attr_path,
            self.attr_next_hop,
            self.attr_local_pref,
            self.attr_med,
            self.attr_origin,
            self.attr_comms,
        )

    def __setstate__(self, state) -> None:
        version = state[0]
        if version != COLUMNAR_FORMAT_VERSION:
            raise ValueError(
                f"columnar format v{version} blob, running code expects "
                f"v{COLUMNAR_FORMAT_VERSION}"
            )
        (
            _,
            self.prefix_net,
            self.prefix_len,
            self.path_asns,
            self.path_bounds,
            self.comm_packed,
            self.comm_bounds,
            self.attr_path,
            self.attr_next_hop,
            self.attr_local_pref,
            self.attr_med,
            self.attr_origin,
            self.attr_comms,
        ) = state
        self._init_transients()
        # Restored pools decode lazily: the materialisation caches start
        # empty and the interning maps refill on the first intern_* call
        # (_rebuild_intern_maps), so append-after-load re-uses existing
        # table entries instead of duplicating them.
        self._maps_stale = True
        self._prefix_cache = [None] * len(self.prefix_net)
        self._path_cache = [None] * (len(self.path_bounds) - 1)
        self._comm_cache = [None] * (len(self.comm_bounds) - 1)
        self._attr_cache = [None] * len(self.attr_path)

    def _rebuild_intern_maps(self) -> None:
        """Refill the interning maps of a restored pool (append-after-load)."""
        self._maps_stale = False
        for index in range(len(self.prefix_net)):
            self._prefix_ids[self.prefix_at(index)] = index
        for index in range(len(self.path_bounds) - 1):
            self._path_ids[self.path_at(index).asns] = index
        for index in range(len(self.comm_bounds) - 1):
            start, stop = self.comm_bounds[index], self.comm_bounds[index + 1]
            self._comm_ids[tuple(self.comm_packed[start:stop])] = index
        for index in range(len(self.attr_path)):
            self._attr_ids[self.attributes_at(index)] = index

    # -- raw-buffer payloads ------------------------------------------------

    def to_payload(self) -> Dict[str, bytes]:
        """Export the tables as a flat name -> raw ``bytes`` mapping.

        The payload contains no Python object graph — only the column
        buffers — so it ships across process boundaries (or into the mmap
        column store) at memcpy cost.  Restore with :meth:`from_payload`.
        """
        return {name: getattr(self, name).tobytes() for name, _ in POOL_COLUMNS}

    @classmethod
    def from_payload(cls, payload: Mapping[str, bytes]) -> "InternPool":
        """Rebuild a pool from :meth:`to_payload` buffers (lazy decoding)."""
        pool = _object_new(cls)
        for name, typecode in POOL_COLUMNS:
            column = array(typecode)
            column.frombytes(payload[name])
            setattr(pool, name, column)
        pool._init_transients()
        pool._maps_stale = True
        pool._prefix_cache = [None] * len(pool.prefix_net)
        pool._path_cache = [None] * (len(pool.path_bounds) - 1)
        pool._comm_cache = [None] * (len(pool.comm_bounds) - 1)
        pool._attr_cache = [None] * len(pool.attr_path)
        return pool


class ColumnarTrace:
    """A BGP message stream stored as parallel arrays of primitives.

    Doubles as its own writer: :meth:`append` (or the cheaper
    :meth:`announce` / :meth:`withdraw` fast paths) grow the columns in
    place, which is how the synthetic generator and the MRT reader emit
    straight into columnar form without an intermediate object stream.
    """

    __slots__ = (
        "pool",
        "msg_time",
        "msg_peer",
        "msg_kind",
        "wd_end",
        "ann_end",
        "wd_prefix",
        "ann_prefix",
        "ann_attr",
        "extras",
        "_announcement_cache",
    )

    def __init__(self, pool: Optional[InternPool] = None) -> None:
        self.pool = pool if pool is not None else InternPool()
        self.msg_time = array("d")
        self.msg_peer = array("q")
        self.msg_kind = array("B")
        # Cumulative withdrawal / announcement counts *through* message i;
        # message i's withdrawals are wd_prefix[wd_end[i-1]:wd_end[i]].
        self.wd_end = array("I")
        self.ann_end = array("I")
        self.wd_prefix = array("I")
        self.ann_prefix = array("I")
        self.ann_attr = array("I")
        # Rare non-UPDATE payloads, keyed by message index:
        # OPEN -> (hold_time,), NOTIFICATION -> (error_code, subcode, reason).
        self.extras: Dict[int, tuple] = {}
        # (prefix index, attribute index) -> shared Announcement object.
        self._announcement_cache: Dict[Tuple[int, int], Announcement] = {}

    # -- write path --------------------------------------------------------

    def announce(
        self, timestamp: float, peer_as: int, prefix: Prefix, attributes: PathAttributes
    ) -> None:
        """Append a single-prefix announcement UPDATE."""
        pool = self.pool
        self.msg_time.append(timestamp)
        self.msg_peer.append(peer_as)
        self.msg_kind.append(KIND_UPDATE)
        self.ann_prefix.append(pool.intern_prefix(prefix))
        self.ann_attr.append(pool.intern_attributes(attributes))
        self.ann_end.append(len(self.ann_prefix))
        self.wd_end.append(len(self.wd_prefix))

    def withdraw(self, timestamp: float, peer_as: int, prefix: Prefix) -> None:
        """Append a single-prefix withdrawal UPDATE."""
        self.msg_time.append(timestamp)
        self.msg_peer.append(peer_as)
        self.msg_kind.append(KIND_UPDATE)
        self.wd_prefix.append(self.pool.intern_prefix(prefix))
        self.wd_end.append(len(self.wd_prefix))
        self.ann_end.append(len(self.ann_prefix))

    def append(self, message: BGPMessage) -> None:
        """Append any BGP message."""
        if isinstance(message, Update):
            pool = self.pool
            self.msg_time.append(message.timestamp)
            self.msg_peer.append(message.peer_as)
            self.msg_kind.append(KIND_UPDATE)
            for prefix in message.withdrawals:
                self.wd_prefix.append(pool.intern_prefix(prefix))
            for announcement in message.announcements:
                self.ann_prefix.append(pool.intern_prefix(announcement.prefix))
                self.ann_attr.append(pool.intern_attributes(announcement.attributes))
            self.wd_end.append(len(self.wd_prefix))
            self.ann_end.append(len(self.ann_prefix))
            return
        kind = _KIND_OF_TYPE.get(type(message))
        if kind is None:
            raise TypeError(f"cannot encode message of type {type(message).__name__}")
        index = len(self.msg_time)
        self.msg_time.append(message.timestamp)
        self.msg_peer.append(message.peer_as)
        self.msg_kind.append(kind)
        self.wd_end.append(len(self.wd_prefix))
        self.ann_end.append(len(self.ann_prefix))
        if kind == KIND_OPEN:
            self.extras[index] = (message.hold_time,)
        elif kind == KIND_NOTIFICATION:
            self.extras[index] = (
                message.error_code,
                message.error_subcode,
                message.reason,
            )

    def extend(self, messages: Iterable[BGPMessage]) -> None:
        """Append a stream of messages."""
        append = self.append
        for message in messages:
            append(message)

    @classmethod
    def from_messages(
        cls, messages: Iterable[BGPMessage], pool: Optional[InternPool] = None
    ) -> "ColumnarTrace":
        """Encode an object stream into columns."""
        trace = cls(pool=pool)
        trace.extend(messages)
        return trace

    # -- aggregate queries (no materialisation) ----------------------------

    def __len__(self) -> int:
        return len(self.msg_time)

    @property
    def message_count(self) -> int:
        """Number of encoded messages."""
        return len(self.msg_time)

    @property
    def withdrawal_total(self) -> int:
        """Total number of withdrawn prefixes across the stream."""
        return len(self.wd_prefix)

    @property
    def announcement_total(self) -> int:
        """Total number of announced prefixes across the stream."""
        return len(self.ann_prefix)

    def withdrawals_between(self, start: int, stop: int) -> int:
        """Withdrawn-prefix count over the message index window [start, stop)."""
        if stop <= start:
            return 0
        low = self.wd_end[start - 1] if start else 0
        return self.wd_end[stop - 1] - low

    def announcements_between(self, start: int, stop: int) -> int:
        """Announced-prefix count over the message index window [start, stop)."""
        if stop <= start:
            return 0
        low = self.ann_end[start - 1] if start else 0
        return self.ann_end[stop - 1] - low

    # -- materialisation ---------------------------------------------------

    def _announcement_at(self, index: int) -> Announcement:
        key = (self.ann_prefix[index], self.ann_attr[index])
        announcement = self._announcement_cache.get(key)
        if announcement is None:
            pool = self.pool
            announcement = self._announcement_cache[key] = Announcement(
                pool.prefix_at(key[0]), pool.attributes_at(key[1])
            )
        return announcement

    def message_at(self, index: int) -> BGPMessage:
        """Materialise the message at ``index``."""
        kind = self.msg_kind[index]
        timestamp = self.msg_time[index]
        peer_as = self.msg_peer[index]
        if kind == KIND_UPDATE:
            wd_low = self.wd_end[index - 1] if index else 0
            ann_low = self.ann_end[index - 1] if index else 0
            wd_high = self.wd_end[index]
            ann_high = self.ann_end[index]
            prefix_at = self.pool.prefix_at
            withdrawals = tuple(
                prefix_at(self.wd_prefix[j]) for j in range(wd_low, wd_high)
            )
            announcements = tuple(
                self._announcement_at(j) for j in range(ann_low, ann_high)
            )
            return _make_update(timestamp, peer_as, announcements, withdrawals)
        if kind == KIND_OPEN:
            (hold_time,) = self.extras.get(index, (90.0,))
            return OpenMessage(timestamp=timestamp, peer_as=peer_as, hold_time=hold_time)
        if kind == KIND_KEEPALIVE:
            return KeepAlive(timestamp=timestamp, peer_as=peer_as)
        error_code, error_subcode, reason = self.extras.get(index, (6, 0, ""))
        return Notification(
            timestamp=timestamp,
            peer_as=peer_as,
            error_code=error_code,
            error_subcode=error_subcode,
            reason=reason,
        )

    def iter_messages(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[BGPMessage]:
        """Materialise messages lazily over [start, stop)."""
        if stop is None:
            stop = len(self.msg_time)
        message_at = self.message_at
        for index in range(start, stop):
            yield message_at(index)

    def to_messages(self) -> List[BGPMessage]:
        """Materialise the whole stream eagerly."""
        return list(self.iter_messages())

    # -- batched views -----------------------------------------------------

    def iter_batches(
        self, max_run: Optional[int] = None, kernel=None
    ) -> Iterator["ColumnarRun"]:
        """Yield consecutive same-peer runs, the batched replay unit.

        Each run is a :class:`ColumnarRun` — a lazy message sequence plus a
        raw-column window — sized so :meth:`BGPSpeaker.receive_batch` /
        :meth:`SpeakerBatch.add_columnar_run` can consume it directly.
        ``max_run`` caps run length (long single-peer streams are split so
        batch state stays bounded); splitting never reorders messages and
        does not change replay results.

        Run segmentation is a kernel (``run_boundaries``); ``kernel``
        overrides the auto-selected backend
        (:func:`repro.core.kernels.default_backend`).
        """
        if kernel is None:
            from repro.core import kernels

            kernel = kernels.default_backend()
        peers = self.msg_peer
        for start, stop in kernel.run_boundaries(peers, len(peers), max_run):
            yield ColumnarRun(self, start, stop, peers[start])

    def view(self, indices: Union[range, Sequence[int], None] = None) -> "ColumnarMessageView":
        """A (possibly non-contiguous) lazy message view over the trace."""
        if indices is None:
            indices = range(len(self.msg_time))
        return ColumnarMessageView(self, indices)

    def column_view(self, name: str) -> memoryview:
        """A zero-copy read-only view of one message column.

        ``name`` is a :data:`TRACE_COLUMNS` column (``msg_time``,
        ``msg_peer``, ``msg_kind``, ``wd_end``, ``ann_end``, ``wd_prefix``,
        ``ann_prefix``, ``ann_attr``).  The view shares the column's buffer
        — kernel backends wrap it (or the column itself) without copying —
        and therefore **pins** it: hold views only transiently, as appending
        to an exported column raises ``BufferError``.  This is the
        sanctioned way for out-of-tree kernels to reach raw column storage;
        in-tree kernels receive the columns as call arguments instead.
        """
        if not any(name == column for column, _ in TRACE_COLUMNS):
            raise KeyError(f"unknown trace column {name!r}")
        return memoryview(getattr(self, name)).toreadonly()

    # -- pickling ----------------------------------------------------------

    def __getstate__(self):
        return (
            COLUMNAR_FORMAT_VERSION,
            self.pool,
            self.msg_time,
            self.msg_peer,
            self.msg_kind,
            self.wd_end,
            self.ann_end,
            self.wd_prefix,
            self.ann_prefix,
            self.ann_attr,
            self.extras,
        )

    def __setstate__(self, state) -> None:
        version = state[0]
        if version != COLUMNAR_FORMAT_VERSION:
            raise ValueError(
                f"columnar format v{version} blob, running code expects "
                f"v{COLUMNAR_FORMAT_VERSION}"
            )
        (
            _,
            self.pool,
            self.msg_time,
            self.msg_peer,
            self.msg_kind,
            self.wd_end,
            self.ann_end,
            self.wd_prefix,
            self.ann_prefix,
            self.ann_attr,
            self.extras,
        ) = state
        self._announcement_cache = {}

    # -- raw-buffer payloads ------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """Export the trace as plain buffers — no object-graph pickling.

        The returned mapping holds only primitives: the format version, one
        raw ``bytes`` buffer per message column, the pool's buffers (nested
        under ``"pool"``) and the tiny ``extras`` dict of non-UPDATE
        payloads.  Pickling the payload is a handful of memcpys, which is
        what makes it the fleet-replay transport: a worker process receives
        the buffers and rebuilds the trace with :meth:`from_payload` without
        ever deserialising a message object graph.
        """
        payload: Dict[str, Any] = {
            "format": COLUMNAR_FORMAT_VERSION,
            "pool": self.pool.to_payload(),
            "extras": dict(self.extras),
        }
        for name, _ in TRACE_COLUMNS:
            payload[name] = getattr(self, name).tobytes()
        return payload

    @classmethod
    def from_payload(
        cls,
        payload: Mapping[str, Any],
        validate: Optional[str] = None,
        report: Optional[ValidationReport] = None,
    ) -> "ColumnarTrace":
        """Rebuild a trace from :meth:`to_payload` buffers.

        ``validate`` opts into ingestion validation of the restored rows
        (see :meth:`validated`): ``"strict"`` raises
        :class:`~repro.traces.validation.TraceValidationError` on the
        first malformed row, ``"lenient"`` counts-and-skips them into
        ``report``.  The default (``None``) keeps the restore at pure
        memcpy cost — the fleet workers' hot path — checking only the
        format version.
        """
        version = payload.get("format")
        if version != COLUMNAR_FORMAT_VERSION:
            raise ValueError(
                f"columnar format v{version} payload, running code expects "
                f"v{COLUMNAR_FORMAT_VERSION}"
            )
        trace = _object_new(cls)
        trace.pool = InternPool.from_payload(payload["pool"])
        for name, typecode in TRACE_COLUMNS:
            column = array(typecode)
            column.frombytes(payload[name])
            setattr(trace, name, column)
        trace.extras = dict(payload.get("extras") or {})
        trace._announcement_cache = {}
        if validate is not None or report is not None:
            trace = trace.validated(lenient=(validate == "lenient"), report=report)
        return trace

    # -- validation ----------------------------------------------------------

    def validated(
        self, lenient: bool = False, report: Optional[ValidationReport] = None
    ) -> "ColumnarTrace":
        """Validate the trace; return it (or a copy without malformed rows).

        Row-level defects — unknown kind bytes, non-positive peer ASes,
        non-monotone timestamps, cumulative withdrawal/announcement bounds
        that decrease or overrun their columns, intern ids pointing past
        the pool tables — raise a typed
        :class:`~repro.traces.validation.TraceValidationError` in strict
        mode and are counted-and-skipped in lenient mode (the returned
        trace shares the pool but drops exactly the offending rows).
        Structural defects (mismatched column lengths, interning tables
        inconsistent with themselves) cannot be repaired by skipping rows
        and raise in both modes.  When a ``report`` is passed its
        ``lenient`` flag governs; a clean trace is returned as-is.
        """
        if report is None:
            report = ValidationReport(lenient=lenient)
        bad_rows = self._validation_scan(report)
        if not bad_rows:
            return self
        return self._without_rows(bad_rows)

    def _validation_scan(self, report: ValidationReport) -> List[int]:
        """Check every row; returns the malformed row indices (lenient).

        Strict reports raise at the first defect instead (``report.flag``
        owns that decision).  Structural defects always raise.
        """
        row_count = len(self.msg_time)
        if not (
            len(self.msg_peer)
            == len(self.msg_kind)
            == len(self.wd_end)
            == len(self.ann_end)
            == row_count
        ):
            raise TraceValidationError(
                "column-length-mismatch",
                f"row columns disagree: time={row_count} peer={len(self.msg_peer)} "
                f"kind={len(self.msg_kind)} wd_end={len(self.wd_end)} "
                f"ann_end={len(self.ann_end)}",
            )
        if len(self.ann_prefix) != len(self.ann_attr):
            raise TraceValidationError(
                "column-length-mismatch",
                f"ann_prefix={len(self.ann_prefix)} vs ann_attr={len(self.ann_attr)}",
            )
        self._check_pool_consistent()
        pool = self.pool
        prefix_count = pool.prefix_count
        attr_count = pool.attribute_count
        wd_total = len(self.wd_prefix)
        ann_total = len(self.ann_prefix)
        bad_rows: List[int] = []
        previous_time: Optional[float] = None
        wd_mark = 0
        ann_mark = 0
        for row in range(row_count):
            report.checked += 1
            good = True
            kind = self.msg_kind[row]
            if kind > KIND_NOTIFICATION:
                report.flag("unknown-kind", f"row {row}: kind byte {kind}")
                good = False
            peer = self.msg_peer[row]
            if peer < 1:
                report.flag("invalid-peer", f"row {row}: peer AS {peer}")
                good = False
            timestamp = self.msg_time[row]
            if previous_time is not None and timestamp < previous_time:
                report.flag(
                    "non-monotone-timestamp",
                    f"row {row}: {timestamp} after {previous_time}",
                )
                good = False
            wd_high = self.wd_end[row]
            ann_high = self.ann_end[row]
            bounds_sane = (
                wd_mark <= wd_high <= wd_total and ann_mark <= ann_high <= ann_total
            )
            if not bounds_sane:
                report.flag(
                    "inconsistent-bounds",
                    f"row {row}: wd_end={wd_high} (mark {wd_mark}/{wd_total}), "
                    f"ann_end={ann_high} (mark {ann_mark}/{ann_total})",
                )
                good = False
            else:
                for position in range(wd_mark, wd_high):
                    if self.wd_prefix[position] >= prefix_count:
                        report.flag(
                            "out-of-range-intern-id",
                            f"row {row}: wd_prefix[{position}]="
                            f"{self.wd_prefix[position]} >= {prefix_count}",
                        )
                        good = False
                        break
                for position in range(ann_mark, ann_high):
                    if (
                        self.ann_prefix[position] >= prefix_count
                        or self.ann_attr[position] >= attr_count
                    ):
                        report.flag(
                            "out-of-range-intern-id",
                            f"row {row}: announcement {position} references "
                            f"prefix {self.ann_prefix[position]}/{prefix_count}, "
                            f"attrs {self.ann_attr[position]}/{attr_count}",
                        )
                        good = False
                        break
            if bounds_sane:
                # Advance the high-water marks even past a bad row, so the
                # following rows' ranges stay aligned with the columns.
                wd_mark = wd_high
                ann_mark = ann_high
            if good:
                previous_time = timestamp
            else:
                bad_rows.append(row)
        if wd_mark != wd_total or ann_mark != ann_total:
            report.flag(
                "unreferenced-trailing-data",
                f"{wd_total - wd_mark} withdrawal / {ann_total - ann_mark} "
                f"announcement entries referenced by no row",
            )
        return bad_rows

    def _check_pool_consistent(self) -> None:
        """Structural integrity of the interning tables (raises if broken)."""
        pool = self.pool
        if len(pool.prefix_net) != len(pool.prefix_len):
            raise TraceValidationError(
                "corrupt-intern-pool",
                f"prefix_net={len(pool.prefix_net)} vs prefix_len={len(pool.prefix_len)}",
            )
        for bounds, flat, label in (
            (pool.path_bounds, pool.path_asns, "path"),
            (pool.comm_bounds, pool.comm_packed, "community"),
        ):
            if not len(bounds) or bounds[0] != 0 or bounds[-1] != len(flat):
                raise TraceValidationError(
                    "corrupt-intern-pool", f"{label} bounds do not cover the flat column"
                )
            if any(bounds[i] > bounds[i + 1] for i in range(len(bounds) - 1)):
                raise TraceValidationError(
                    "corrupt-intern-pool", f"{label} bounds decrease"
                )
        attr_count = len(pool.attr_path)
        if not (
            len(pool.attr_next_hop)
            == len(pool.attr_local_pref)
            == len(pool.attr_med)
            == len(pool.attr_origin)
            == len(pool.attr_comms)
            == attr_count
        ):
            raise TraceValidationError(
                "corrupt-intern-pool", "attribute columns disagree in length"
            )
        path_count = len(pool.path_bounds) - 1
        comm_count = len(pool.comm_bounds) - 1
        for index in range(attr_count):
            if pool.attr_path[index] >= path_count or pool.attr_comms[index] >= comm_count:
                raise TraceValidationError(
                    "corrupt-intern-pool",
                    f"attribute {index} references path "
                    f"{pool.attr_path[index]}/{path_count}, communities "
                    f"{pool.attr_comms[index]}/{comm_count}",
                )

    def _without_rows(self, bad_rows: Sequence[int]) -> "ColumnarTrace":
        """A copy of the trace (shared pool) dropping the given rows.

        Only called on rows flagged by :meth:`_validation_scan`; per-row
        ranges are clamped the same way the scan clamps its high-water
        marks, so a bad row's damage never leaks into its neighbours.
        """
        bad = set(bad_rows)
        out = ColumnarTrace(pool=self.pool)
        wd_total = len(self.wd_prefix)
        ann_total = len(self.ann_prefix)
        wd_mark = 0
        ann_mark = 0
        for row in range(len(self.msg_time)):
            wd_low, ann_low = wd_mark, ann_mark
            wd_high = self.wd_end[row]
            ann_high = self.ann_end[row]
            if wd_mark <= wd_high <= wd_total and ann_mark <= ann_high <= ann_total:
                wd_mark = wd_high
                ann_mark = ann_high
            if row in bad:
                continue
            out.msg_time.append(self.msg_time[row])
            out.msg_peer.append(self.msg_peer[row])
            out.msg_kind.append(self.msg_kind[row])
            out.wd_prefix.extend(self.wd_prefix[wd_low:wd_mark])
            out.ann_prefix.extend(self.ann_prefix[ann_low:ann_mark])
            out.ann_attr.extend(self.ann_attr[ann_low:ann_mark])
            out.wd_end.append(len(out.wd_prefix))
            out.ann_end.append(len(out.ann_prefix))
            extra = self.extras.get(row)
            if extra is not None:
                out.extras[len(out.msg_time) - 1] = extra
        return out

    # -- windows -------------------------------------------------------------

    @property
    def first_timestamp(self) -> Optional[float]:
        """Timestamp of the first message, or ``None`` for an empty trace."""
        return self.msg_time[0] if len(self.msg_time) else None

    @property
    def last_timestamp(self) -> Optional[float]:
        """Timestamp of the last message, or ``None`` for an empty trace."""
        return self.msg_time[-1] if len(self.msg_time) else None

    def window(self, t0: float, t1: float) -> "ColumnarTrace":
        """The sub-trace with ``t0 <= timestamp < t1``, sharing the pool.

        Message timestamps are non-decreasing in every generated/parsed
        trace, so the window bounds come from a bisect on the timestamp
        column; the result is a standalone trace (its own rebased bound
        columns over sliced per-prefix columns) that replays through
        :meth:`iter_batches` like any other.
        """
        start = bisect_left(self.msg_time, t0)
        stop = bisect_left(self.msg_time, t1)
        return self.slice(start, stop)

    def slice(self, start: int, stop: int) -> "ColumnarTrace":
        """The sub-trace over the message index window [start, stop)."""
        total = len(self.msg_time)
        start = max(0, min(start, total))
        stop = max(start, min(stop, total))
        w_low = self.wd_end[start - 1] if start else 0
        a_low = self.ann_end[start - 1] if start else 0
        w_high = self.wd_end[stop - 1] if stop else 0
        a_high = self.ann_end[stop - 1] if stop else 0
        trace = _object_new(type(self))
        trace.pool = self.pool
        trace.msg_time = self.msg_time[start:stop]
        trace.msg_peer = self.msg_peer[start:stop]
        trace.msg_kind = self.msg_kind[start:stop]
        trace.wd_end = _rebased(self.wd_end[start:stop], w_low)
        trace.ann_end = _rebased(self.ann_end[start:stop], a_low)
        trace.wd_prefix = self.wd_prefix[w_low:w_high]
        trace.ann_prefix = self.ann_prefix[a_low:a_high]
        trace.ann_attr = self.ann_attr[a_low:a_high]
        trace.extras = {
            index - start: extra
            for index, extra in self.extras.items()
            if start <= index < stop
        }
        trace._announcement_cache = {}
        return trace


class ColumnarMessageView(SequenceABC):
    """A lazy, list-like view of selected messages of a columnar trace.

    Supports arbitrary index selections (burst membership lists) as well as
    contiguous ranges; aggregate queries are answered from the columns
    without materialising messages.
    """

    __slots__ = ("trace", "_indices")

    def __init__(self, trace: ColumnarTrace, indices: Union[range, Sequence[int]]) -> None:
        self.trace = trace
        self._indices = indices

    def __len__(self) -> int:
        return len(self._indices)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return [self.trace.message_at(index) for index in self._indices[item]]
        return self.trace.message_at(self._indices[item])

    def __iter__(self) -> Iterator[BGPMessage]:
        message_at = self.trace.message_at
        for index in self._indices:
            yield message_at(index)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} of {len(self)} messages>"

    # -- aggregates --------------------------------------------------------

    def withdrawal_count(self) -> int:
        """Total withdrawn prefixes in the view (column arithmetic only)."""
        indices = self._indices
        trace = self.trace
        if isinstance(indices, range) and indices.step == 1:
            return trace.withdrawals_between(indices.start, indices.stop)
        wd_end = trace.wd_end
        return sum(
            wd_end[index] - (wd_end[index - 1] if index else 0) for index in indices
        )

    def announcement_count(self) -> int:
        """Total announced prefixes in the view (column arithmetic only)."""
        indices = self._indices
        trace = self.trace
        if isinstance(indices, range) and indices.step == 1:
            return trace.announcements_between(indices.start, indices.stop)
        ann_end = trace.ann_end
        return sum(
            ann_end[index] - (ann_end[index - 1] if index else 0) for index in indices
        )

    @property
    def first_timestamp(self) -> Optional[float]:
        """Timestamp of the first message in the view, or ``None``."""
        if not len(self._indices):
            return None
        return self.trace.msg_time[self._indices[0]]

    @property
    def last_timestamp(self) -> Optional[float]:
        """Timestamp of the last message in the view, or ``None``."""
        if not len(self._indices):
            return None
        return self.trace.msg_time[self._indices[-1]]

    def materialise(self) -> List[BGPMessage]:
        """Build the message objects eagerly."""
        return list(self)


class ColumnarRun(ColumnarMessageView):
    """A consecutive same-peer window of a columnar trace.

    The unit yielded by :meth:`ColumnarTrace.iter_batches`:
    ``trace``/``start``/``stop`` expose the raw column window (the
    run-column contract documented in ``src/repro/traces/README.md``) that
    the session layer (:meth:`~repro.bgp.session.PeeringSession.process_columnar_run`)
    *and* the inference stack
    (:meth:`~repro.core.inference.InferenceEngine.process_columnar_run`)
    apply with zero message-object construction; iterating it still
    materialises messages lazily for consumers that want objects.
    """

    __slots__ = ("start", "stop", "peer_as")

    def __init__(self, trace: ColumnarTrace, start: int, stop: int, peer_as: int) -> None:
        super().__init__(trace, range(start, stop))
        self.start = start
        self.stop = stop
        self.peer_as = peer_as

    def withdrawal_count(self) -> int:
        """Withdrawn prefixes in the run (O(1))."""
        return self.trace.withdrawals_between(self.start, self.stop)

    def announcement_count(self) -> int:
        """Announced prefixes in the run (O(1))."""
        return self.trace.announcements_between(self.start, self.stop)

    def __repr__(self) -> str:
        return (
            f"ColumnarRun(peer_as={self.peer_as}, start={self.start}, "
            f"stop={self.stop})"
        )


# -- RIB columns ------------------------------------------------------------


def encode_rib(
    rib: Mapping[Prefix, ASPath], pool: InternPool
) -> Tuple[array, array]:
    """Encode a prefix -> AS-path table as (prefix index, path index) columns."""
    prefix_column = array("I")
    path_column = array("I")
    intern_prefix = pool.intern_prefix
    intern_path = pool.intern_path
    for prefix, path in rib.items():
        prefix_column.append(intern_prefix(prefix))
        path_column.append(intern_path(path))
    return prefix_column, path_column


def decode_rib(
    prefix_column: Sequence[int], path_column: Sequence[int], pool: InternPool
) -> Dict[Prefix, ASPath]:
    """Materialise a RIB from its columns, sharing interned objects."""
    prefix_at = pool.prefix_at
    path_at = pool.path_at
    return {
        prefix_at(prefix_index): path_at(path_index)
        for prefix_index, path_index in zip(prefix_column, path_column)
    }
