"""mmap-backed on-disk layout for columnar traces.

The trace cache's pickled columnar blobs already restore at array speed, but
a pickle is all-or-nothing: loading one month trace reads (and memcpys)
every column, even when the consumer only wants a time window.  This module
stores a :class:`~repro.traces.columnar.ColumnarTrace` as::

    magic | u32 store version | u64 header length | pickled header | segments

where the header is a small dict — columnar format version, the ``extras``
dict, and one ``(name, typecode, offset, nbytes)`` descriptor per column —
and the segments are the raw column buffers back to back.  Reload is
``mmap`` + :meth:`array.array.frombytes` per column, *on demand*:

* :meth:`ColumnarTraceFile.load` materialises every column (a full trace,
  equivalent to unpickling the blob but without the pickle layer);
* :meth:`ColumnarTraceFile.window` bisects the timestamp column through a
  lazy mmap view (touching O(log n) elements, not the whole segment) and
  then copies only the window's byte ranges out of each column — a partial
  load of a month trace that never reads the tail of the file;
* :attr:`ColumnarTraceFile.bytes_read` counts the segment bytes actually
  materialised, which is how the tests and benchmarks assert that a window
  load reads less than the full blob.

Buffers are written in native byte order, like the pickled ``array`` blobs
they replace; the store is a cache format for the machine that wrote it,
not an interchange format.  The columnar format version is checked on open,
so a stale file raises (and the cache layer treats that as a miss).
"""

from __future__ import annotations

import mmap
import os
import pickle
import struct
from array import array
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.traces.columnar import (
    COLUMNAR_FORMAT_VERSION,
    POOL_COLUMNS,
    TRACE_COLUMNS,
    ColumnarTrace,
    InternPool,
    _rebased,
)

__all__ = ["STORE_VERSION", "ColumnarTraceFile", "read_trace", "write_trace"]

_MAGIC = b"RPROCOLS"
#: Bump when the container layout (not the column schema) changes.
STORE_VERSION = 1

_LENGTHS = struct.Struct("<IQ")  # store version, header length


def write_trace(path: str, trace: ColumnarTrace) -> None:
    """Write a trace in the column-store layout (header + raw segments).

    The caller owns atomicity (the trace cache writes to a temp file and
    renames); this function just streams the buffers, so writing never holds
    a second copy of the columns.
    """
    payload = trace.to_payload()
    segments: List[Tuple[str, str, int, int]] = []
    buffers: List[bytes] = []
    offset = 0
    for name, typecode in POOL_COLUMNS:
        buffer = payload["pool"][name]
        segments.append((f"pool.{name}", typecode, offset, len(buffer)))
        buffers.append(buffer)
        offset += len(buffer)
    for name, typecode in TRACE_COLUMNS:
        buffer = payload[name]
        segments.append((name, typecode, offset, len(buffer)))
        buffers.append(buffer)
        offset += len(buffer)
    header = pickle.dumps(
        {
            "format": COLUMNAR_FORMAT_VERSION,
            "extras": payload["extras"],
            "segments": segments,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(_LENGTHS.pack(STORE_VERSION, len(header)))
        handle.write(header)
        for buffer in buffers:
            handle.write(buffer)


class _LazyColumn:
    """A read-only sequence view of one on-disk column segment.

    Indexing unpacks a single element straight from the mmap, so a bisect
    over a month-long timestamp column touches O(log n) pages instead of
    materialising the segment.
    """

    __slots__ = ("_mm", "_offset", "_item", "_length")

    def __init__(self, mm: mmap.mmap, offset: int, typecode: str, nbytes: int) -> None:
        self._mm = mm
        self._offset = offset
        self._item = struct.Struct("=" + typecode)
        self._length = nbytes // self._item.size

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int):
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(index)
        return self._item.unpack_from(self._mm, self._offset + index * self._item.size)[0]


class ColumnarTraceFile:
    """An open column-store file; loads columns (or windows of them) lazily."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "rb")
        try:
            prefix = self._handle.read(len(_MAGIC) + _LENGTHS.size)
            if prefix[: len(_MAGIC)] != _MAGIC:
                raise ValueError(f"{path}: not a columnar store file")
            store_version, header_length = _LENGTHS.unpack(prefix[len(_MAGIC) :])
            if store_version != STORE_VERSION:
                raise ValueError(
                    f"{path}: store layout v{store_version}, running code "
                    f"expects v{STORE_VERSION}"
                )
            header = pickle.loads(self._handle.read(header_length))
            if header["format"] != COLUMNAR_FORMAT_VERSION:
                raise ValueError(
                    f"{path}: columnar format v{header['format']}, running "
                    f"code expects v{COLUMNAR_FORMAT_VERSION}"
                )
            self._extras: Dict[int, tuple] = header["extras"]
            self._base = len(_MAGIC) + _LENGTHS.size + header_length
            self._segments: Dict[str, Tuple[str, int, int]] = {
                name: (typecode, offset, nbytes)
                for name, typecode, offset, nbytes in header["segments"]
            }
            self._mm = mmap.mmap(self._handle.fileno(), 0, access=mmap.ACCESS_READ)
        except Exception:
            self._handle.close()
            raise
        #: Segment bytes materialised so far (full or partial column copies).
        self.bytes_read = 0
        self._pool: Optional[InternPool] = None

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release the mapping and the file handle."""
        self._mm.close()
        self._handle.close()

    def __enter__(self) -> "ColumnarTraceFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def file_size(self) -> int:
        """Total size of the store file in bytes."""
        return len(self._mm)

    @property
    def message_count(self) -> int:
        """Number of messages in the stored trace (no column materialised)."""
        typecode, _, nbytes = self._segments["msg_time"]
        return nbytes // array(typecode).itemsize

    # -- column access ------------------------------------------------------

    def _column(self, name: str, low: int = 0, high: Optional[int] = None) -> array:
        """Materialise the element range [low, high) of one column."""
        typecode, offset, nbytes = self._segments[name]
        column = array(typecode)
        itemsize = column.itemsize
        start = offset + low * itemsize
        stop = offset + nbytes if high is None else offset + high * itemsize
        stop = min(stop, offset + nbytes)
        start = min(start, stop)
        buffer = self._mm[self._base + start : self._base + stop]
        self.bytes_read += len(buffer)
        column.frombytes(buffer)
        return column

    def _lazy_column(self, name: str) -> _LazyColumn:
        typecode, offset, nbytes = self._segments[name]
        return _LazyColumn(self._mm, self._base + offset, typecode, nbytes)

    def pool(self) -> InternPool:
        """The interning tables (materialised once; small next to the stream)."""
        if self._pool is None:
            self._pool = InternPool.from_payload(
                {name: self._column(f"pool.{name}").tobytes() for name, _ in POOL_COLUMNS}
            )
        return self._pool

    # -- loads --------------------------------------------------------------

    def load(self) -> ColumnarTrace:
        """Materialise the full trace (every column, one memcpy each)."""
        trace = ColumnarTrace.__new__(ColumnarTrace)
        trace.pool = self.pool()
        for name, _ in TRACE_COLUMNS:
            setattr(trace, name, self._column(name))
        trace.extras = dict(self._extras)
        trace._announcement_cache = {}
        return trace

    def window(self, t0: float, t1: float) -> ColumnarTrace:
        """Load only the messages with ``t0 <= timestamp < t1``.

        The bisect runs over a lazy mmap view of the timestamp column, so
        locating the window reads O(log n) elements; materialisation then
        copies just the window's byte ranges out of each column (plus the
        interning tables, which every load shares).
        """
        times = self._lazy_column("msg_time")
        return self.slice(bisect_left(times, t0), bisect_left(times, t1))

    def slice(self, start: int, stop: int) -> ColumnarTrace:
        """Load the sub-trace over the message index window [start, stop)."""
        total = self.message_count
        start = max(0, min(start, total))
        stop = max(start, min(stop, total))
        wd_end = self._lazy_column("wd_end")
        ann_end = self._lazy_column("ann_end")
        w_low = wd_end[start - 1] if start else 0
        a_low = ann_end[start - 1] if start else 0
        w_high = wd_end[stop - 1] if stop else 0
        a_high = ann_end[stop - 1] if stop else 0
        trace = ColumnarTrace.__new__(ColumnarTrace)
        trace.pool = self.pool()
        trace.msg_time = self._column("msg_time", start, stop)
        trace.msg_peer = self._column("msg_peer", start, stop)
        trace.msg_kind = self._column("msg_kind", start, stop)
        trace.wd_end = _rebased(self._column("wd_end", start, stop), w_low)
        trace.ann_end = _rebased(self._column("ann_end", start, stop), a_low)
        trace.wd_prefix = self._column("wd_prefix", w_low, w_high)
        trace.ann_prefix = self._column("ann_prefix", a_low, a_high)
        trace.ann_attr = self._column("ann_attr", a_low, a_high)
        trace.extras = {
            index - start: extra
            for index, extra in self._extras.items()
            if start <= index < stop
        }
        trace._announcement_cache = {}
        return trace


def read_trace(path: str) -> ColumnarTrace:
    """Convenience: open, fully load and close a store file."""
    with ColumnarTraceFile(path) as store:
        return store.load()
