"""mmap-backed on-disk layout for columnar traces.

The trace cache's pickled columnar blobs already restore at array speed, but
a pickle is all-or-nothing: loading one month trace reads (and memcpys)
every column, even when the consumer only wants a time window.  This module
stores a :class:`~repro.traces.columnar.ColumnarTrace` as::

    magic | u32 store version | u64 header length | u64 total file length
          | u32 header CRC32 | pickled header | segments

where the header is a small dict — columnar format version, the ``extras``
dict, one ``(name, typecode, offset, nbytes)`` descriptor per column and a
``checksums`` map of per-column CRC32s — and the segments are the raw
column buffers back to back.  Reload is ``mmap`` +
:meth:`array.array.frombytes` per column, *on demand*:

* :meth:`ColumnarTraceFile.load` materialises every column (a full trace,
  equivalent to unpickling the blob but without the pickle layer);
* :meth:`ColumnarTraceFile.window` bisects the timestamp column through a
  lazy mmap view (touching O(log n) elements, not the whole segment) and
  then copies only the window's byte ranges out of each column — a partial
  load of a month trace that never reads the tail of the file;
* :attr:`ColumnarTraceFile.bytes_read` counts the segment bytes actually
  materialised, which is how the tests and benchmarks assert that a window
  load reads less than the full blob.

**Integrity.**  Store v2 is self-checking: opening a file verifies the
total-length field against the actual file size (catching truncation and
torn writes immediately, without reading a single segment) and the header
CRC; every *full* column materialisation verifies that column's CRC32.  A
failed check raises the typed :class:`CorruptColumnStoreError`, which the
cache layer treats as a miss — quarantine, rebuild, log once.  Partial
(windowed) segment reads are not re-checksummed — that would force reading
the whole column and defeat the windowed load — so a window is covered by
the open-time truncation check plus the full verification of the pool
tables it always materialises.  v1 files (no checksums) remain readable;
they simply skip verification.

Buffers are written in native byte order, like the pickled ``array`` blobs
they replace; the store is a cache format for the machine that wrote it,
not an interchange format.  The columnar format version is checked on open,
so a stale file raises (and the cache layer treats that as a miss).
"""

from __future__ import annotations

import mmap
import os
import pickle
import struct
import zlib
from array import array
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.traces.columnar import (
    COLUMNAR_FORMAT_VERSION,
    POOL_COLUMNS,
    TRACE_COLUMNS,
    ColumnarTrace,
    InternPool,
    _rebased,
)

__all__ = [
    "LOG_VERSION",
    "STORE_VERSION",
    "ColumnarTraceFile",
    "CorruptColumnStoreError",
    "SegmentAppendLog",
    "read_trace",
    "write_trace",
]

_MAGIC = b"RPROCOLS"
#: Bump when the container layout (not the column schema) changes.
#: v2: per-column CRC32 checksums + total-length field + header CRC.
STORE_VERSION = 2

_VERSION = struct.Struct("<I")
_V1_LENGTHS = struct.Struct("<Q")  # header length (legacy v1 tail)
_V2_LENGTHS = struct.Struct("<QQI")  # header length, total length, header crc


class CorruptColumnStoreError(ValueError):
    """A ``.cols`` file failed an integrity check (truncation, bit flips,
    an unparseable or checksum-mismatched header or column).

    Distinct from a plain stale-version :class:`ValueError` so the cache
    layer can *quarantine* provably-damaged blobs while silently rebuilding
    merely outdated ones.
    """


def _fault_hook(site: str, key: str):
    """Consult the fault-injection harness; a no-op when it is idle."""
    from repro.testing import faults

    injector = faults.active_injector()
    if injector is None:
        return None
    return injector.fire(site, key=key)


def write_trace(path: str, trace: ColumnarTrace, store_version: int = STORE_VERSION) -> None:
    """Write a trace in the column-store layout (header + raw segments).

    The caller owns atomicity (the trace cache writes to a temp file and
    renames); this function just streams the buffers, so writing never holds
    a second copy of the columns.  ``store_version=1`` writes the legacy
    checksum-less layout — only the back-compat tests want that.
    """
    if store_version not in (1, STORE_VERSION):
        raise ValueError(f"cannot write store layout v{store_version}")
    payload = trace.to_payload()
    segments: List[Tuple[str, str, int, int]] = []
    buffers: List[bytes] = []
    checksums: Dict[str, int] = {}
    offset = 0
    for name, typecode in POOL_COLUMNS:
        buffer = payload["pool"][name]
        segments.append((f"pool.{name}", typecode, offset, len(buffer)))
        checksums[f"pool.{name}"] = zlib.crc32(buffer)
        buffers.append(buffer)
        offset += len(buffer)
    for name, typecode in TRACE_COLUMNS:
        buffer = payload[name]
        segments.append((name, typecode, offset, len(buffer)))
        checksums[name] = zlib.crc32(buffer)
        buffers.append(buffer)
        offset += len(buffer)
    header_dict = {
        "format": COLUMNAR_FORMAT_VERSION,
        "extras": payload["extras"],
        "segments": segments,
    }
    if store_version >= 2:
        header_dict["checksums"] = checksums
    header = pickle.dumps(header_dict, protocol=pickle.HIGHEST_PROTOCOL)
    # repro: allow(durability-ordering): atomicity is the caller's contract —
    # trace_cache wraps write_trace in write_atomic and hands it a temp path.
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(_VERSION.pack(store_version))
        if store_version == 1:
            handle.write(_V1_LENGTHS.pack(len(header)))
        else:
            total_length = (
                len(_MAGIC)
                + _VERSION.size
                + _V2_LENGTHS.size
                + len(header)
                + offset
            )
            handle.write(
                _V2_LENGTHS.pack(len(header), total_length, zlib.crc32(header))
            )
        handle.write(header)
        for buffer in buffers:
            handle.write(buffer)


class _LazyColumn:
    """A read-only sequence view of one on-disk column segment.

    Indexing unpacks a single element straight from the mmap, so a bisect
    over a month-long timestamp column touches O(log n) pages instead of
    materialising the segment.
    """

    __slots__ = ("_mm", "_offset", "_item", "_length")

    def __init__(self, mm: mmap.mmap, offset: int, typecode: str, nbytes: int) -> None:
        self._mm = mm
        self._offset = offset
        self._item = struct.Struct("=" + typecode)
        self._length = nbytes // self._item.size

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int):
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(index)
        return self._item.unpack_from(self._mm, self._offset + index * self._item.size)[0]


class ColumnarTraceFile:
    """An open column-store file; loads columns (or windows of them) lazily."""

    def __init__(self, path: str) -> None:
        self.path = path
        _fault_hook("store.open", os.path.basename(path))
        self._handle = open(path, "rb")
        try:
            prefix = self._handle.read(len(_MAGIC) + _VERSION.size)
            if len(prefix) < len(_MAGIC) + _VERSION.size:
                raise CorruptColumnStoreError(f"{path}: truncated store prefix")
            if prefix[: len(_MAGIC)] != _MAGIC:
                raise CorruptColumnStoreError(f"{path}: not a columnar store file")
            (store_version,) = _VERSION.unpack(prefix[len(_MAGIC) :])
            if store_version == 1:
                lengths = self._handle.read(_V1_LENGTHS.size)
                if len(lengths) < _V1_LENGTHS.size:
                    raise CorruptColumnStoreError(f"{path}: truncated store prefix")
                (header_length,) = _V1_LENGTHS.unpack(lengths)
                total_length = None
                header_crc = None
                fixed_size = len(_MAGIC) + _VERSION.size + _V1_LENGTHS.size
            elif store_version == STORE_VERSION:
                lengths = self._handle.read(_V2_LENGTHS.size)
                if len(lengths) < _V2_LENGTHS.size:
                    raise CorruptColumnStoreError(f"{path}: truncated store prefix")
                header_length, total_length, header_crc = _V2_LENGTHS.unpack(lengths)
                fixed_size = len(_MAGIC) + _VERSION.size + _V2_LENGTHS.size
            else:
                raise ValueError(
                    f"{path}: store layout v{store_version}, running code "
                    f"expects v{STORE_VERSION}"
                )
            file_size = os.fstat(self._handle.fileno()).st_size
            if total_length is not None and file_size != total_length:
                raise CorruptColumnStoreError(
                    f"{path}: file is {file_size} bytes but the header "
                    f"records {total_length} — truncated or torn write"
                )
            header_bytes = self._handle.read(header_length)
            if len(header_bytes) < header_length:
                raise CorruptColumnStoreError(f"{path}: truncated header")
            if header_crc is not None and zlib.crc32(header_bytes) != header_crc:
                raise CorruptColumnStoreError(f"{path}: header checksum mismatch")
            try:
                header = pickle.loads(header_bytes)
                segments = {
                    name: (typecode, offset, nbytes)
                    for name, typecode, offset, nbytes in header["segments"]
                }
                format_version = header["format"]
            except CorruptColumnStoreError:
                raise
            except Exception as error:
                raise CorruptColumnStoreError(
                    f"{path}: unreadable header ({error!r})"
                ) from error
            if format_version != COLUMNAR_FORMAT_VERSION:
                raise ValueError(
                    f"{path}: columnar format v{format_version}, running "
                    f"code expects v{COLUMNAR_FORMAT_VERSION}"
                )
            self._extras: Dict[int, tuple] = header["extras"]
            self._checksums: Dict[str, int] = header.get("checksums") or {}
            self._base = fixed_size + header_length
            self._segments: Dict[str, Tuple[str, int, int]] = segments
            for name, (_, offset, nbytes) in segments.items():
                if self._base + offset + nbytes > file_size:
                    raise CorruptColumnStoreError(
                        f"{path}: column {name!r} extends past end of file"
                    )
            self._mm = mmap.mmap(self._handle.fileno(), 0, access=mmap.ACCESS_READ)
        except Exception:
            self._handle.close()
            raise
        #: Segment bytes materialised so far (full or partial column copies).
        self.bytes_read = 0
        self._pool: Optional[InternPool] = None
        self._verified: set = set()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release the mapping and the file handle."""
        self._mm.close()
        self._handle.close()

    def __enter__(self) -> "ColumnarTraceFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def file_size(self) -> int:
        """Total size of the store file in bytes."""
        return len(self._mm)

    @property
    def message_count(self) -> int:
        """Number of messages in the stored trace (no column materialised)."""
        typecode, _, nbytes = self._segments["msg_time"]
        return nbytes // array(typecode).itemsize

    # -- column access ------------------------------------------------------

    def _column(self, name: str, low: int = 0, high: Optional[int] = None) -> array:
        """Materialise the element range [low, high) of one column.

        A *full* materialisation of a checksummed (v2) column verifies its
        CRC32 — once per column per open file — and raises
        :class:`CorruptColumnStoreError` on mismatch.  Partial ranges skip
        the check (verifying would read the whole segment, defeating the
        windowed load); truncation is still caught at open time by the
        total-length field.
        """
        _fault_hook("store.read", os.path.basename(self.path))
        typecode, offset, nbytes = self._segments[name]
        column = array(typecode)
        itemsize = column.itemsize
        start = offset + low * itemsize
        stop = offset + nbytes if high is None else offset + high * itemsize
        stop = min(stop, offset + nbytes)
        start = min(start, stop)
        buffer = self._mm[self._base + start : self._base + stop]
        self.bytes_read += len(buffer)
        if (
            len(buffer) == nbytes
            and name in self._checksums
            and name not in self._verified
        ):
            if zlib.crc32(buffer) != self._checksums[name]:
                raise CorruptColumnStoreError(
                    f"{self.path}: column {name!r} checksum mismatch "
                    f"(corrupt segment)"
                )
            self._verified.add(name)
        column.frombytes(buffer)
        return column

    def _lazy_column(self, name: str) -> _LazyColumn:
        typecode, offset, nbytes = self._segments[name]
        return _LazyColumn(self._mm, self._base + offset, typecode, nbytes)

    def pool(self) -> InternPool:
        """The interning tables (materialised once; small next to the stream)."""
        if self._pool is None:
            self._pool = InternPool.from_payload(
                {name: self._column(f"pool.{name}").tobytes() for name, _ in POOL_COLUMNS}
            )
        return self._pool

    # -- loads --------------------------------------------------------------

    def load(self) -> ColumnarTrace:
        """Materialise the full trace (every column, one memcpy each).

        Every column is read in full, so on a v2 file a successful
        :meth:`load` implies every segment passed its CRC32 — the property
        the cache layer relies on to detect a flipped byte anywhere in the
        blob.
        """
        trace = ColumnarTrace.__new__(ColumnarTrace)
        trace.pool = self.pool()
        for name, _ in TRACE_COLUMNS:
            setattr(trace, name, self._column(name))
        trace.extras = dict(self._extras)
        trace._announcement_cache = {}
        return trace

    def window(self, t0: float, t1: float) -> ColumnarTrace:
        """Load only the messages with ``t0 <= timestamp < t1``.

        The bisect runs over a lazy mmap view of the timestamp column, so
        locating the window reads O(log n) elements; materialisation then
        copies just the window's byte ranges out of each column (plus the
        interning tables, which every load shares and which are fully
        CRC-verified on a v2 file).
        """
        times = self._lazy_column("msg_time")
        return self.slice(bisect_left(times, t0), bisect_left(times, t1))

    def slice(self, start: int, stop: int) -> ColumnarTrace:
        """Load the sub-trace over the message index window [start, stop)."""
        total = self.message_count
        start = max(0, min(start, total))
        stop = max(start, min(stop, total))
        wd_end = self._lazy_column("wd_end")
        ann_end = self._lazy_column("ann_end")
        w_low = wd_end[start - 1] if start else 0
        a_low = ann_end[start - 1] if start else 0
        w_high = wd_end[stop - 1] if stop else 0
        a_high = ann_end[stop - 1] if stop else 0
        trace = ColumnarTrace.__new__(ColumnarTrace)
        trace.pool = self.pool()
        trace.msg_time = self._column("msg_time", start, stop)
        trace.msg_peer = self._column("msg_peer", start, stop)
        trace.msg_kind = self._column("msg_kind", start, stop)
        trace.wd_end = _rebased(self._column("wd_end", start, stop), w_low)
        trace.ann_end = _rebased(self._column("ann_end", start, stop), a_low)
        trace.wd_prefix = self._column("wd_prefix", w_low, w_high)
        trace.ann_prefix = self._column("ann_prefix", a_low, a_high)
        trace.ann_attr = self._column("ann_attr", a_low, a_high)
        trace.extras = {
            index - start: extra
            for index, extra in self._extras.items()
            if start <= index < stop
        }
        trace._announcement_cache = {}
        return trace


def read_trace(path: str) -> ColumnarTrace:
    """Convenience: open, fully load and close a store file."""
    with ColumnarTraceFile(path) as store:
        return store.load()


# -- append-mode segment log -------------------------------------------------

_LOG_MAGIC = b"RPROSEGL"
#: Bump when the append-log framing (not the frame payloads) changes.
LOG_VERSION = 1

_LOG_FRAME = struct.Struct("<II")  # payload length, payload CRC32


class SegmentAppendLog:
    """A crash-safe append-only frame log — the *open* half of a segment.

    A ``.cols`` store is written once and sealed; the ingestion daemon's
    open segment instead grows a row at a time and must survive ``kill -9``
    mid-append.  This log is the durability substrate: the file is::

        magic "RPROSEGL" | u32 log version | frames...

    where each frame is ``u32 payload length | u32 CRC32(payload) | pickled
    payload``.  The payload is opaque to the log (the ingestion layer stores
    batches of feed lines plus a checkpoint token); the log owns only the
    framing and its recovery discipline:

    * :meth:`append` buffers a frame into the OS file; :meth:`sync` flushes
      and ``fsync``\\ s, advancing ``durable_end`` — everything at or before
      ``durable_end`` survives any crash;
    * a *failed* append or sync leaves garbage bytes past ``durable_end``;
      :meth:`truncate_to_durable` cuts the file back so a retried append
      never lands after a torn frame (recovery stops at the first bad
      frame, so garbage in the middle would silently orphan everything
      written after it);
    * :meth:`scan` replays a log from disk: frames are read until EOF, a
      short read, an insane length or a CRC mismatch — whichever comes
      first — and the byte offset of the last *valid* frame end is
      returned, so recovery can truncate the torn tail and resume
      appending.  A fsync'd frame can never be lost this way; a torn tail
      was by definition never acknowledged.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        # repro: allow(durability-ordering): the append log IS the durability
        # substrate — frames are fsync'd per append; replace-based atomicity
        # would defeat incremental appends.
        self._handle = open(path, "ab")
        if not exists:
            self._handle.write(_LOG_MAGIC)
            self._handle.write(_VERSION.pack(LOG_VERSION))
            self._handle.flush()
            os.fsync(self._handle.fileno())
        #: End of the last fsync'd (or pre-existing, already-scanned) frame.
        self.durable_end = self._handle.tell()

    def append(self, payload: object) -> None:
        """Buffer one frame; durable only after :meth:`sync` returns."""
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._handle.write(_LOG_FRAME.pack(len(body), zlib.crc32(body)))
        self._handle.write(body)

    def sync(self) -> None:
        """Flush and fsync; everything appended so far becomes durable."""
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.durable_end = self._handle.tell()

    def truncate_to_durable(self) -> None:
        """Cut back to the last durable frame end after a failed append."""
        self._handle.flush()
        self._handle.truncate(self.durable_end)
        self._handle.seek(self.durable_end)
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "SegmentAppendLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def scan(cls, path: str) -> Tuple[List[object], int]:
        """Read every valid frame payload; returns ``(payloads, valid_end)``.

        ``valid_end`` is the byte offset just past the last frame that
        parsed and checksummed cleanly — the truncation point for
        :meth:`recover`.  A missing or headerless file scans as empty.
        """
        header_size = len(_LOG_MAGIC) + _VERSION.size
        try:
            handle = open(path, "rb")
        except FileNotFoundError:
            return [], 0
        payloads: List[object] = []
        with handle:
            header = handle.read(header_size)
            if len(header) < header_size or header[: len(_LOG_MAGIC)] != _LOG_MAGIC:
                return [], 0
            (version,) = _VERSION.unpack(header[len(_LOG_MAGIC) :])
            if version != LOG_VERSION:
                raise CorruptColumnStoreError(
                    f"{path}: segment log v{version}, running code expects "
                    f"v{LOG_VERSION}"
                )
            file_size = os.fstat(handle.fileno()).st_size
            valid_end = header_size
            while True:
                frame_header = handle.read(_LOG_FRAME.size)
                if len(frame_header) < _LOG_FRAME.size:
                    break
                length, crc = _LOG_FRAME.unpack(frame_header)
                if valid_end + _LOG_FRAME.size + length > file_size:
                    break  # torn tail: frame extends past end of file
                body = handle.read(length)
                if len(body) < length or zlib.crc32(body) != crc:
                    break
                try:
                    payloads.append(pickle.loads(body))
                except Exception:
                    break
                valid_end += _LOG_FRAME.size + length
        return payloads, valid_end

    @classmethod
    def recover(cls, path: str) -> List[object]:
        """Scan, truncate the torn tail in place, and return the payloads.

        After this the file ends exactly at the last valid frame, so a
        reopened log appends cleanly; a file that never got its header
        (killed during creation) is removed so it is recreated whole.
        """
        payloads, valid_end = cls.scan(path)
        if not os.path.exists(path):
            return payloads
        if valid_end == 0:
            os.unlink(path)
            return payloads
        if os.path.getsize(path) > valid_end:
            # repro: allow(durability-ordering): torn-tail truncation is the
            # recovery step itself; it shortens to the last fsync'd frame and
            # fsyncs — rewriting the whole log atomically would widen the
            # crash window it closes.
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)
                os.fsync(handle.fileno())
        return payloads
