"""Per-session AS-path topology for synthetic traces.

A route collector session (or a SWIFTED router's session) sees, for every
reachable prefix, an AS path starting at the peer AS.  The set of those paths
forms a tree-like structure hanging off the peer: a handful of first-hop
transit ASes, each with its own customer cone, down to origin ASes announcing
heavy-tailed numbers of prefixes.  Bursts are failures of links inside that
structure.

:class:`SessionTopology` generates and stores that structure for one session:
the AS tree, the per-origin prefixes, the resulting RIB (prefix -> AS path),
an optional *alternate parent* per AS (used to decide whether prefixes are
re-routed or withdrawn when a link above them fails), and popular-origin
annotations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.prefix import Prefix
from repro.traces.popularity import POPULAR_ORGANIZATIONS

__all__ = ["SessionTopology", "SessionTopologyConfig"]


@dataclass(frozen=True)
class SessionTopologyConfig:
    """Shape parameters of the AS structure behind one peering session.

    Defaults produce a session carrying ~20k prefixes over a few thousand
    ASes, a scaled-down but structurally faithful version of a transit
    feed.  ``alternate_probability`` controls how often an AS has a second
    attachment point, i.e. how often a failure translates into path updates
    instead of withdrawals (remote failures being "often partial", §3.1).
    """

    peer_as: int = 3356
    total_prefixes: int = 20000
    first_hop_count: int = 10
    max_depth: int = 6
    branching: int = 3
    heavy_tail_alpha: float = 1.25
    alternate_probability: float = 0.35
    popular_origin_count: int = 6
    prefix_length: int = 24
    base_asn: int = 10000
    prefix_base_octet: int = 20
    seed: int = 0

    def __post_init__(self) -> None:
        if self.total_prefixes <= 0:
            raise ValueError("total_prefixes must be positive")
        if self.first_hop_count <= 0:
            raise ValueError("first_hop_count must be positive")
        if self.max_depth < 2:
            raise ValueError("max_depth must be at least 2")
        if not 0.0 <= self.alternate_probability <= 1.0:
            raise ValueError("alternate_probability must be in [0, 1]")


@dataclass
class _ASNode:
    """One AS in the per-session tree."""

    asn: int
    parent: Optional[int]
    depth: int
    children: List[int]
    alternate_parent: Optional[int] = None
    prefixes: List[Prefix] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.prefixes is None:
            self.prefixes = []


class SessionTopology:
    """The AS structure and RIB behind one peering session."""

    def __init__(self, config: SessionTopologyConfig) -> None:
        self.config = config
        self.peer_as = config.peer_as
        self._nodes: Dict[int, _ASNode] = {}
        self._rib: Dict[Prefix, ASPath] = {}
        self._prefix_origin: Dict[Prefix, int] = {}
        self._popular_asns: Set[int] = set()
        self._build(random.Random(config.seed))

    # -- construction -------------------------------------------------------

    def _build(self, rng: random.Random) -> None:
        config = self.config
        root = _ASNode(asn=config.peer_as, parent=None, depth=0, children=[])
        self._nodes[config.peer_as] = root

        next_asn = config.base_asn
        frontier: List[int] = []
        for _ in range(config.first_hop_count):
            node = self._add_node(next_asn, parent=config.peer_as, depth=1)
            frontier.append(node.asn)
            next_asn += 1

        # Grow the tree breadth-first until we have enough ASes to host the
        # prefix population (roughly one origin per ~5 prefixes, heavy tail).
        target_as_count = max(
            config.first_hop_count + 1, config.total_prefixes // 5
        )
        target_as_count = min(target_as_count, 4 * config.total_prefixes + 10)
        while len(self._nodes) < target_as_count and frontier:
            parent_asn = frontier.pop(0)
            parent = self._nodes[parent_asn]
            if parent.depth >= config.max_depth:
                continue
            children = max(0, int(round(rng.expovariate(1.0 / config.branching))))
            for _ in range(children):
                if len(self._nodes) >= target_as_count:
                    break
                node = self._add_node(next_asn, parent=parent_asn, depth=parent.depth + 1)
                next_asn += 1
                frontier.append(node.asn)
        # If the tree stalled (frontier exhausted), attach remaining ASes to
        # random existing transit nodes so we always reach the target count.
        transit_pool = [
            asn for asn, node in self._nodes.items() if node.depth < config.max_depth
        ]
        while len(self._nodes) < target_as_count and transit_pool:
            parent_asn = transit_pool[rng.randrange(len(transit_pool))]
            parent = self._nodes[parent_asn]
            node = self._add_node(next_asn, parent=parent_asn, depth=parent.depth + 1)
            next_asn += 1
            if node.depth < config.max_depth:
                transit_pool.append(node.asn)

        self._assign_alternates(rng)
        self._assign_prefixes(rng)
        self._mark_popular(rng)

    def _add_node(self, asn: int, parent: int, depth: int) -> _ASNode:
        node = _ASNode(asn=asn, parent=parent, depth=depth, children=[])
        self._nodes[asn] = node
        self._nodes[parent].children.append(asn)
        return node

    def _assign_alternates(self, rng: random.Random) -> None:
        """Give some ASes a second attachment point outside their own subtree."""
        config = self.config
        all_asns = [asn for asn in self._nodes if asn != self.peer_as]
        for asn in all_asns:
            if rng.random() >= config.alternate_probability:
                continue
            node = self._nodes[asn]
            subtree = self.subtree(asn)
            candidates = [
                other
                for other, other_node in self._nodes.items()
                if other not in subtree
                and other != node.parent
                and other_node.depth <= node.depth
            ]
            if candidates:
                node.alternate_parent = candidates[rng.randrange(len(candidates))]

    def _assign_prefixes(self, rng: random.Random) -> None:
        """Hand out prefixes to origin ASes with a heavy-tailed size distribution.

        The allocation is heavy tailed at two levels: across first-hop
        subtrees (so that, as on real transit feeds, a single upstream link
        can carry the majority of the table — which is what makes very large
        bursts possible) and across origins within a subtree.
        """
        config = self.config
        origins = [asn for asn in self._nodes if asn != self.peer_as]
        if not origins:
            raise ValueError("session topology has no origin candidates")
        # Weight each first-hop subtree with a heavy-tailed draw, then weight
        # each origin inside its subtree; the product, normalised, drives the
        # final allocation.
        first_hops = list(self._nodes[self.peer_as].children)
        subtree_weight: Dict[int, float] = {
            first_hop: rng.paretovariate(0.55) for first_hop in first_hops
        }
        first_hop_of: Dict[int, int] = {}
        for first_hop in first_hops:
            for member in self.subtree(first_hop):
                first_hop_of[member] = first_hop
        weights = [
            subtree_weight.get(first_hop_of.get(origin, origin), 1.0)
            * rng.paretovariate(config.heavy_tail_alpha)
            for origin in origins
        ]
        total_weight = sum(weights)
        allocated = 0
        counts: List[int] = []
        for weight in weights:
            count = max(1, int(round(weight / total_weight * config.total_prefixes)))
            counts.append(count)
            allocated += count
        # Trim / pad to hit the exact budget (trim the largest, pad the smallest).
        order = sorted(range(len(origins)), key=lambda i: -counts[i])
        index = 0
        while allocated > config.total_prefixes and index < len(order):
            victim = order[index % len(order)]
            if counts[victim] > 1:
                counts[victim] -= 1
                allocated -= 1
            else:
                index += 1
        index = 0
        while allocated < config.total_prefixes:
            counts[order[index % len(order)]] += 1
            allocated += 1
            index += 1

        stride = 1 << (32 - config.prefix_length)
        cursor = (config.prefix_base_octet << 24)
        for origin, count in zip(origins, counts):
            node = self._nodes[origin]
            path = ASPath(self.chain(origin))
            for _ in range(count):
                prefix = Prefix(cursor, config.prefix_length)
                cursor += stride
                node.prefixes.append(prefix)
                self._rib[prefix] = path
                self._prefix_origin[prefix] = origin

    def _mark_popular(self, rng: random.Random) -> None:
        """Relabel some of the biggest origins with popular-organization ASNs."""
        config = self.config
        # Popular organizations sit among the larger origins but are not
        # necessarily *the* largest ones; sample from the top of the ranking
        # so that not every single burst touches a popular prefix (the paper
        # measures 84%, not 100%).
        by_size = sorted(
            (asn for asn in self._nodes if asn != self.peer_as),
            key=lambda asn: -len(self._nodes[asn].prefixes),
        )[: max(40, 4 * config.popular_origin_count)]
        rng.shuffle(by_size)
        popular_asns = [
            asn for organization in POPULAR_ORGANIZATIONS for asn in organization.asns
        ]
        rng.shuffle(popular_asns)
        count = min(config.popular_origin_count, len(by_size), len(popular_asns))
        for index in range(count):
            old_asn = by_size[index]
            new_asn = popular_asns[index]
            if new_asn in self._nodes:
                continue
            self._rename_as(old_asn, new_asn)
            self._popular_asns.add(new_asn)

    def _rename_as(self, old_asn: int, new_asn: int) -> None:
        node = self._nodes.pop(old_asn)
        node.asn = new_asn
        self._nodes[new_asn] = node
        if node.parent is not None:
            siblings = self._nodes[node.parent].children
            siblings[siblings.index(old_asn)] = new_asn
        for child_asn in node.children:
            self._nodes[child_asn].parent = new_asn
        for asn, other in self._nodes.items():
            if other.alternate_parent == old_asn:
                other.alternate_parent = new_asn
        # Re-derive the AS paths of every prefix below the renamed AS.
        for prefix in list(self._rib):
            origin = self._prefix_origin[prefix]
            if origin == old_asn:
                origin = new_asn
                self._prefix_origin[prefix] = new_asn
            path = self._rib[prefix]
            if old_asn in path.asns:
                self._rib[prefix] = ASPath(
                    new_asn if asn == old_asn else asn for asn in path.asns
                )

    # -- queries -------------------------------------------------------------

    @property
    def rib(self) -> Dict[Prefix, ASPath]:
        """The session RIB: prefix -> AS path (peer AS first, origin last)."""
        return self._rib

    @property
    def popular_asns(self) -> FrozenSet[int]:
        """Origin ASNs carrying a popular organization label."""
        return frozenset(self._popular_asns)

    @property
    def as_count(self) -> int:
        """Number of ASes in the session structure (including the peer)."""
        return len(self._nodes)

    @property
    def prefix_count(self) -> int:
        """Number of prefixes in the session RIB."""
        return len(self._rib)

    def chain(self, asn: int) -> Tuple[int, ...]:
        """AS path from the peer down to ``asn`` (peer first, ``asn`` last)."""
        path: List[int] = []
        cursor: Optional[int] = asn
        while cursor is not None:
            path.append(cursor)
            cursor = self._nodes[cursor].parent
        return tuple(reversed(path))

    def subtree(self, asn: int) -> FrozenSet[int]:
        """All ASes at or below ``asn`` in the tree."""
        result: Set[int] = set()
        frontier = [asn]
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            frontier.extend(self._nodes[current].children)
        return frozenset(result)

    def links(self) -> List[Tuple[int, int]]:
        """All parent-child AS links of the tree, in canonical form."""
        result: List[Tuple[int, int]] = []
        for asn, node in self._nodes.items():
            if node.parent is None:
                continue
            a, b = (node.parent, asn) if node.parent <= asn else (asn, node.parent)
            result.append((a, b))
        return sorted(result)

    def link_prefix_counts(self) -> Dict[Tuple[int, int], int]:
        """Number of prefixes whose path crosses each tree link."""
        counts: Dict[Tuple[int, int], int] = {}
        for path in self._rib.values():
            for link in path.links():
                counts[link] = counts.get(link, 0) + 1
        # The session link (local router <-> peer) is implicit and not counted.
        return counts

    def prefixes_below(self, asn: int) -> List[Prefix]:
        """Prefixes originated at or below ``asn``."""
        members = self.subtree(asn)
        return [
            prefix
            for prefix, origin in self._prefix_origin.items()
            if origin in members
        ]

    def prefixes_via_link(self, link: Tuple[int, int]) -> List[Prefix]:
        """Prefixes whose AS path traverses the (undirected) link."""
        canonical = link if link[0] <= link[1] else (link[1], link[0])
        return [
            prefix
            for prefix, path in self._rib.items()
            if canonical in path.links()
        ]

    def child_of_link(self, link: Tuple[int, int]) -> int:
        """Return the endpoint of ``link`` that is the child (deeper) AS."""
        a, b = link
        node_a, node_b = self._nodes.get(a), self._nodes.get(b)
        if node_a is None or node_b is None:
            raise KeyError(link)
        return a if node_a.depth > node_b.depth else b

    def alternate_parent_of(self, asn: int) -> Optional[int]:
        """The alternate attachment point of ``asn``, if it has one."""
        return self._nodes[asn].alternate_parent

    def origin_of(self, prefix: Prefix) -> int:
        """Origin AS of ``prefix`` (KeyError if unknown)."""
        return self._prefix_origin[prefix]

    def reroute_path(
        self,
        origin: int,
        failed_child: int,
        failed_subtree: Optional[FrozenSet[int]] = None,
    ) -> Optional[ASPath]:
        """Path for ``origin`` when the link above ``failed_child`` is down.

        Uses the alternate parent of ``failed_child`` when it exists and lies
        outside the failed subtree; returns ``None`` when no alternate exists
        (the prefix would be withdrawn).  ``failed_subtree`` may be passed in
        to avoid recomputing the subtree for every prefix of a large burst.
        """
        alternate = self._nodes[failed_child].alternate_parent
        if alternate is None:
            return None
        subtree = failed_subtree if failed_subtree is not None else self.subtree(failed_child)
        if alternate in subtree:
            return None
        origin_chain = self.chain(origin)
        if failed_child not in origin_chain:
            return ASPath(origin_chain)
        suffix = origin_chain[origin_chain.index(failed_child):]
        new_chain = self.chain(alternate) + suffix
        # Guard against accidental loops (an AS appearing twice).
        if len(set(new_chain)) != len(new_chain):
            return None
        return ASPath(new_chain)

    def origins(self) -> List[int]:
        """All origin ASes (ASes originating at least one prefix)."""
        return sorted(
            asn for asn, node in self._nodes.items() if node.prefixes
        )
