"""Trace substrate: the RouteViews / RIPE RIS stand-in.

The paper's real-data evaluation consumes one month of BGP messages dumped by
15 route collectors (213 peering sessions).  With no access to those archives
this package provides:

* a lightweight MRT-like record format with reader/writer
  (:mod:`repro.traces.mrt`) so the "parse a dump, replay it" code path exists,
* a synthetic per-session trace generator calibrated to the burst statistics
  the paper reports in §2.2.1 (:mod:`repro.traces.synthetic`), built on a
  per-session AS-path topology (:mod:`repro.traces.session_topology`),
* the sliding-window burst extraction of §2.2.1 (:mod:`repro.traces.bursts`),
* the popular-origin tagging used for the "84% of bursts include popular
  prefixes" statistic (:mod:`repro.traces.popularity`).
"""

from repro.traces.bursts import Burst, BurstExtractor, BurstExtractionConfig
from repro.traces.collectors import Collector, CollectorPeer, build_collector_fleet
from repro.traces.columnar import (
    COLUMNAR_FORMAT_VERSION,
    ColumnarMessageView,
    ColumnarRun,
    ColumnarTrace,
    InternPool,
    decode_rib,
    encode_rib,
)
from repro.traces.columnar_store import CorruptColumnStoreError
from repro.traces.validation import TraceValidationError, ValidationReport
from repro.traces.fulltable import FullTable, FullTableConfig, FullTableGenerator
from repro.traces.mrt import (
    TraceRecord,
    TraceReader,
    TraceWriter,
    records_to_columnar,
    records_to_messages,
)
from repro.traces.popularity import POPULAR_ORGANIZATIONS, PopularOrigin, is_popular_asn
from repro.traces.session_topology import SessionTopology, SessionTopologyConfig
from repro.traces.synthetic import (
    BurstPlan,
    ColumnarSyntheticTrace,
    SyntheticBurst,
    SyntheticTrace,
    SyntheticTraceConfig,
    SyntheticTraceGenerator,
    SyntheticTraceStream,
    cached_columnar_stream,
    cached_columnar_stream_file,
    cached_trace,
)

__all__ = [
    "Burst",
    "BurstExtractionConfig",
    "BurstExtractor",
    "BurstPlan",
    "COLUMNAR_FORMAT_VERSION",
    "Collector",
    "CollectorPeer",
    "ColumnarMessageView",
    "ColumnarRun",
    "ColumnarSyntheticTrace",
    "ColumnarTrace",
    "CorruptColumnStoreError",
    "FullTable",
    "FullTableConfig",
    "FullTableGenerator",
    "InternPool",
    "POPULAR_ORGANIZATIONS",
    "PopularOrigin",
    "SessionTopology",
    "SessionTopologyConfig",
    "SyntheticBurst",
    "SyntheticTrace",
    "SyntheticTraceConfig",
    "SyntheticTraceGenerator",
    "SyntheticTraceStream",
    "TraceReader",
    "TraceRecord",
    "TraceValidationError",
    "TraceWriter",
    "ValidationReport",
    "build_collector_fleet",
    "cached_columnar_stream",
    "cached_columnar_stream_file",
    "cached_trace",
    "decode_rib",
    "encode_rib",
    "is_popular_asn",
    "records_to_columnar",
    "records_to_messages",
]
