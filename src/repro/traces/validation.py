"""Shared ingestion validation: strict rejection or lenient count-and-skip.

Malformed trace rows used to propagate silently into inference — a
non-monotone timestamp breaks every bisect over the time column, an
out-of-range intern id crashes (or worse, aliases) deep inside the engine,
inconsistent cumulative bounds corrupt burst accounting.  The ingestion
surfaces (:meth:`repro.traces.mrt.TraceRecord.from_line`,
:func:`repro.traces.mrt.records_to_columnar`,
:meth:`repro.traces.columnar.ColumnarTrace.from_payload` /
:meth:`~repro.traces.columnar.ColumnarTrace.validated`) now funnel every
such defect through one :class:`ValidationReport`:

* **strict** (the default): the first defect raises a typed
  :class:`TraceValidationError` naming the reason and the offending row —
  malformed input never reaches inference;
* **lenient**: defects are counted per reason (with a first-example detail
  for diagnosis) and the offending rows are *skipped*, so a mostly-good
  stream degrades gracefully instead of aborting a month replay.

Structural defects — truncated columns, interning tables that disagree
with themselves — cannot be repaired by skipping rows and raise in both
modes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["TraceValidationError", "ValidationReport"]


class TraceValidationError(ValueError):
    """A malformed trace input, rejected by strict validation.

    ``reason`` is a stable machine-readable slug (e.g.
    ``"non-monotone-timestamp"``, ``"unknown-kind"``,
    ``"out-of-range-intern-id"``); ``detail`` pinpoints the offending
    input.  Subclasses :class:`ValueError` so pre-existing callers
    catching the untyped error keep working.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        self.detail = detail
        message = f"{reason}: {detail}" if detail else reason
        super().__init__(message)


@dataclass
class ValidationReport:
    """Counts what validation saw — and decides reject vs count-and-skip.

    One report threads through a whole ingestion pass (a file read, a
    payload restore); ``skipped`` tallies dropped rows per reason and
    ``examples`` keeps the first offending detail of each reason for the
    log line.  ``flag()`` is the single decision point: it raises in
    strict mode and records in lenient mode, so call sites never branch on
    the mode themselves.
    """

    lenient: bool = False
    checked: int = 0
    skipped: Counter = field(default_factory=Counter)
    examples: Dict[str, str] = field(default_factory=dict)

    def flag(self, reason: str, detail: str = "") -> None:
        """Report one malformed row: raise (strict) or count it (lenient)."""
        if not self.lenient:
            raise TraceValidationError(reason, detail)
        self.note(TraceValidationError(reason, detail))

    def note(self, error: TraceValidationError) -> None:
        """Record an already-raised validation error (lenient reader path)."""
        self.skipped[error.reason] += 1
        self.examples.setdefault(error.reason, error.detail)

    @property
    def skipped_total(self) -> int:
        """Total rows dropped by lenient validation."""
        return sum(self.skipped.values())

    @property
    def clean(self) -> bool:
        """True when nothing had to be rejected or skipped."""
        return not self.skipped

    def summary(self) -> str:
        """One log-friendly line: totals plus per-reason counts."""
        if self.clean:
            return f"validated {self.checked} rows, all clean"
        reasons = ", ".join(
            f"{reason} x{count} (e.g. {self.examples.get(reason, '?')})"
            for reason, count in sorted(self.skipped.items())
        )
        return (
            f"validated {self.checked} rows, skipped {self.skipped_total}: {reasons}"
        )
