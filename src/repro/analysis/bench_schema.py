"""Rule ``bench-schema``: benchmark artifacts carry the environment stamp.

Benchmark suites persist their numbers as ``BENCH_*.json`` artifacts so
runs are comparable across machines and sessions.  Comparability depends
on every artifact embedding the same environment descriptor —
``benchmarks/conftest.bench_env()`` (cpu count, kernel backend, numpy
version).  A benchmark module that writes a ``BENCH_`` artifact without
going through ``bench_env()`` produces numbers nobody can later interpret,
so this rule flags any ``benchmarks/`` module that mentions a ``BENCH_``
artifact name outside a docstring but never imports *and calls*
``bench_env``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.core import Checker, Finding, ModuleInfo, docstring_nodes, register

__all__ = ["BenchSchemaChecker"]

ARTIFACT_MARKER = "BENCH_"
ENV_HELPER = "bench_env"


def _first_artifact_mention(module: ModuleInfo) -> Optional[ast.Constant]:
    docstrings = docstring_nodes(module.tree)
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and ARTIFACT_MARKER in node.value
            and id(node) not in docstrings
        ):
            return node
    return None


def _imports_env_helper(module: ModuleInfo) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom):
            if any(alias.name == ENV_HELPER for alias in node.names):
                return True
        elif isinstance(node, ast.Import):
            # "import conftest" style — accept; the call check still applies.
            if any("conftest" in alias.name for alias in node.names):
                return True
    return False


def _calls_env_helper(module: ModuleInfo) -> bool:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == ENV_HELPER:
            return True
        if isinstance(func, ast.Attribute) and func.attr == ENV_HELPER:
            return True
    return False


@register
class BenchSchemaChecker(Checker):
    name = "bench-schema"
    description = (
        "benchmark modules that write BENCH_*.json artifacts stamp them "
        "with benchmarks/conftest.bench_env()"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("benchmarks/") and relpath != "benchmarks/conftest.py"

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        mention = _first_artifact_mention(module)
        if mention is None:
            return ()
        findings: List[Finding] = []
        if not _calls_env_helper(module):
            findings.append(
                Finding(
                    rule=self.name,
                    path=module.relpath,
                    line=mention.lineno,
                    message=(
                        "module references a BENCH_ artifact but never calls "
                        "benchmarks/conftest.bench_env(); artifacts without the "
                        "environment stamp are not comparable across runs"
                    ),
                    anchor="missing-bench-env-call",
                )
            )
        elif not _imports_env_helper(module):
            findings.append(
                Finding(
                    rule=self.name,
                    path=module.relpath,
                    line=mention.lineno,
                    message=(
                        "bench_env is called but not imported from the "
                        "benchmarks conftest — import it explicitly so the "
                        "stamp's provenance is visible"
                    ),
                    anchor="missing-bench-env-import",
                )
            )
        return findings
