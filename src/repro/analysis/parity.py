"""Rule ``parity-pair``: reference/optimized twins must not drift apart.

The repo's correctness story leans on *parity pairs*: a reference
implementation kept verbatim next to the optimized production path, with
byte-identical-output tests bridging them.  Those tests only hold while the
two surfaces stay call-compatible — a renamed parameter or changed default
on one side silently turns the parity suite into a partial check.  This
rule pins the surfaces themselves:

* **class pairs** — every public method of the reference class must exist
  on the optimized twin with a matching signature (parameter names, order
  and defaults; annotations are deliberately ignored — the twins annotate
  differently and annotations never change call compatibility).  The twin
  may *extend* a signature with trailing defaulted parameters (that is how
  optimized paths grow knobs) and may add whole new methods;
* **module pairs** (kernel backends) — every public function defined in
  both modules must match the same way; a public function present in only
  one backend is drift; and every shared public function must be listed in
  *both* modules' ``__all__`` (an undeclared kernel is how a backend
  quietly stops being checked);
* **method pairs** — ``<x>_reference`` methods kept inside a production
  class follow the same prefix-compatibility rule against their fast twin.

Pairs are configurable at construction (the analyzer's own tests point the
checker at fixture files); the defaults below are the tree's real pairs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.core import Checker, Finding, ModuleInfo, Project, register

__all__ = ["ClassPair", "MethodPair", "ModulePair", "ParityChecker"]


@dataclass(frozen=True)
class ClassPair:
    ref_path: str
    ref_class: str
    twin_path: str
    twin_class: str


@dataclass(frozen=True)
class ModulePair:
    ref_path: str
    twin_path: str


@dataclass(frozen=True)
class MethodPair:
    path: str
    cls: str
    ref_method: str
    twin_method: str


DEFAULT_CLASS_PAIRS: Tuple[ClassPair, ...] = (
    ClassPair(
        "src/repro/core/reference.py",
        "ReferenceFitScoreCalculator",
        "src/repro/core/fit_score.py",
        "FitScoreCalculator",
    ),
    ClassPair(
        "src/repro/bgp/trie_reference.py",
        "ReferencePrefixTrie",
        "src/repro/bgp/trie.py",
        "PrefixTrie",
    ),
)

DEFAULT_MODULE_PAIRS: Tuple[ModulePair, ...] = (
    ModulePair("src/repro/core/kernels/stdlib.py", "src/repro/core/kernels/numpy.py"),
)

DEFAULT_METHOD_PAIRS: Tuple[MethodPair, ...] = (
    MethodPair(
        "src/repro/core/backup.py",
        "BackupComputer",
        "compute_table_reference",
        "compute_table",
    ),
)


def _signature(function: ast.AST) -> List[Tuple[str, Optional[str]]]:
    """``(name, default-source-or-None)`` per parameter, in call order.

    Annotations are ignored on purpose; ``*args`` / ``**kwargs`` and
    keyword-only parameters are folded in as ``*name`` / ``**name`` entries
    so their presence (and names) must match too.
    """
    args = function.args
    positional = list(args.posonlyargs) + list(args.args)
    defaults: List[Optional[str]] = [None] * (len(positional) - len(args.defaults))
    defaults.extend(ast.unparse(default) for default in args.defaults)
    signature = [
        (arg.arg, default) for arg, default in zip(positional, defaults)
    ]
    if args.vararg is not None:
        signature.append((f"*{args.vararg.arg}", None))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        signature.append(
            (arg.arg, None if default is None else ast.unparse(default))
        )
    if args.kwarg is not None:
        signature.append((f"**{args.kwarg.arg}", None))
    return signature


def _format(signature: List[Tuple[str, Optional[str]]]) -> str:
    return "(" + ", ".join(
        name if default is None else f"{name}={default}" for name, default in signature
    ) + ")"


def _class_methods(module: ModuleInfo, class_name: str) -> Optional[Dict[str, ast.AST]]:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return {
                item.name: item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
    return None


def _module_functions(module: ModuleInfo) -> Dict[str, ast.AST]:
    return {
        node.name: node
        for node in module.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _module_all(module: ModuleInfo) -> Optional[List[str]]:
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        return [
                            element.value
                            for element in node.value.elts
                            if isinstance(element, ast.Constant)
                            and isinstance(element.value, str)
                        ]
    return None


def _compatible(
    ref: List[Tuple[str, Optional[str]]], twin: List[Tuple[str, Optional[str]]]
) -> bool:
    """The reference signature must be a prefix of the twin's; any extra
    twin parameters must be defaulted (or ``*``/``**`` catch-alls)."""
    if twin[: len(ref)] != ref:
        return False
    for name, default in twin[len(ref):]:
        if default is None and not name.startswith("*"):
            return False
    return True


@register
class ParityChecker(Checker):
    name = "parity-pair"
    description = (
        "reference/optimized twins (reference.py classes, kernel backends, "
        "*_reference methods) keep matching public signatures"
    )

    def __init__(
        self,
        class_pairs: Optional[Sequence[ClassPair]] = None,
        module_pairs: Optional[Sequence[ModulePair]] = None,
        method_pairs: Optional[Sequence[MethodPair]] = None,
    ) -> None:
        self.class_pairs = (
            tuple(class_pairs) if class_pairs is not None else DEFAULT_CLASS_PAIRS
        )
        self.module_pairs = (
            tuple(module_pairs) if module_pairs is not None else DEFAULT_MODULE_PAIRS
        )
        self.method_pairs = (
            tuple(method_pairs) if method_pairs is not None else DEFAULT_METHOD_PAIRS
        )

    def finalize(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for pair in self.class_pairs:
            findings.extend(self._check_class_pair(project, pair))
        for pair in self.module_pairs:
            findings.extend(self._check_module_pair(project, pair))
        for pair in self.method_pairs:
            findings.extend(self._check_method_pair(project, pair))
        return findings

    # -- class pairs ---------------------------------------------------------

    def _check_class_pair(self, project: Project, pair: ClassPair) -> Iterable[Finding]:
        ref_module = project.module(pair.ref_path)
        twin_module = project.module(pair.twin_path)
        missing = self._missing_files(
            (pair.ref_path, ref_module), (pair.twin_path, twin_module)
        )
        if missing:
            return missing
        ref_methods = _class_methods(ref_module, pair.ref_class)
        twin_methods = _class_methods(twin_module, pair.twin_class)
        for class_name, methods, module in (
            (pair.ref_class, ref_methods, ref_module),
            (pair.twin_class, twin_methods, twin_module),
        ):
            if methods is None:
                return [
                    Finding(
                        rule=self.name,
                        path=module.relpath,
                        line=1,
                        message=f"parity pair class {class_name!r} not found",
                        anchor=f"missing-class:{class_name}",
                    )
                ]
        findings: List[Finding] = []
        for method_name in sorted(ref_methods):
            if method_name.startswith("_"):
                continue
            ref_fn = ref_methods[method_name]
            twin_fn = twin_methods.get(method_name)
            if twin_fn is None:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=pair.twin_path,
                        line=1,
                        message=(
                            f"{pair.twin_class} is missing public method "
                            f"{method_name!r} of its parity reference "
                            f"{pair.ref_class}"
                        ),
                        anchor=f"missing-method:{pair.twin_class}.{method_name}",
                    )
                )
                continue
            ref_sig, twin_sig = _signature(ref_fn), _signature(twin_fn)
            if not _compatible(ref_sig, twin_sig):
                findings.append(
                    Finding(
                        rule=self.name,
                        path=pair.twin_path,
                        line=twin_fn.lineno,
                        message=(
                            f"{pair.twin_class}.{method_name}{_format(twin_sig)} "
                            f"drifted from its parity reference "
                            f"{pair.ref_class}.{method_name}{_format(ref_sig)}"
                        ),
                        anchor=f"signature:{pair.twin_class}.{method_name}",
                    )
                )
        return findings

    # -- module pairs (kernel backends) --------------------------------------

    def _check_module_pair(
        self, project: Project, pair: ModulePair
    ) -> Iterable[Finding]:
        ref_module = project.module(pair.ref_path)
        twin_module = project.module(pair.twin_path)
        missing = self._missing_files(
            (pair.ref_path, ref_module), (pair.twin_path, twin_module)
        )
        if missing:
            return missing
        findings: List[Finding] = []
        ref_functions = {
            name: fn for name, fn in _module_functions(ref_module).items()
            if not name.startswith("_")
        }
        twin_functions = {
            name: fn for name, fn in _module_functions(twin_module).items()
            if not name.startswith("_")
        }
        for name in sorted(set(ref_functions) ^ set(twin_functions)):
            present, absent = (
                (pair.ref_path, pair.twin_path)
                if name in ref_functions
                else (pair.twin_path, pair.ref_path)
            )
            owner = ref_functions.get(name) or twin_functions[name]
            findings.append(
                Finding(
                    rule=self.name,
                    path=present,
                    line=owner.lineno,
                    message=(
                        f"backend function {name!r} exists in {present} but not "
                        f"in its twin {absent}; kernel backends must expose "
                        "identical public surfaces"
                    ),
                    anchor=f"one-sided:{name}",
                )
            )
        shared = sorted(set(ref_functions) & set(twin_functions))
        for name in shared:
            ref_sig = _signature(ref_functions[name])
            twin_sig = _signature(twin_functions[name])
            if not _compatible(ref_sig, twin_sig):
                findings.append(
                    Finding(
                        rule=self.name,
                        path=pair.twin_path,
                        line=twin_functions[name].lineno,
                        message=(
                            f"kernel {name}{_format(twin_sig)} drifted from the "
                            f"reference backend's {name}{_format(ref_sig)}"
                        ),
                        anchor=f"signature:{name}",
                    )
                )
        for module in (ref_module, twin_module):
            declared = _module_all(module)
            if declared is None:
                continue
            for name in shared:
                if name not in declared:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=module.relpath,
                            line=1,
                            message=(
                                f"kernel function {name!r} is part of the shared "
                                "backend surface but missing from __all__"
                            ),
                            anchor=f"all:{name}",
                        )
                    )
        return findings

    # -- method pairs --------------------------------------------------------

    def _check_method_pair(
        self, project: Project, pair: MethodPair
    ) -> Iterable[Finding]:
        module = project.module(pair.path)
        if module is None:
            return [
                Finding(
                    rule=self.name,
                    path=pair.path,
                    line=1,
                    message="parity pair file missing",
                    anchor="missing-file",
                )
            ]
        methods = _class_methods(module, pair.cls)
        if methods is None:
            return [
                Finding(
                    rule=self.name,
                    path=pair.path,
                    line=1,
                    message=f"parity pair class {pair.cls!r} not found",
                    anchor=f"missing-class:{pair.cls}",
                )
            ]
        findings: List[Finding] = []
        for role, name in (("reference", pair.ref_method), ("optimized", pair.twin_method)):
            if name not in methods:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=pair.path,
                        line=1,
                        message=f"{role} method {pair.cls}.{name} not found",
                        anchor=f"missing-method:{pair.cls}.{name}",
                    )
                )
        if findings:
            return findings
        ref_sig = _signature(methods[pair.ref_method])
        twin_sig = _signature(methods[pair.twin_method])
        if not _compatible(ref_sig, twin_sig):
            findings.append(
                Finding(
                    rule=self.name,
                    path=pair.path,
                    line=methods[pair.twin_method].lineno,
                    message=(
                        f"{pair.cls}.{pair.twin_method}{_format(twin_sig)} drifted "
                        f"from {pair.cls}.{pair.ref_method}{_format(ref_sig)}"
                    ),
                    anchor=f"signature:{pair.cls}.{pair.twin_method}",
                )
            )
        return findings

    # -- shared --------------------------------------------------------------

    def _missing_files(self, *named: Tuple[str, Optional[ModuleInfo]]) -> List[Finding]:
        findings: List[Finding] = []
        for relpath, module in named:
            if module is None:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=relpath,
                        line=1,
                        message="parity pair file missing",
                        anchor="missing-file",
                    )
                )
        return findings
