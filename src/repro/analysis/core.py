"""Framework of the contract-enforcing static-analysis suite.

Everything here is stdlib-``ast`` only: a :class:`ModuleInfo` is one parsed
source file, a :class:`Project` is the set of files one run scans, and a
:class:`Checker` is a registered rule that inspects modules (per-file) and
the whole project (cross-file, in :meth:`Checker.finalize`).

Three escape hatches keep the suite honest instead of annoying:

* **suppressions** — a ``# repro: allow(<rule>)`` comment on the offending
  line (or the line above) silences that rule there, ideally with a
  trailing justification;
* **baseline** — grandfathered findings live in ``baseline.json`` next to
  this package (see :mod:`repro.analysis.baseline`), each with a one-line
  justification; the gate fails only on *non-baselined* findings;
* **anchors** — findings carry a stable ``anchor`` (a symbol or site name,
  not a line number), so baseline entries survive unrelated edits.

The two front ends — ``python -m repro.analysis`` and the tier-1 pytest
gate ``tests/test_static_analysis.py`` — both call :func:`run_analysis`.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "Checker",
    "Finding",
    "ModuleInfo",
    "Project",
    "REGISTRY",
    "default_checkers",
    "detect_root",
    "docstring_nodes",
    "iter_source_files",
    "load_module",
    "register",
    "run_analysis",
]

#: ``# repro: allow(rule-a, rule-b): optional justification``
_SUPPRESS = re.compile(r"#\s*repro:\s*allow\(([a-z0-9_,\s-]+)\)")

#: Directory names never descended into when walking a path argument.
#: ``analysis_fixtures`` holds deliberately-violating snippets for the
#: analyzer's own tests — they are scanned only when named explicitly.
EXCLUDED_DIRS = frozenset(
    {"__pycache__", ".git", ".trace_cache", ".pytest_cache", "analysis_fixtures"}
)


class AnalysisError(RuntimeError):
    """The analysis run itself could not proceed (bad path, bad rule name)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    path: str  # repo-relative, '/'-separated
    line: int
    message: str
    #: Stable identifier for baseline matching (a symbol/site name, not a
    #: line number, so grandfathered entries survive unrelated edits).
    anchor: str = ""

    @property
    def key(self) -> str:
        return f"{self.rule}:{self.path}:{self.anchor or self.line}"

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "anchor": self.anchor,
            "key": self.key,
        }


@dataclass
class ModuleInfo:
    """One parsed source file plus its per-line suppressions."""

    path: str  # absolute
    relpath: str  # repo-relative, '/'-separated
    source: str
    tree: ast.Module
    #: line number -> rule names allowed there (``*`` allows every rule).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def suppressed(self, finding: Finding) -> bool:
        """True when an allow-comment on the line (or the one above) covers
        the finding's rule."""
        for line in (finding.line, finding.line - 1):
            rules = self.suppressions.get(line)
            if rules and (finding.rule in rules or "*" in rules):
                return True
        return False


def _collect_suppressions(source: str) -> Dict[int, Set[str]]:
    lines = source.splitlines()
    suppressions: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        matched = _SUPPRESS.search(text)
        if not matched:
            continue
        rules = {piece.strip() for piece in matched.group(1).split(",")}
        rules = {rule for rule in rules if rule}
        suppressions.setdefault(number, set()).update(rules)
        # An allow marker on a comment-only line covers the whole contiguous
        # comment block below it, so a multi-line justification still lands
        # on the statement it precedes.
        if text.lstrip().startswith("#"):
            follower = number + 1
            while follower <= len(lines) and lines[follower - 1].lstrip().startswith("#"):
                suppressions.setdefault(follower, set()).update(rules)
                follower += 1
    return suppressions


def load_module(path: str, root: Optional[str] = None, relpath: Optional[str] = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo`.

    ``relpath`` overrides the computed repo-relative path — the analyzer
    fixture tests use this to make a snippet masquerade as (say) a kernels
    module so scoped rules apply to it.
    """
    path = os.path.abspath(path)
    if relpath is None:
        base = root if root is not None else os.getcwd()
        relpath = os.path.relpath(path, base)
    relpath = relpath.replace(os.sep, "/")
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise AnalysisError(f"{relpath}: cannot parse ({error})") from error
    return ModuleInfo(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        suppressions=_collect_suppressions(source),
    )


def detect_root(start: Optional[str] = None) -> str:
    """The repository root: the nearest ancestor holding pytest.ini/.git."""
    probe = os.path.abspath(start if start is not None else os.getcwd())
    if os.path.isfile(probe):
        probe = os.path.dirname(probe)
    while True:
        if any(
            os.path.exists(os.path.join(probe, marker))
            for marker in ("pytest.ini", ".git")
        ):
            return probe
        parent = os.path.dirname(probe)
        if parent == probe:
            return os.path.abspath(start if start is not None else os.getcwd())
        probe = parent


def iter_source_files(path: str) -> Iterator[str]:
    """Yield the ``.py`` files under ``path`` (a file yields itself).

    Directory walks skip :data:`EXCLUDED_DIRS`; explicitly-named files are
    never excluded (which is how the fixture tests scan
    ``tests/analysis_fixtures/`` snippets).
    """
    if os.path.isfile(path):
        yield path
        return
    if not os.path.isdir(path):
        raise AnalysisError(f"no such file or directory: {path}")
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames[:] = sorted(d for d in dirnames if d not in EXCLUDED_DIRS)
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


class Project:
    """The module set of one analysis run, plus lazy out-of-scan loading."""

    def __init__(self, root: str, modules: Sequence[ModuleInfo]) -> None:
        self.root = root
        self.modules: List[ModuleInfo] = list(modules)
        self.by_relpath: Dict[str, ModuleInfo] = {
            module.relpath: module for module in self.modules
        }

    def module(self, relpath: str) -> Optional[ModuleInfo]:
        """The module at a repo-relative path, loading it if not scanned.

        Cross-file checkers (parity pairs, the fault-site registry) need
        their counterpart files even when the scan paths did not cover
        them; lazily-loaded modules still participate in suppression
        matching.  Returns ``None`` when the file does not exist.
        """
        module = self.by_relpath.get(relpath)
        if module is not None:
            return module
        path = os.path.join(self.root, relpath.replace("/", os.sep))
        if not os.path.isfile(path):
            return None
        module = load_module(path, root=self.root, relpath=relpath)
        self.by_relpath[relpath] = module
        return module


class Checker:
    """One registered rule.  Subclasses override the hooks they need."""

    #: Rule name — used in CLI ``--rule``, suppressions and baseline keys.
    name: str = ""
    description: str = ""

    def applies_to(self, relpath: str) -> bool:
        """Whether :meth:`check_module` should see this file at all."""
        return True

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        """Cross-file checks, run once after every module was visited."""
        return ()


#: name -> Checker subclass; populated by the :func:`register` decorator as
#: the checker modules import (``repro.analysis.__init__`` imports them all).
REGISTRY: Dict[str, type] = {}


def register(cls: type) -> type:
    if not cls.name:
        raise ValueError(f"checker {cls!r} has no rule name")
    REGISTRY[cls.name] = cls
    return cls


def default_checkers(rules: Optional[Sequence[str]] = None) -> List[Checker]:
    """Instances of every registered checker (or the named subset)."""
    if rules is None:
        names = sorted(REGISTRY)
    else:
        unknown = sorted(set(rules) - set(REGISTRY))
        if unknown:
            raise AnalysisError(
                f"unknown rule(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(REGISTRY))})"
            )
        names = list(dict.fromkeys(rules))
    return [REGISTRY[name]() for name in names]


# -- shared AST helpers -------------------------------------------------------

def iter_with_parents(tree: ast.AST) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
    """Depth-first ``(node, ancestors)`` pairs; ancestors outermost-first."""
    stack: List[Tuple[ast.AST, Tuple[ast.AST, ...]]] = [(tree, ())]
    while stack:
        node, parents = stack.pop()
        yield node, parents
        child_parents = parents + (node,)
        for child in reversed(list(ast.iter_child_nodes(node))):
            stack.append((child, child_parents))


def docstring_nodes(tree: ast.Module) -> Set[int]:
    """``id()`` of every docstring Constant — so string scans skip prose."""
    nodes: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            body = getattr(node, "body", [])
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                nodes.add(id(body[0].value))
    return nodes


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# -- the run ------------------------------------------------------------------

@dataclass
class AnalysisReport:
    """Outcome of one :func:`run_analysis` call."""

    root: str
    files_scanned: int
    rules: List[str]
    #: Non-suppressed, non-baselined findings — the ones that fail the gate.
    findings: List[Finding]
    #: Findings matched by a baseline entry (visible, not failing).
    baselined: List[Finding]
    #: Baseline entries that matched nothing this run (candidates to drop).
    stale_baseline: List[dict]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "files_scanned": self.files_scanned,
            "rules": self.rules,
            "ok": self.ok,
            "findings": [finding.to_dict() for finding in self.findings],
            "baselined": [finding.to_dict() for finding in self.baselined],
            "stale_baseline": list(self.stale_baseline),
        }


def analyze_project(
    project: Project, checkers: Sequence[Checker]
) -> List[Finding]:
    """Run the checkers over a project; suppressions applied, baseline not."""
    findings: List[Finding] = []
    for module in project.modules:
        for checker in checkers:
            if checker.applies_to(module.relpath):
                findings.extend(checker.check_module(module))
    for checker in checkers:
        findings.extend(checker.finalize(project))
    kept = []
    for finding in findings:
        module = project.by_relpath.get(finding.path)
        if module is not None and module.suppressed(finding):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return kept


def run_analysis(
    paths: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[str]] = None,
    root: Optional[str] = None,
    baseline_path: Optional[str] = None,
    use_baseline: bool = True,
) -> AnalysisReport:
    """Scan ``paths`` (default: ``src`` under the repo root) with the
    registered checkers and split findings against the committed baseline."""
    from repro.analysis.baseline import Baseline, load_baseline

    if root is None:
        root = detect_root(paths[0] if paths else None)
    root = os.path.abspath(root)
    if not paths:
        paths = ["src"]
    files: List[str] = []
    seen: Set[str] = set()
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root, path)
        for file_path in iter_source_files(absolute):
            if file_path not in seen:
                seen.add(file_path)
                files.append(file_path)
    modules = [load_module(path, root=root) for path in files]
    project = Project(root, modules)
    checkers = default_checkers(rules)
    all_findings = analyze_project(project, checkers)
    baseline = load_baseline(baseline_path) if use_baseline else Baseline()
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    matched_keys: Set[str] = set()
    for finding in all_findings:
        if baseline.matches(finding):
            grandfathered.append(finding)
            matched_keys.add(finding.key)
        else:
            new.append(finding)
    stale = [entry for entry in baseline.entries if entry_key(entry) not in matched_keys]
    return AnalysisReport(
        root=root,
        files_scanned=len(files),
        rules=[checker.name for checker in checkers],
        findings=new,
        baselined=grandfathered,
        stale_baseline=stale,
    )


def entry_key(entry: dict) -> str:
    return f"{entry.get('rule')}:{entry.get('path')}:{entry.get('anchor')}"
