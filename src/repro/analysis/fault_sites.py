"""Rule ``fault-site-registry``: fault sites stay in sync with the table.

The fault harness (:mod:`repro.testing.faults`) addresses injection points
by *site* strings (``fleet.worker``, ``segment.roll``, …).  Those strings
appear in three places that must agree: the canonical registry
(``KNOWN_SITES`` in ``testing/faults.py``), the production hook calls, and
the textual plans tests/benchmarks arm (``kill@segment.append;after=2``).
A typo in any of them fails *open* — the injector simply never fires, and
a robustness test silently tests nothing — so this rule closes the loop
both ways:

* every site used at a hook call or inside a plan string must appear in
  ``KNOWN_SITES`` (fnmatch patterns must match at least one known site);
* every ``KNOWN_SITES`` entry must be used somewhere in the scanned tree
  (checked only when ``testing/faults.py`` itself is in the scan, so
  narrow fixture runs do not false-fire).

Site usages are extracted from: ``injector.fire(...)`` / ``.check(...)``
first arguments, the ingest helpers' site arguments, ``FaultSpec(kind,
site)`` constructions, and any non-docstring string literal written in the
``kind@site[;...]`` plan grammar (f-strings included — the site precedes
any interpolated field).
"""

from __future__ import annotations

import ast
import re
from fnmatch import fnmatchcase
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    Project,
    docstring_nodes,
    register,
)

__all__ = ["FaultSiteChecker", "known_sites_from_module"]

FAULTS_RELPATH = "src/repro/testing/faults.py"

#: callable name -> index of its site argument.
CALL_SITE_ARGS: Dict[str, int] = {
    "fire": 0,
    "check": 0,
    "_fire": 0,
    "_fault_hook": 0,
    "_execute_feed_fault": 1,
}

#: The plan grammar: ``kind@site`` with kind from faults.KINDS.  The site
#: part may be an fnmatch pattern; it ends at ``;`` (field separator) or
#: ``,`` (spec separator).
_GRAMMAR = re.compile(r"\b(?:crash|kill|hang|io_error|corrupt)@([^;,\s]+)")


def known_sites_from_module(module: ModuleInfo) -> Optional[Tuple[Dict[str, int], int]]:
    """``(site -> line, assignment line)`` of the KNOWN_SITES dict literal."""
    for node in module.tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "KNOWN_SITES":
                value = node.value
                if not isinstance(value, ast.Dict):
                    return None
                sites = {
                    key.value: key.lineno
                    for key in value.keys
                    if isinstance(key, ast.Constant) and isinstance(key.value, str)
                }
                return sites, node.lineno
    return None


def _call_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _string_arg(call: ast.Call, index: int, keyword: Optional[str] = None):
    if len(call.args) > index:
        node = call.args[index]
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value, node.lineno
    if keyword is not None:
        for kw in call.keywords:
            if kw.arg == keyword and isinstance(kw.value, ast.Constant):
                if isinstance(kw.value.value, str):
                    return kw.value.value, kw.value.lineno
    return None


def collect_site_usages(module: ModuleInfo) -> List[Tuple[str, int]]:
    """Every (site-or-pattern, line) referenced by this module."""
    usages: List[Tuple[str, int]] = []
    docstrings = docstring_nodes(module.tree)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name in CALL_SITE_ARGS:
                found = _string_arg(node, CALL_SITE_ARGS[name], keyword="site")
                if found is not None:
                    usages.append(found)
            elif name == "FaultSpec":
                found = _string_arg(node, 1, keyword="site")
                if found is not None:
                    usages.append(found)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            if id(node) in docstrings:
                continue
            for match in _GRAMMAR.finditer(node.value):
                usages.append((match.group(1), node.lineno))
        elif isinstance(node, ast.JoinedStr):
            # f-strings: the site of a plan spec precedes any interpolated
            # field, so scanning the constant pieces is sufficient.
            for piece in node.values:
                if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                    for match in _GRAMMAR.finditer(piece.value):
                        usages.append((match.group(1), piece.lineno))
    return usages


_GLOB_CHARS = set("*?[")


@register
class FaultSiteChecker(Checker):
    name = "fault-site-registry"
    description = (
        "fault-site strings at hooks and in plan specs match "
        "testing/faults.KNOWN_SITES, and every known site is exercised"
    )

    def __init__(self, known_sites: Optional[Sequence[str]] = None) -> None:
        #: Test override: a fixed site set instead of parsing faults.py.
        self._known_override = tuple(known_sites) if known_sites is not None else None

    def finalize(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        registry_line = 1
        if self._known_override is not None:
            known: Dict[str, int] = {site: 1 for site in self._known_override}
        else:
            faults_module = project.module(FAULTS_RELPATH)
            if faults_module is None:
                return ()
            parsed = known_sites_from_module(faults_module)
            if parsed is None:
                return [
                    Finding(
                        rule=self.name,
                        path=FAULTS_RELPATH,
                        line=1,
                        message=(
                            "KNOWN_SITES dict-literal registry not found in "
                            "testing/faults.py — the canonical site table must "
                            "be a structured constant, not docstring prose"
                        ),
                        anchor="missing-registry",
                    )
                ]
            known, registry_line = parsed

        used: Set[str] = set()
        for module in project.modules:
            for site, line in collect_site_usages(module):
                if _GLOB_CHARS & set(site):
                    matched = [name for name in known if fnmatchcase(name, site)]
                    used.update(matched)
                    if not matched:
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=module.relpath,
                                line=line,
                                message=(
                                    f"fault-site pattern {site!r} matches no "
                                    "entry of testing/faults.KNOWN_SITES"
                                ),
                                anchor=f"unknown-site:{site}",
                            )
                        )
                elif site in known:
                    used.add(site)
                else:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=module.relpath,
                            line=line,
                            message=(
                                f"fault site {site!r} is not in "
                                "testing/faults.KNOWN_SITES — a typo here fails "
                                "open (the injector never fires); register the "
                                "site or fix the string"
                            ),
                            anchor=f"unknown-site:{site}",
                        )
                    )
        # The reverse direction only makes sense on a scan that includes the
        # registry's own tree (the tier-1 gate scans src+tests+benchmarks).
        if (
            self._known_override is None
            and any(m.relpath == FAULTS_RELPATH for m in project.modules)
        ):
            for site in sorted(set(known) - used):
                findings.append(
                    Finding(
                        rule=self.name,
                        path=FAULTS_RELPATH,
                        line=known.get(site, registry_line),
                        message=(
                            f"KNOWN_SITES entry {site!r} is never used by any "
                            "hook or plan in the scanned tree — dead registry "
                            "entries hide coverage gaps"
                        ),
                        anchor=f"unused-site:{site}",
                    )
                )
        return findings
