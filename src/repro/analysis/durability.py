"""Rule ``durability-ordering``: persistence goes through ``util/atomic``.

The crash-recovery proofs (PR 7's quarantine-and-rebuild, PR 8's ``kill
-9`` exactly-once matrix) all rest on one discipline: an on-disk artifact
is replaced by writing a temp file in the destination directory, fsyncing
it, ``os.replace``-ing it over the final name, and fsyncing the directory
— exactly what :func:`repro.util.atomic.write_atomic` does.  A bare
``open(path, "w")`` or hand-rolled ``os.replace`` elsewhere is either a
torn-write waiting for a crash window, or a deliberate exception that must
say so where it stands.

Flagged (outside ``src/repro/util/atomic.py``):

* any direct ``os.replace`` / ``os.rename`` call;
* any ``open()`` in a writing mode (``w``/``a``/``x``/``+``) whose target
  is not obviously a temp path (a variable or literal containing
  ``tmp``/``temp`` — the writer-callback convention ``write_atomic``
  hands its callees).

Legitimate exceptions are annotated in place with
``# repro: allow(durability-ordering): <why>`` — e.g. the segment append
log (which *is* the fsync'd durability substrate), torn-tail truncation,
and the fault harness's deliberate byte damage — or grandfathered in the
baseline with a justification (the bulk text exporter in ``mrt.py``).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.core import Checker, Finding, ModuleInfo, dotted_name, register

__all__ = ["DurabilityChecker"]

ATOMIC_RELPATH = "src/repro/util/atomic.py"

_WRITE_MODE_CHARS = set("wax+")


def _open_mode(call: ast.Call) -> Optional[str]:
    """The constant mode string of an ``open()`` call, if determinable."""
    if len(call.args) >= 2:
        mode = call.args[1]
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None
    for keyword in call.keywords:
        if keyword.arg == "mode":
            if isinstance(keyword.value, ast.Constant) and isinstance(
                keyword.value.value, str
            ):
                return keyword.value.value
            return None
    return "r"


def _target_is_temp(call: ast.Call) -> bool:
    """True when the opened path is visibly a temp file (writer-callback
    convention: ``write_atomic`` hands its writer a ``temp_path``)."""
    if not call.args:
        return False
    target = call.args[0]
    if isinstance(target, ast.Name):
        lowered = target.id.lower()
        return "tmp" in lowered or "temp" in lowered
    if isinstance(target, ast.Constant) and isinstance(target.value, str):
        lowered = target.value.lower()
        return "tmp" in lowered or "temp" in lowered
    return False


def _enclosing_function(module: ModuleInfo, line: int) -> str:
    """Best-effort name of the def containing ``line`` (for stable anchors)."""
    best = ""
    best_line = 0
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = getattr(node, "end_lineno", node.lineno)
            if node.lineno <= line <= end and node.lineno > best_line:
                best, best_line = node.name, node.lineno
    return best or "<module>"


@register
class DurabilityChecker(Checker):
    name = "durability-ordering"
    description = (
        "on-disk artifacts are written via util/atomic.write_atomic "
        "(fsync + os.replace ordering); bare writes/renames are flagged"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/") and relpath != ATOMIC_RELPATH

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in ("os.replace", "os.rename"):
                where = _enclosing_function(module, node.lineno)
                findings.append(
                    Finding(
                        rule=self.name,
                        path=module.relpath,
                        line=node.lineno,
                        message=(
                            f"direct {name} call: atomic replacement must go "
                            "through repro.util.atomic.write_atomic so the "
                            "fsync -> replace -> directory-fsync ordering the "
                            "recovery proofs depend on is preserved"
                        ),
                        anchor=f"{where}:{name}",
                    )
                )
            elif name == "open":
                mode = _open_mode(node)
                if mode is None or not (_WRITE_MODE_CHARS & set(mode)):
                    continue
                if _target_is_temp(node):
                    continue
                where = _enclosing_function(module, node.lineno)
                findings.append(
                    Finding(
                        rule=self.name,
                        path=module.relpath,
                        line=node.lineno,
                        message=(
                            f"bare open(..., {mode!r}) persistence: write "
                            "through repro.util.atomic.write_atomic (or annotate "
                            "the deliberate exception in place)"
                        ),
                        anchor=f"{where}:open",
                    )
                )
        return findings
