"""Rule ``async-safety``: nothing blocks the ingest daemon's event loop.

The always-on ingestion daemon (:mod:`repro.ingest.daemon`) is a single
asyncio loop supervising every feed's reader, writer and the watchdog.  A
synchronous sleep, fsync or subprocess call inside an ``async def`` stalls
*all* of them at once — including the watchdog whose whole job is to catch
stalls — so blocking work must go through an executor
(``loop.run_in_executor`` / ``asyncio.to_thread``), an async-aware twin
(e.g. :func:`repro.ingest.daemon._execute_feed_fault`, whose ``hang``
sleeps asynchronously), or an explicitly allow-listed durable-append
helper (suppression comment, with the justification inline).

The check is syntactic and direct-call only: it flags the known blocking
surfaces when called *directly* in an ``async def`` body (nested ``def``
bodies are skipped — a sync helper is fine to define, and call-graph
analysis is out of scope for an AST lint):

* ``time.sleep`` — use ``await asyncio.sleep``;
* ``os.fsync`` / ``os.replace`` / ``os.rename`` — durable writes belong in
  sync helpers driven from the writer task, or an executor;
* ``open(...)`` and ``subprocess.*`` — file and process I/O;
* ``<injector>.fire(...)`` — the fault injector's synchronous executor
  ``time.sleep``\\ s on ``hang`` kinds and must never run on the loop; use
  the async-aware ``_execute_feed_fault`` twin instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List

from repro.analysis.core import Checker, Finding, ModuleInfo, dotted_name, register

__all__ = ["AsyncSafetyChecker"]

#: Exact dotted call names that block.
BLOCKING_DOTTED = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "os.fsync": "run durable writes in an executor or a sync helper task",
    "os.replace": "run durable writes in an executor or a sync helper task",
    "os.rename": "run durable writes in an executor or a sync helper task",
    "os.system": "use an asyncio subprocess API",
}

#: Module roots any attribute of which blocks.
BLOCKING_ROOTS = {
    "subprocess": "use `asyncio.create_subprocess_exec` or an executor",
    "requests": "use an async HTTP client or an executor",
}

#: Bare builtins that block.
BLOCKING_NAMES = {
    "open": "do file I/O in a sync helper driven off the loop, or an executor",
    "input": "never read stdin on the event loop",
}

#: Method names that block regardless of receiver.  ``fire`` is the fault
#: injector's synchronous executor: its ``hang`` kind sleeps for
#: ``hang_seconds`` — on the event loop that would also freeze the watchdog
#: meant to catch the hang.
BLOCKING_METHODS = {
    "fire": "use the async-aware fault twin (`_execute_feed_fault`) instead",
}


def _async_body_calls(function: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Call nodes executed directly by the coroutine (nested defs skipped)."""
    stack: List[ast.AST] = list(function.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class AsyncSafetyChecker(Checker):
    name = "async-safety"
    description = (
        "no direct blocking calls (time.sleep, fsync/replace, open, "
        "subprocess, injector.fire) inside async def bodies"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in _async_body_calls(node):
                verdict = self._blocking(call)
                if verdict is None:
                    continue
                what, remedy = verdict
                findings.append(
                    Finding(
                        rule=self.name,
                        path=module.relpath,
                        line=call.lineno,
                        message=(
                            f"blocking call {what} inside `async def "
                            f"{node.name}` would stall the event loop "
                            f"(and the watchdog); {remedy}"
                        ),
                        anchor=f"{node.name}:{what}",
                    )
                )
        return findings

    def _blocking(self, call: ast.Call):
        name = dotted_name(call.func)
        if name is not None:
            if name in BLOCKING_DOTTED:
                return name, BLOCKING_DOTTED[name]
            root = name.split(".", 1)[0]
            if root in BLOCKING_ROOTS and "." in name:
                return name, BLOCKING_ROOTS[root]
            if name in BLOCKING_NAMES:
                return name, BLOCKING_NAMES[name]
        if isinstance(call.func, ast.Attribute) and call.func.attr in BLOCKING_METHODS:
            receiver = dotted_name(call.func.value)
            label = f"{receiver}.{call.func.attr}" if receiver else f".{call.func.attr}"
            return label, BLOCKING_METHODS[call.func.attr]
        return None
