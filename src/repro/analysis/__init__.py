"""Contract-enforcing static analysis for the repro tree.

``python -m repro.analysis`` (see :mod:`repro.analysis.cli`) and the
tier-1 gate ``tests/test_static_analysis.py`` both drive
:func:`repro.analysis.core.run_analysis` over the registered rules:

========================  ====================================================
rule                      contract it machine-checks
========================  ====================================================
``kernel-purity``         kernels never import interning tables or mutate
                          column views; stdlib backend never imports numpy;
                          numpy imports guarded everywhere
``parity-pair``           reference/optimized twins keep compatible public
                          surfaces and signatures (incl. both kernels'
                          ``__all__``)
``async-safety``          no direct blocking calls inside ``async def``
                          bodies (daemon event loop + watchdog liveness)
``durability-ordering``   persistence goes through ``util/atomic``'s
                          fsync → replace → dir-fsync discipline
``fault-site-registry``   fault-site strings ↔ ``testing/faults.KNOWN_SITES``
                          in both directions
``bench-schema``          ``BENCH_*.json`` writers stamp artifacts with
                          ``benchmarks/conftest.bench_env()``
========================  ====================================================

Escape hatches: ``# repro: allow(<rule>)`` suppression comments and the
committed ``baseline.json`` of grandfathered findings — see ``README.md``
in this package.
"""

from repro.analysis.core import (
    AnalysisError,
    AnalysisReport,
    Checker,
    Finding,
    ModuleInfo,
    Project,
    REGISTRY,
    default_checkers,
    load_module,
    run_analysis,
)
from repro.analysis.baseline import DEFAULT_BASELINE_PATH, load_baseline

# Importing the checker modules populates REGISTRY via @register.
from repro.analysis import (  # noqa: F401  (imported for registration)
    async_safety,
    bench_schema,
    durability,
    fault_sites,
    kernel_purity,
    parity,
)

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "Checker",
    "DEFAULT_BASELINE_PATH",
    "Finding",
    "ModuleInfo",
    "Project",
    "REGISTRY",
    "default_checkers",
    "load_baseline",
    "load_module",
    "run_analysis",
]
