"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Exit status is 0 when the scanned tree is clean (after suppressions and
the committed baseline) and 1 when any finding remains — so the command
drops straight into CI. ``--json`` emits the full machine-readable report
(the same shape the tier-1 gate and ``BENCH_analysis.json`` consume).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.core import REGISTRY, AnalysisError, run_analysis


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Contract-enforcing static analysis for the repro tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: src, tests, benchmarks)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as JSON on stdout",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable); default: all registered rules",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file of grandfathered findings "
        "(default: src/repro/analysis/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report grandfathered findings too",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help="repository root for relative paths (default: auto-detected)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(REGISTRY):
            print(f"{name}: {REGISTRY[name]().description}")
        return 0

    if args.rules:
        unknown = sorted(set(args.rules) - set(REGISTRY))
        if unknown:
            parser.error(
                f"unknown rule(s): {', '.join(unknown)} "
                f"(registered: {', '.join(sorted(REGISTRY))})"
            )

    try:
        report = run_analysis(
            paths=args.paths or ["src", "tests", "benchmarks"],
            rules=args.rules,
            root=args.root,
            baseline_path=args.baseline,
            use_baseline=not args.no_baseline,
        )
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        _print_human(report)
    return 0 if report.ok else 1


def _print_human(report) -> None:
    for finding in report.findings:
        print(finding.format())
    for key in report.stale_baseline:
        print(f"stale baseline entry (no longer fires, remove it): {key}")
    summary: List[str] = [
        f"{report.files_scanned} files",
        f"{len(report.rules)} rules",
        f"{len(report.findings)} finding(s)",
    ]
    if report.baselined:
        summary.append(f"{len(report.baselined)} baselined")
    print(("OK: " if report.ok else "FAIL: ") + ", ".join(summary))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
