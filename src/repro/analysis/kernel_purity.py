"""Rule ``kernel-purity``: the kernel-layer contract, machine-checked.

The contract (``src/repro/core/README.md``, shipped with PR 6):

* kernels read immutable column views and return plain row indices/counts —
  they never mutate a column argument;
* no interning table (or any message/attribute object machinery) is ever
  touched inside a kernel: materialising interned objects is the caller's
  job, so nothing under :mod:`repro.traces` / :mod:`repro.bgp` may be
  imported by a kernels module;
* ``kernels/stdlib.py`` is the always-importable parity reference — it must
  never import numpy, directly or via the numpy backend module;
* numpy stays strictly optional everywhere: any module-level
  ``import numpy`` outside a try/except-ImportError guard (or a function
  body) would make the whole tree numpy-dependent.

The mutation check is name-based: only arguments named like the run-column
contract's columns (``times``, ``kinds``, ``wd_end``, …) are tracked, so a
kernel's legitimately-mutable state (the detector's ``window`` deque, the
opaque seen-row ``mask``) stays out of scope by construction.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from repro.analysis.core import Checker, Finding, ModuleInfo, iter_with_parents, register

__all__ = ["KernelPurityChecker"]

KERNELS_PREFIX = "src/repro/core/kernels/"
STDLIB_RELPATH = KERNELS_PREFIX + "stdlib.py"
NUMPY_RELPATH = KERNELS_PREFIX + "numpy.py"

#: Column-view parameter names of the run-column contract
#: (``src/repro/traces/README.md``).  Mutating any of these inside a kernel
#: breaks the "inputs are immutable views" clause.
COLUMN_PARAMS = frozenset(
    {
        "times",
        "kinds",
        "wd_end",
        "ann_end",
        "wd_prefix",
        "ann_prefix",
        "cumulative",
        "peers",
    }
)

#: Method calls that mutate their receiver.
MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "clear",
        "extend",
        "extendleft",
        "fill",
        "frombytes",
        "fromlist",
        "insert",
        "itemset",
        "pop",
        "popleft",
        "put",
        "remove",
        "resize",
        "reverse",
        "sort",
    }
)

#: Import prefixes that carry interning tables / message objects — the
#: machinery the kernel contract keeps on the caller's side of the seam.
FORBIDDEN_PREFIXES = ("repro.traces", "repro.bgp")


def _imported_names(node: ast.AST) -> List[str]:
    """Fully-qualified module names an Import/ImportFrom statement touches."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        base = node.module or ""
        names = [base] if base else []
        names.extend(
            f"{base}.{alias.name}" if base else alias.name for alias in node.names
        )
        return names
    return []


def _is_guarded(parents: Tuple[ast.AST, ...]) -> bool:
    """True when an import sits under a try/except-ImportError or a def."""
    for parent in parents:
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return True
        if isinstance(parent, ast.Try):
            for handler in parent.handlers:
                if handler.type is None:
                    return True
                candidates = (
                    handler.type.elts
                    if isinstance(handler.type, ast.Tuple)
                    else [handler.type]
                )
                for candidate in candidates:
                    name = getattr(candidate, "id", getattr(candidate, "attr", ""))
                    if name in ("ImportError", "ModuleNotFoundError", "Exception"):
                        return True
    return False


@register
class KernelPurityChecker(Checker):
    name = "kernel-purity"
    description = (
        "kernels stay pure: no interning-table imports or column mutation in "
        "core/kernels/, no numpy in stdlib.py, numpy guarded everywhere else"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        in_kernels = module.relpath.startswith(KERNELS_PREFIX)
        is_stdlib = module.relpath == STDLIB_RELPATH

        for node, parents in iter_with_parents(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for name in _imported_names(node):
                    is_numpy = name == "numpy" or name.startswith("numpy.")
                    # "from repro.core.kernels import numpy" drags the numpy
                    # backend (hence numpy itself) into the reference.
                    is_numpy_backend = name == "repro.core.kernels.numpy"
                    if is_stdlib and (is_numpy or is_numpy_backend):
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=module.relpath,
                                line=node.lineno,
                                message=(
                                    "the stdlib kernel backend is the always-"
                                    f"importable parity reference; it must not "
                                    f"import {name!r}"
                                ),
                                anchor=f"stdlib-numpy:{name}",
                            )
                        )
                        continue
                    if is_numpy and not _is_guarded(parents):
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=module.relpath,
                                line=node.lineno,
                                message=(
                                    "numpy is an optional dependency: guard the "
                                    "import with try/except ImportError (or move "
                                    "it inside a function)"
                                ),
                                anchor=f"unguarded-numpy:{name}",
                            )
                        )
                    if in_kernels and any(
                        name == prefix or name.startswith(prefix + ".")
                        for prefix in FORBIDDEN_PREFIXES
                    ):
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=module.relpath,
                                line=node.lineno,
                                message=(
                                    f"kernels must not import {name!r}: interning "
                                    "tables and message objects stay on the "
                                    "caller's side of the kernel seam"
                                ),
                                anchor=f"kernel-import:{name}",
                            )
                        )
            elif in_kernels and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                findings.extend(self._column_mutations(module, node))
        return findings

    def _column_mutations(
        self, module: ModuleInfo, function: ast.AST
    ) -> Iterable[Finding]:
        args = function.args
        tracked = {
            arg.arg
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
            if arg.arg in COLUMN_PARAMS
        }
        if not tracked:
            return ()
        findings: List[Finding] = []

        def flag(node: ast.AST, name: str, what: str) -> None:
            findings.append(
                Finding(
                    rule=self.name,
                    path=module.relpath,
                    line=node.lineno,
                    message=(
                        f"kernel {function.name!r} mutates column-view argument "
                        f"{name!r} ({what}); kernel inputs are immutable views"
                    ),
                    anchor=f"mutation:{function.name}:{name}",
                )
            )

        for node in ast.walk(function):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in tracked
                    ):
                        flag(node, target.value.id, "item assignment")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in tracked
                    ):
                        flag(node, target.value.id, "item deletion")
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATORS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in tracked
                ):
                    flag(node, func.value.id, f".{func.attr}() call")
        return findings
