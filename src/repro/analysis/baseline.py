"""The committed baseline of grandfathered findings.

``baseline.json`` (next to this module) is a JSON list of entries::

    {"rule": "durability-ordering",
     "path": "src/repro/traces/mrt.py",
     "anchor": "TraceWriter.__init__:open",
     "justification": "one line on why this finding is deliberate"}

An entry matches a finding by ``(rule, path, anchor)`` — anchors are
symbol/site names, not line numbers, so entries survive unrelated edits.
Every entry must carry a non-empty ``justification``; the gate treats a
justification-less entry as malformed rather than silently honouring it.
Entries that stop matching anything show up as ``stale_baseline`` in the
report (and in the CLI summary) so dead grandfathering gets cleaned out.

To grandfather a new deliberate exception: run
``python -m repro.analysis --json`` to get the finding's ``key``
(``rule:path:anchor``), add the entry here with a justification, and keep
the diff reviewer-visible — the baseline is part of the contract surface.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.analysis.core import AnalysisError, Finding, entry_key

__all__ = ["DEFAULT_BASELINE_PATH", "Baseline", "load_baseline"]

DEFAULT_BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baseline.json")


@dataclass
class Baseline:
    """Parsed baseline entries plus the key set findings are matched on."""

    entries: List[dict] = field(default_factory=list)
    keys: Set[str] = field(default_factory=set)

    def matches(self, finding: Finding) -> bool:
        return finding.key in self.keys


def load_baseline(path: Optional[str] = None) -> Baseline:
    """Load the baseline at ``path`` (default: the committed one).

    A missing file is an empty baseline; a malformed one (non-list
    document, entries without rule/path/anchor/justification) raises
    :class:`~repro.analysis.core.AnalysisError` — a broken baseline must
    fail the gate loudly, not silently grandfather nothing.
    """
    if path is None:
        path = DEFAULT_BASELINE_PATH
    if not os.path.isfile(path):
        return Baseline()
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except ValueError as error:
            raise AnalysisError(f"{path}: malformed baseline ({error})") from error
    if not isinstance(document, list):
        raise AnalysisError(f"{path}: baseline must be a JSON list of entries")
    baseline = Baseline()
    for index, entry in enumerate(document):
        if not isinstance(entry, dict):
            raise AnalysisError(f"{path}: entry {index} is not an object")
        for required in ("rule", "path", "anchor", "justification"):
            if not str(entry.get(required, "")).strip():
                raise AnalysisError(
                    f"{path}: entry {index} is missing a non-empty {required!r}"
                )
        baseline.entries.append(entry)
        baseline.keys.add(entry_key(entry))
    return baseline
