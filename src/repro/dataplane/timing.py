"""Data-plane update timing model.

The paper's speed argument rests on published measurements of per-prefix FIB
update times: "Previous studies [24, 64] report median update time per-prefix
between 128 and 282 µs.  Hence, current routers would take between 2.7 and
5.9 seconds to reroute 21k prefixes ... and more than 1 minute for the full
Internet table" (§3.2), and on the observation that a SWIFTED router needs
only a few wildcard-rule updates, completing "within 130 ms" in the median
case (§6.5).

:class:`FibUpdateTimingModel` turns entry counts into wall-clock durations
for both operations so the convergence experiments (Table 1, Fig. 8, Fig. 9)
can be reproduced with a discrete-time model.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FibUpdateTimingModel"]


@dataclass(frozen=True)
class FibUpdateTimingModel:
    """Latencies of data-plane updates.

    Attributes
    ----------
    per_prefix_seconds:
        Time to install/remove one per-prefix FIB entry.  Defaults to 205 µs,
        the midpoint of the 128–282 µs range cited by the paper.
    per_rule_seconds:
        Time to install one wildcard rule in the second stage (TCAM / OpenFlow
        flow-mod); defaults to 2 ms, consistent with the "few data-plane rule
        updates ... within 130 ms" for the 64-rule median case of §6.5.
    control_plane_overhead_seconds:
        Fixed overhead per reroute activation (inference hand-off, rule
        computation, controller round trip in the §7 deployment).
    per_prefix_processing_seconds:
        Control-plane cost of processing one BGP withdrawal/update message
        (parsing, best-path re-selection).  Together with
        ``per_prefix_seconds`` this reproduces the roughly-linear downtime
        growth of Table 1 (~109 s for 290k prefixes, i.e. ~375 µs per prefix
        end to end).
    """

    per_prefix_seconds: float = 205e-6
    per_rule_seconds: float = 2e-3
    control_plane_overhead_seconds: float = 50e-3
    per_prefix_processing_seconds: float = 170e-6

    def __post_init__(self) -> None:
        if self.per_prefix_seconds <= 0:
            raise ValueError("per_prefix_seconds must be positive")
        if self.per_rule_seconds <= 0:
            raise ValueError("per_rule_seconds must be positive")
        if self.control_plane_overhead_seconds < 0:
            raise ValueError("control_plane_overhead_seconds must be non-negative")
        if self.per_prefix_processing_seconds < 0:
            raise ValueError("per_prefix_processing_seconds must be non-negative")

    # -- per-prefix path -----------------------------------------------------

    def per_prefix_update_time(self, prefix_count: int) -> float:
        """FIB-install time for ``prefix_count`` per-prefix updates."""
        if prefix_count < 0:
            raise ValueError("prefix_count must be non-negative")
        return prefix_count * self.per_prefix_seconds

    def per_prefix_convergence_time(self, prefix_count: int) -> float:
        """End-to-end time to process and install ``prefix_count`` prefixes.

        Covers BGP message processing plus FIB installation; this is the
        quantity Table 1 measures on a vanilla router.
        """
        if prefix_count < 0:
            raise ValueError("prefix_count must be non-negative")
        return prefix_count * (
            self.per_prefix_seconds + self.per_prefix_processing_seconds
        )

    # -- SWIFT path ------------------------------------------------------------

    def rule_update_time(self, rule_count: int) -> float:
        """Time to install ``rule_count`` wildcard rules (plus fixed overhead)."""
        if rule_count < 0:
            raise ValueError("rule_count must be non-negative")
        if rule_count == 0:
            return 0.0
        return self.control_plane_overhead_seconds + rule_count * self.per_rule_seconds

    @classmethod
    def fast_router(cls) -> "FibUpdateTimingModel":
        """A model using the optimistic end of the cited range (128 µs/prefix)."""
        return cls(per_prefix_seconds=128e-6, per_prefix_processing_seconds=130e-6)

    @classmethod
    def slow_router(cls) -> "FibUpdateTimingModel":
        """A model using the pessimistic end of the cited range (282 µs/prefix)."""
        return cls(per_prefix_seconds=282e-6, per_prefix_processing_seconds=200e-6)
