"""Packets traversing the modelled data plane."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bgp.prefix import Prefix

__all__ = ["Packet"]


@dataclass
class Packet:
    """A data-plane packet.

    Only the fields the SWIFT pipeline touches are modelled: the destination
    address (used by the per-prefix first stage), the tag stamped by the
    first stage (carried in the destination MAC in the paper's deployment)
    and bookkeeping about where the packet ended up.
    """

    destination: int
    tag: Optional[int] = None
    egress_next_hop: Optional[int] = None
    timestamp: float = 0.0

    @classmethod
    def to_prefix(cls, prefix: Prefix, timestamp: float = 0.0) -> "Packet":
        """Build a probe packet addressed to the first address of ``prefix``."""
        return cls(destination=prefix.network, timestamp=timestamp)

    @property
    def delivered(self) -> bool:
        """True once the packet has been assigned an egress next-hop."""
        return self.egress_next_hop is not None
