"""Data-plane substrate: packets, two-stage forwarding table, update timing.

SWIFT's second ingredient is a data-plane design: a *two-stage* forwarding
table whose first stage tags packets by destination prefix and whose second
stage forwards on (portions of) the tag, so that one wildcard rule reroutes
arbitrarily many prefixes (§3.2, §5).  This package models that pipeline at
the granularity the evaluation needs:

* :mod:`repro.dataplane.packet` — packets with a destination address and the
  tag stamped by stage 1,
* :mod:`repro.dataplane.fib` — the classic per-prefix FIB (used by the
  vanilla router model) and the two-stage table (used by SWIFTED routers),
* :mod:`repro.dataplane.timing` — per-prefix and per-rule update latencies
  taken from the measurements the paper cites (128–282 µs per prefix).
"""

from repro.dataplane.fib import (
    ForwardingDecision,
    PerPrefixFib,
    TwoStageForwardingTable,
)
from repro.dataplane.packet import Packet
from repro.dataplane.timing import FibUpdateTimingModel

__all__ = [
    "FibUpdateTimingModel",
    "ForwardingDecision",
    "Packet",
    "PerPrefixFib",
    "TwoStageForwardingTable",
]
