"""Forwarding tables: classic per-prefix FIB and the SWIFT two-stage table.

The vanilla router of §2.1.2 forwards with a longest-prefix-match FIB whose
entries are installed one prefix at a time (hence the tens of seconds of
downtime for large bursts).  A SWIFTED router keeps that first stage for
tagging and adds a second stage matching on the tag; rerouting a whole burst
is then a handful of high-priority wildcard rule insertions (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bgp.prefix import Prefix
from repro.bgp.trie import PrefixTrie
from repro.core.encoding import WildcardRule
from repro.dataplane.packet import Packet

__all__ = ["ForwardingDecision", "PerPrefixFib", "TwoStageForwardingTable"]


@dataclass(frozen=True)
class ForwardingDecision:
    """Outcome of forwarding one packet."""

    next_hop: Optional[int]
    matched_prefix: Optional[Prefix] = None
    matched_rule: Optional[WildcardRule] = None
    tag: Optional[int] = None

    @property
    def dropped(self) -> bool:
        """True when no entry matched (blackhole)."""
        return self.next_hop is None


class PerPrefixFib:
    """A longest-prefix-match forwarding table with per-prefix next-hops."""

    def __init__(self) -> None:
        self._trie: PrefixTrie[int] = PrefixTrie()
        self.updates_applied = 0

    def install(self, prefix: Prefix, next_hop: int) -> None:
        """Install (or replace) the next-hop of ``prefix``."""
        self._trie.insert(prefix, next_hop)
        self.updates_applied += 1

    def install_table(self, routes: Dict[Prefix, int]) -> None:
        """Bulk-install a full table of ``prefix -> next_hop`` entries.

        On an empty FIB this bulk-loads the compressed trie in one sorted
        pass (the initial full-table provisioning path); otherwise it falls
        back to per-entry inserts.
        """
        if not self._trie:
            self._trie.build_from_sorted(sorted(routes.items()))
        else:
            for prefix, next_hop in routes.items():
                self._trie.insert(prefix, next_hop)
        self.updates_applied += len(routes)

    def withdraw(self, prefix: Prefix) -> bool:
        """Remove the entry for ``prefix``; returns False when absent."""
        try:
            self._trie.remove(prefix)
        except KeyError:
            return False
        self.updates_applied += 1
        return True

    def next_hop_of(self, destination: int) -> Optional[int]:
        """Longest-prefix-match lookup of a destination address."""
        match = self._trie.lookup(destination)
        return match[1] if match is not None else None

    def forward(self, packet: Packet) -> ForwardingDecision:
        """Forward one packet."""
        match = self._trie.lookup(packet.destination)
        if match is None:
            return ForwardingDecision(next_hop=None)
        prefix, next_hop = match
        packet.egress_next_hop = next_hop
        return ForwardingDecision(next_hop=next_hop, matched_prefix=prefix)

    def __len__(self) -> int:
        return len(self._trie)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._trie

    def entries(self) -> Iterable[Tuple[Prefix, int]]:
        """Iterate over ``(prefix, next_hop)`` pairs."""
        return self._trie.items()


class TwoStageForwardingTable:
    """The SWIFT two-stage table.

    Stage 1 maps a destination prefix to a tag (and is *not* touched when
    SWIFT reroutes).  Stage 2 holds forwarding rules matched against the tag:
    low-priority default rules forward on the primary next-hop encoded in the
    tag, and SWIFT inserts high-priority wildcard rules to reroute affected
    traffic.  Priorities are integers, higher wins; insertion order breaks
    ties (newest first), matching how a router's TCAM would be programmed.
    """

    def __init__(self) -> None:
        self._stage1: PrefixTrie[int] = PrefixTrie()
        self._rules: List[Tuple[int, int, WildcardRule]] = []  # (priority, seq, rule)
        self._sequence = 0
        self.stage1_updates = 0
        self.stage2_updates = 0

    # -- stage 1 -----------------------------------------------------------

    def set_tag(self, prefix: Prefix, tag: int) -> None:
        """Associate ``tag`` with ``prefix`` in the tagging stage."""
        self._stage1.insert(prefix, tag)
        self.stage1_updates += 1

    def clear_tag(self, prefix: Prefix) -> bool:
        """Remove the tag of ``prefix``; returns False when absent."""
        try:
            self._stage1.remove(prefix)
        except KeyError:
            return False
        self.stage1_updates += 1
        return True

    def load_tags(self, tags: Dict[Prefix, int]) -> None:
        """Bulk-load stage 1 (initial provisioning, not a reroute operation)."""
        if not self._stage1:
            self._stage1.build_from_sorted(sorted(tags.items()))
        else:
            for prefix, tag in tags.items():
                self._stage1.insert(prefix, tag)
        self.stage1_updates += len(tags)

    def update_tags(self, patch: Dict[Prefix, Optional[int]]) -> None:
        """Patch stage 1 in place: set or (``None``) remove individual tags.

        The incremental re-provisioning path uses this instead of reloading
        every tag, so a warm provision's forwarding update is proportional
        to the number of changed prefixes.
        """
        for prefix, tag in patch.items():
            if tag is None:
                try:
                    self._stage1.remove(prefix)
                except KeyError:
                    pass
            else:
                self._stage1.insert(prefix, tag)
        self.stage1_updates += len(patch)

    def tag_of(self, destination: int) -> Optional[int]:
        """Tag that stage 1 would stamp on a packet for ``destination``."""
        match = self._stage1.lookup(destination)
        return match[1] if match is not None else None

    @property
    def tagged_prefix_count(self) -> int:
        """Number of prefixes with a stage-1 entry."""
        return len(self._stage1)

    # -- stage 2 -----------------------------------------------------------

    def install_rule(self, rule: WildcardRule, priority: int = 0) -> None:
        """Install a stage-2 rule at the given priority."""
        self._sequence += 1
        self._rules.append((priority, self._sequence, rule))
        # Highest priority first; among equals the most recent first.
        self._rules.sort(key=lambda item: (-item[0], -item[1]))
        self.stage2_updates += 1

    def install_rules(self, rules: Sequence[WildcardRule], priority: int = 0) -> int:
        """Install several rules; returns how many were installed."""
        for rule in rules:
            self.install_rule(rule, priority)
        return len(rules)

    def remove_rules(self, predicate) -> int:
        """Remove every rule for which ``predicate(rule)`` is true."""
        before = len(self._rules)
        kept = [item for item in self._rules if not predicate(item[2])]
        removed = before - len(kept)
        self._rules = kept
        self.stage2_updates += removed
        return removed

    def clear_rules(self, min_priority: Optional[int] = None) -> int:
        """Remove all rules (or only those at or above ``min_priority``)."""
        if min_priority is None:
            removed = len(self._rules)
            self._rules = []
        else:
            before = len(self._rules)
            self._rules = [item for item in self._rules if item[0] < min_priority]
            removed = before - len(self._rules)
        self.stage2_updates += removed
        return removed

    @property
    def rule_count(self) -> int:
        """Number of stage-2 rules currently installed."""
        return len(self._rules)

    def rules(self) -> List[WildcardRule]:
        """The stage-2 rules in matching order (highest priority first)."""
        return [rule for _, _, rule in self._rules]

    # -- forwarding ----------------------------------------------------------

    def forward(self, packet: Packet) -> ForwardingDecision:
        """Run a packet through both stages."""
        tag = self.tag_of(packet.destination)
        if tag is None:
            return ForwardingDecision(next_hop=None)
        packet.tag = tag
        for _, _, rule in self._rules:
            if rule.matches(tag):
                packet.egress_next_hop = rule.next_hop
                return ForwardingDecision(
                    next_hop=rule.next_hop, matched_rule=rule, tag=tag
                )
        return ForwardingDecision(next_hop=None, tag=tag)

    def forward_address(self, destination: int) -> Optional[int]:
        """Convenience wrapper: next-hop for a bare destination address."""
        return self.forward(Packet(destination=destination)).next_hop
