"""Shared plumbing for the experiment harnesses.

The real-trace experiments (Fig. 6, Table 2, Fig. 7, Fig. 8) all follow the
same recipe: take a burst and the pre-burst RIB of its session, run the SWIFT
inference engine over the burst's message stream, and score the accepted
inference against what the full burst eventually withdrew.  This module
factors that recipe out, plus the construction of a reusable burst corpus
from the synthetic trace generator.
"""

from __future__ import annotations

import inspect
from array import array
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.messages import BGPMessage, Update
from repro.bgp.prefix import Prefix
from repro.core.history import HistoryModel
from repro.core.inference import InferenceConfig, InferenceEngine, InferenceResult
from repro.metrics.classification import (
    ClassificationCounts,
    classify_inference,
    classify_prediction,
)
from repro.traces.columnar import (
    COLUMNAR_FORMAT_VERSION,
    ColumnarTrace,
    InternPool,
    decode_rib,
    encode_rib,
)
from repro.traces.synthetic import (
    SyntheticBurst,
    SyntheticTrace,
    SyntheticTraceConfig,
    SyntheticTraceGenerator,
)

__all__ = [
    "BurstEvaluation",
    "CorpusBurst",
    "burst_corpus",
    "cached_corpus",
    "evaluate_burst",
]


@dataclass(frozen=True)
class CorpusBurst:
    """One burst of the evaluation corpus, with its session RIB."""

    peer_as: int
    messages: Tuple[BGPMessage, ...]
    rib: Mapping[Prefix, ASPath]
    withdrawn_prefixes: FrozenSet[Prefix]
    failed_link: Optional[Tuple[int, int]] = None

    @property
    def size(self) -> int:
        """Burst size in withdrawals.

        Columnar-cached corpora answer from the withdrawal bounds without
        materialising messages.
        """
        counter = getattr(self.messages, "withdrawal_count", None)
        if counter is not None:
            return counter()
        return sum(
            len(m.withdrawals) for m in self.messages if isinstance(m, Update)
        )

    @property
    def start_time(self) -> float:
        """Timestamp of the first burst message."""
        if not len(self.messages):
            return 0.0
        first = getattr(self.messages, "first_timestamp", None)
        return first if first is not None else self.messages[0].timestamp


@dataclass
class BurstEvaluation:
    """The outcome of running SWIFT over one burst."""

    burst: CorpusBurst
    inference: Optional[InferenceResult]
    localisation: Optional[ClassificationCounts]
    prediction: Optional[ClassificationCounts]

    @property
    def made_prediction(self) -> bool:
        """Whether SWIFT accepted an inference for this burst."""
        return self.inference is not None

    @property
    def tpr(self) -> float:
        """Localisation TPR (0 when no inference was made)."""
        return self.localisation.tpr if self.localisation else 0.0

    @property
    def fpr(self) -> float:
        """Localisation FPR (0 when no inference was made)."""
        return self.localisation.fpr if self.localisation else 0.0

    @property
    def cpr(self) -> float:
        """Correctly Predicted Rate of future withdrawals."""
        return self.prediction.tpr if self.prediction else 0.0


def burst_corpus(
    peer_count: int = 12,
    duration_days: float = 30.0,
    min_table_size: int = 5000,
    max_table_size: int = 40000,
    min_burst_size: int = 2500,
    seed: int = 7,
    noise_rate_per_second: float = 0.0,
) -> List[CorpusBurst]:
    """Generate a corpus of bursts (with RIBs) for the §6 experiments.

    The defaults are a scaled-down version of the paper's dataset (1,802
    bursts above 1,500 withdrawals from 213 sessions): fewer sessions and
    smaller tables, same structural properties.  Background noise is disabled
    by default because the corpus carries each burst's messages individually.
    """
    config = SyntheticTraceConfig(
        peer_count=peer_count,
        duration_days=duration_days,
        min_table_size=min_table_size,
        max_table_size=max_table_size,
        noise_rate_per_second=noise_rate_per_second,
        seed=seed,
    )
    trace = SyntheticTraceGenerator(config).generate()
    corpus: List[CorpusBurst] = []
    for burst in trace.bursts:
        if burst.size < min_burst_size:
            continue
        rib = trace.rib_of(burst.peer.peer_as)
        corpus.append(
            CorpusBurst(
                peer_as=burst.peer.peer_as,
                messages=tuple(burst.messages),
                rib=rib,
                withdrawn_prefixes=burst.withdrawn_prefixes | burst.noise_prefixes,
                failed_link=burst.failed_link,
            )
        )
    return corpus


def _encode_corpus(corpus: Sequence[CorpusBurst]) -> dict:
    """Encode a burst corpus as a columnar payload (see :func:`cached_corpus`)."""
    pool = InternPool()
    intern_prefix = pool.intern_prefix
    columns = ColumnarTrace(pool=pool)
    ribs: Dict[int, Tuple] = {}
    rows = []
    for burst in corpus:
        if burst.peer_as not in ribs:
            ribs[burst.peer_as] = encode_rib(burst.rib, pool)
        start = columns.message_count
        columns.extend(burst.messages)
        rows.append(
            (
                burst.peer_as,
                start,
                columns.message_count,
                array("I", map(intern_prefix, burst.withdrawn_prefixes)),
                burst.failed_link,
            )
        )
    return {"pool": pool, "columns": columns, "ribs": ribs, "bursts": rows}


def _decode_corpus(payload: dict) -> List[CorpusBurst]:
    """Rebuild a corpus from columns: lazy message views, shared RIB dicts.

    Bursts of the same session share one decoded RIB dict *by identity*,
    which downstream per-RIB caches (e.g. the rerouting-speed encoder
    memo) rely on.
    """
    pool: InternPool = payload["pool"]
    columns: ColumnarTrace = payload["columns"]
    prefix_at = pool.prefix_at
    rib_of = {
        peer_as: decode_rib(prefix_column, path_column, pool)
        for peer_as, (prefix_column, path_column) in payload["ribs"].items()
    }
    return [
        CorpusBurst(
            peer_as=peer_as,
            messages=columns.view(range(start, stop)),
            rib=rib_of[peer_as],
            withdrawn_prefixes=frozenset(map(prefix_at, withdrawn)),
            failed_link=failed_link,
        )
        for peer_as, start, stop, withdrawn, failed_link in payload["bursts"]
    ]


def cached_corpus(**kwargs) -> List[CorpusBurst]:
    """Memoised :func:`burst_corpus`: generated once, reloaded from disk after.

    Accepts the same keyword arguments; the cache key is the *fully bound*
    parameter fingerprint — defaults included, so changing a default misses
    cleanly — plus the trace-cache and columnar format versions.  The
    persisted form is a columnar payload: reloads restore arrays and hand
    out lazy message views instead of unpickling the burst object graph.
    Used by the benchmark fixtures, where regenerating the corpus dominated
    session start-up time.
    """
    from repro.traces.trace_cache import fingerprint, load_or_build

    bound = inspect.signature(burst_corpus).bind(**kwargs)
    bound.apply_defaults()
    spec = fingerprint(dict(bound.arguments))
    return load_or_build(
        "corpus",
        spec,
        lambda: burst_corpus(**kwargs),
        format_version=COLUMNAR_FORMAT_VERSION,
        encode=_encode_corpus,
        decode=_decode_corpus,
    )


def evaluate_burst(
    burst: CorpusBurst,
    config: Optional[InferenceConfig] = None,
    history: Optional[HistoryModel] = None,
) -> BurstEvaluation:
    """Run the inference engine over one burst and score the result."""
    engine = InferenceEngine(burst.rib, config=config, history=history)
    engine.process_batch(burst.messages)
    result = engine.accepted_inference
    if result is None:
        return BurstEvaluation(
            burst=burst, inference=None, localisation=None, prediction=None
        )
    session_prefixes = list(burst.rib.keys())
    localisation = classify_inference(
        predicted=result.prediction.predicted_prefixes,
        withdrawn_in_burst=burst.withdrawn_prefixes,
        session_prefixes=session_prefixes,
    )
    prediction = classify_prediction(
        predicted=result.prediction.predicted_prefixes,
        withdrawn_before_inference=result.prediction.already_withdrawn,
        withdrawn_in_burst=burst.withdrawn_prefixes,
        session_prefixes=session_prefixes,
    )
    return BurstEvaluation(
        burst=burst,
        inference=result,
        localisation=localisation,
        prediction=prediction,
    )
