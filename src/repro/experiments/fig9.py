"""Fig. 9(a) / §7 — case study: SWIFTing a router cuts convergence by ~98%.

The paper reproduces Fig. 1 with a Cisco Nexus 7k announcing 290k prefixes,
fails link (5, 6) and measures packet loss over time twice: with the vanilla
router (109 s to converge) and with the SWIFTED deployment of §7 (controller
+ OpenFlow switch), which converges within 2 s — a 98% speed-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.casestudy.controller import SwiftedDeployment
from repro.casestudy.testbed import Fig1Scenario, build_fig1_scenario
from repro.casestudy.vanilla import VanillaRouterModel
from repro.core.swifted_router import SwiftConfig
from repro.core.encoding import EncoderConfig
from repro.dataplane.timing import FibUpdateTimingModel
from repro.metrics.convergence import downtime_series
from repro.metrics.tables import format_table

__all__ = ["Fig9Result", "run", "format_result"]


@dataclass
class Fig9Result:
    """Convergence of the vanilla and SWIFTED routers on the same outage."""

    prefix_count: int
    vanilla_convergence_seconds: float
    swift_convergence_seconds: float
    vanilla_loss_series: List[Tuple[float, float]]
    swift_loss_series: List[Tuple[float, float]]

    @property
    def speedup_percent(self) -> float:
        """Relative reduction of the convergence time (paper: ~98%)."""
        if self.vanilla_convergence_seconds <= 0:
            return 0.0
        return 100.0 * (
            1.0 - self.swift_convergence_seconds / self.vanilla_convergence_seconds
        )


def run(
    prefix_count: int = 290000,
    timing: Optional[FibUpdateTimingModel] = None,
    swift_config: Optional[SwiftConfig] = None,
    seed: int = 0,
) -> Fig9Result:
    """Run the case study for a given table size.

    The vanilla side uses the analytic converge-per-prefix model; the SWIFTED
    side actually replays the burst through the controller + switch pipeline
    until the first accepted inference completes its switch programming.
    """
    scenario = build_fig1_scenario(prefix_count=prefix_count, seed=seed)
    timing = timing or FibUpdateTimingModel()

    vanilla = VanillaRouterModel(timing=timing)
    vanilla_result = vanilla.converge_scenario(scenario)
    vanilla_seconds = vanilla_result.total_convergence_seconds

    config = swift_config or SwiftConfig(
        timing=timing, encoder=EncoderConfig(prefix_threshold=1500)
    )
    deployment = SwiftedDeployment.for_scenario(scenario, config=config)
    swift_seconds = deployment.run_burst(scenario)
    if swift_seconds is None:
        # No accepted inference (e.g. tiny table below the thresholds): SWIFT
        # degenerates to vanilla behaviour.
        swift_seconds = vanilla_seconds

    probe_recoveries_vanilla = [
        scenario.failure_time + downtime
        for downtime in vanilla_result.probe_downtimes(scenario.probe_prefixes)
    ]
    vanilla_series = downtime_series(
        probe_recoveries_vanilla, failure_time=scenario.failure_time, step=1.0
    )
    swift_series = downtime_series(
        [scenario.failure_time + swift_seconds] * len(scenario.probe_prefixes),
        failure_time=scenario.failure_time,
        horizon=max(vanilla_seconds, swift_seconds),
        step=1.0,
    )
    return Fig9Result(
        prefix_count=prefix_count,
        vanilla_convergence_seconds=vanilla_seconds,
        swift_convergence_seconds=swift_seconds,
        vanilla_loss_series=vanilla_series,
        swift_loss_series=swift_series,
    )


def format_result(result: Fig9Result) -> str:
    """Render the convergence comparison."""
    rows = [
        ("vanilla router", round(result.vanilla_convergence_seconds, 1), 109.0),
        ("SWIFTED router", round(result.swift_convergence_seconds, 1), 2.0),
    ]
    table = format_table(
        ["Deployment", "convergence (s)", "paper (s)"],
        rows,
        title=f"Fig. 9(a) - case study with {result.prefix_count // 1000}k prefixes",
    )
    return f"{table}\nspeed-up: {result.speedup_percent:.1f}% (paper: ~98%)"
