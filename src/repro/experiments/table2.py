"""Table 2 — accuracy of the prediction of *future* withdrawals.

For every burst the paper reports, at several percentiles, the Correctly
Predicted Rate (share of future withdrawals that SWIFT rerouted ahead of
time), the FPR, and the absolute numbers of correctly / incorrectly predicted
prefixes — separately for small (2.5k–15k withdrawals) and large (>15k)
bursts, with the history model enabled.  Headline: CPR ≈ 89.5% at the median
for small bursts and ≈ 93% for large ones, with FPR below ~1% for most bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.inference import InferenceConfig
from repro.experiments.common import BurstEvaluation, CorpusBurst, evaluate_burst
from repro.metrics.distributions import percentile
from repro.metrics.tables import format_table

__all__ = ["Table2Result", "run", "format_result"]

_PERCENTILES = (0.10, 0.20, 0.30, 0.50, 0.70, 0.80, 0.90)


@dataclass
class Table2Result:
    """Per-percentile prediction statistics for small and large bursts."""

    small_cpr: Dict[float, float]
    small_fpr: Dict[float, float]
    small_cp: Dict[float, float]
    small_fp: Dict[float, float]
    large_cpr: Dict[float, float]
    large_fpr: Dict[float, float]
    large_cp: Dict[float, float]
    large_fp: Dict[float, float]
    small_count: int
    large_count: int

    def median_cpr(self, large: bool = False) -> float:
        """Median CPR for the requested burst class."""
        return (self.large_cpr if large else self.small_cpr).get(0.50, 0.0)


def run(
    corpus: Sequence[CorpusBurst],
    config: Optional[InferenceConfig] = None,
    size_split: int = 15000,
) -> Table2Result:
    """Evaluate the withdrawal prediction over a burst corpus."""
    config = config or InferenceConfig()
    small: List[BurstEvaluation] = []
    large: List[BurstEvaluation] = []
    for burst in corpus:
        evaluation = evaluate_burst(burst, config=config)
        if not evaluation.made_prediction:
            continue
        bucket = large if burst.size > size_split else small
        bucket.append(evaluation)

    def collect(evaluations: List[BurstEvaluation]):
        cprs = [e.prediction.tpr for e in evaluations]
        fprs = [e.prediction.fpr for e in evaluations]
        cps = [float(e.prediction.true_positives) for e in evaluations]
        fps = [float(e.prediction.false_positives) for e in evaluations]
        def per(values: List[float]) -> Dict[float, float]:
            if not values:
                return {p: 0.0 for p in _PERCENTILES}
            return {p: percentile(values, p) for p in _PERCENTILES}
        return per(cprs), per(fprs), per(cps), per(fps)

    small_cpr, small_fpr, small_cp, small_fp = collect(small)
    large_cpr, large_fpr, large_cp, large_fp = collect(large)
    return Table2Result(
        small_cpr=small_cpr,
        small_fpr=small_fpr,
        small_cp=small_cp,
        small_fp=small_fp,
        large_cpr=large_cpr,
        large_fpr=large_fpr,
        large_cp=large_cp,
        large_fp=large_fp,
        small_count=len(small),
        large_count=len(large),
    )


def format_result(result: Table2Result) -> str:
    """Render the two percentile tables of Table 2."""
    headers = ["metric"] + [f"{int(p * 100)}th" for p in _PERCENTILES]

    def rows_for(cpr, fpr, cp, fp):
        return [
            ["CPR %"] + [round(100 * cpr[p], 1) for p in _PERCENTILES],
            ["FPR %"] + [round(100 * fpr[p], 2) for p in _PERCENTILES],
            ["CP"] + [int(cp[p]) for p in _PERCENTILES],
            ["FP"] + [int(fp[p]) for p in _PERCENTILES],
        ]

    small_table = format_table(
        headers,
        rows_for(result.small_cpr, result.small_fpr, result.small_cp, result.small_fp),
        title=f"Table 2 - small bursts (2.5k-15k), n={result.small_count}",
    )
    large_table = format_table(
        headers,
        rows_for(result.large_cpr, result.large_fpr, result.large_cp, result.large_fp),
        title=f"Table 2 - large bursts (>15k), n={result.large_count}",
    )
    return (
        f"{small_table}\n\n{large_table}\n"
        "paper medians: CPR 89.5% (small) / 93.0% (large), FPR 0.22% / 0.60%"
    )
