"""Table 1 — data-plane downtime of a vanilla router vs burst size.

Paper numbers (Cisco Nexus 7k, Fig. 1 topology, failure of (5, 6)):

=============  ==============
Withdrawals    Downtime (sec)
=============  ==============
10k            3.8
50k            19.0
100k           37.9
290k           109.0
=============  ==============

The reproduction replays the same scenario through the
:class:`~repro.casestudy.vanilla.VanillaRouterModel`: downtime grows roughly
linearly with the burst size because every prefix must be processed and
re-installed individually.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.casestudy.testbed import build_fig1_scenario
from repro.casestudy.vanilla import VanillaRouterModel
from repro.dataplane.timing import FibUpdateTimingModel
from repro.metrics.tables import format_table

__all__ = ["Table1Result", "PAPER_TABLE1", "run", "format_result"]

#: The paper's measured downtimes, for side-by-side comparison.
PAPER_TABLE1: Dict[int, float] = {10000: 3.8, 50000: 19.0, 100000: 37.9, 290000: 109.0}


@dataclass(frozen=True)
class Table1Result:
    """Measured downtime per burst size."""

    downtime_of: Dict[int, float]
    probe_max_downtime_of: Dict[int, float]

    def ratio_to(self, reference: Dict[int, float]) -> Dict[int, float]:
        """Measured / reference downtime per burst size (where both exist)."""
        return {
            size: self.downtime_of[size] / reference[size]
            for size in self.downtime_of
            if size in reference and reference[size] > 0
        }


def run(
    burst_sizes: Sequence[int] = (10000, 50000, 100000, 290000),
    timing: Optional[FibUpdateTimingModel] = None,
    probe_count: int = 100,
    use_probes: bool = True,
    seed: int = 0,
) -> Table1Result:
    """Reproduce Table 1 for the given burst sizes.

    ``use_probes=False`` skips the per-probe replay (useful for very large
    sizes in quick runs) and relies on the analytic model only.
    """
    model = VanillaRouterModel(timing=timing)
    downtimes: Dict[int, float] = {}
    probe_downtimes: Dict[int, float] = {}
    for size in burst_sizes:
        downtimes[size] = model.downtime_for_burst_size(size)
        if use_probes:
            scenario = build_fig1_scenario(
                prefix_count=size, probe_count=probe_count, seed=seed
            )
            result = model.converge_scenario(scenario)
            probes = result.probe_downtimes(scenario.probe_prefixes)
            probe_downtimes[size] = max(probes) if probes else 0.0
        else:
            probe_downtimes[size] = downtimes[size]
    return Table1Result(downtime_of=downtimes, probe_max_downtime_of=probe_downtimes)


def format_result(result: Table1Result) -> str:
    """Render the reproduced table next to the paper's numbers."""
    rows: List[Tuple[object, ...]] = []
    for size in sorted(result.downtime_of):
        paper = PAPER_TABLE1.get(size)
        rows.append(
            (
                f"{size // 1000}k",
                round(result.downtime_of[size], 1),
                round(result.probe_max_downtime_of[size], 1),
                paper if paper is not None else "-",
            )
        )
    return format_table(
        ["Withdrawals", "Model downtime (s)", "Probe downtime (s)", "Paper (s)"],
        rows,
        title="Table 1 - vanilla router downtime vs burst size",
    )
