"""§6.5 — number of data-plane updates and rerouting speed.

When the inference fires after 2.5k withdrawals, the paper reports a median
of 4 inferred links (29 at the 90th percentile) and, with 16 backup
next-hops, a median of 64 data-plane rule updates — installable within
~130 ms given per-rule update times of 128–282 µs per entry.  This harness
measures, over a burst corpus, the number of inferred links, the number of
wildcard rules a SWIFTED router would install, and the modelled data-plane
update latency.

Cache-reloaded corpora arrive in columnar form
(:func:`repro.experiments.common.cached_corpus`): each burst's ``messages``
is a lazy view over shared columns — materialised once here, as the
inference engine consumes it — and bursts of a session share their decoded
RIB dict by identity, which is what the per-RIB encoding memo below keys
on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.encoding import EncodedTags, EncoderConfig, TagEncoder
from repro.core.inference import InferenceConfig
from repro.dataplane.timing import FibUpdateTimingModel
from repro.experiments.common import CorpusBurst, evaluate_burst
from repro.metrics.distributions import percentile
from repro.metrics.tables import format_table

__all__ = ["ReroutingSpeedResult", "run", "format_result"]


@dataclass
class ReroutingSpeedResult:
    """Distributions of inferred-link counts, rule counts and update times."""

    inferred_link_counts: List[int]
    rule_counts: List[int]
    update_seconds: List[float]
    bursts: int

    def median_links(self) -> float:
        """Median number of inferred links per accepted inference."""
        return percentile([float(c) for c in self.inferred_link_counts], 0.5) if self.inferred_link_counts else 0.0

    def median_rules(self) -> float:
        """Median number of installed rules per reroute."""
        return percentile([float(c) for c in self.rule_counts], 0.5) if self.rule_counts else 0.0

    def median_update_seconds(self) -> float:
        """Median modelled data-plane update latency."""
        return percentile(self.update_seconds, 0.5) if self.update_seconds else 0.0


def run(
    corpus: Sequence[CorpusBurst],
    backup_next_hops: int = 16,
    inference_config: Optional[InferenceConfig] = None,
    encoder_config: Optional[EncoderConfig] = None,
    timing: Optional[FibUpdateTimingModel] = None,
) -> ReroutingSpeedResult:
    """Measure rule counts and reroute latencies over a burst corpus.

    ``backup_next_hops`` models how many distinct backup next-hops the
    rerouted traffic is spread over (the paper's §6.5 uses 16); each inferred
    link contributes one rule per backup next-hop and per encoded position.
    """
    inference_config = inference_config or InferenceConfig()
    encoder = TagEncoder(encoder_config or EncoderConfig())
    timing = timing or FibUpdateTimingModel(per_rule_seconds=205e-6,
                                            control_plane_overhead_seconds=0.0)

    link_counts: List[int] = []
    rule_counts: List[int] = []
    update_seconds: List[float] = []
    # The encoding depends only on the session RIB, which corpus bursts of
    # the same session share by identity — encode each RIB once instead of
    # once per burst (ROADMAP perf idea #4).
    encoded_of_rib: Dict[int, EncodedTags] = {}
    for burst in corpus:
        evaluation = evaluate_burst(burst, config=inference_config)
        if not evaluation.made_prediction:
            continue
        result = evaluation.inference
        assert result is not None
        link_counts.append(len(result.inferred_links))
        rib_key = id(burst.rib)
        encoded = encoded_of_rib.get(rib_key)
        if encoded is None:
            encoded = encoded_of_rib[rib_key] = encoder.encode(dict(burst.rib))
        # One rule per (encoded position of the link, backup next-hop).
        rules = 0
        synthetic_backups = {64500 + i: 1 for i in range(backup_next_hops)}
        for link in result.inferred_links:
            rules += len(encoder.reroute_rules(encoded, link, synthetic_backups))
        if rules == 0:
            # Links not encoded at all (e.g. below threshold): SWIFT falls
            # back to one rule per backup next-hop on the session link.
            rules = backup_next_hops
        rule_counts.append(rules)
        update_seconds.append(timing.rule_update_time(rules))

    return ReroutingSpeedResult(
        inferred_link_counts=link_counts,
        rule_counts=rule_counts,
        update_seconds=update_seconds,
        bursts=len(link_counts),
    )


def format_result(result: ReroutingSpeedResult) -> str:
    """Render the §6.5 summary."""
    link_p90 = (
        percentile([float(c) for c in result.inferred_link_counts], 0.9)
        if result.inferred_link_counts
        else 0.0
    )
    rule_p90 = (
        percentile([float(c) for c in result.rule_counts], 0.9)
        if result.rule_counts
        else 0.0
    )
    rows = [
        ("inferred links", round(result.median_links(), 1), round(link_p90, 1), "4 / 29"),
        ("rules installed", round(result.median_rules(), 1), round(rule_p90, 1), "64 / 464"),
        (
            "update time (ms)",
            round(1000 * result.median_update_seconds(), 1),
            round(
                1000 * (percentile(result.update_seconds, 0.9) if result.update_seconds else 0.0),
                1,
            ),
            "~130 / -",
        ),
    ]
    table = format_table(
        ["Quantity", "median", "p90", "paper (median / p90)"],
        rows,
        title=f"Rerouting speed over {result.bursts} accepted inferences",
    )
    return table
