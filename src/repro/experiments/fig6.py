"""Fig. 6 — failure-localisation accuracy (TPR/FPR quadrants).

The paper evaluates every burst of at least 2.5k withdrawals: the prefixes
whose pre-burst path traverses the inferred links are compared against the
prefixes withdrawn over the whole burst.  Two variants are reported: the
inference run once after 2.5k withdrawals without the history model
(Fig. 6(a)) and the adaptive, history-driven variant (Fig. 6(b)).  Headline
numbers: with history ~85% of bursts land in the top-left quadrant (TPR high,
FPR low), ~5% in the top-right, ~10% in the bottom-left and none in the
bottom-right.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.inference import InferenceConfig
from repro.experiments.common import BurstEvaluation, CorpusBurst, evaluate_burst
from repro.metrics.quadrants import Quadrant, quadrant_shares
from repro.metrics.tables import format_table

__all__ = ["Fig6Result", "run", "format_result"]


@dataclass
class Fig6Result:
    """Quadrant shares for the two inference variants."""

    without_history: Dict[Quadrant, float]
    with_history: Dict[Quadrant, float]
    points_without_history: List[Tuple[float, float]]
    points_with_history: List[Tuple[float, float]]
    missed_with_history: int
    burst_count: int

    def bad_inference_share(self) -> float:
        """Share of bursts in the bottom-right quadrant (paper: 0 for both)."""
        return max(
            self.without_history.get(Quadrant.BOTTOM_RIGHT, 0.0),
            self.with_history.get(Quadrant.BOTTOM_RIGHT, 0.0),
        )


def run(corpus: Sequence[CorpusBurst]) -> Fig6Result:
    """Run both inference variants over a burst corpus and bin the results."""
    without_points: List[Tuple[float, float]] = []
    with_points: List[Tuple[float, float]] = []
    missed = 0

    config_without = InferenceConfig.without_history()
    config_with = InferenceConfig()

    for burst in corpus:
        evaluation = evaluate_burst(burst, config=config_without)
        if evaluation.made_prediction:
            without_points.append((evaluation.tpr, evaluation.fpr))
        evaluation_history = evaluate_burst(burst, config=config_with)
        if evaluation_history.made_prediction:
            with_points.append((evaluation_history.tpr, evaluation_history.fpr))
        else:
            missed += 1

    return Fig6Result(
        without_history=quadrant_shares(without_points),
        with_history=quadrant_shares(with_points),
        points_without_history=without_points,
        points_with_history=with_points,
        missed_with_history=missed,
        burst_count=len(corpus),
    )


def format_result(result: Fig6Result) -> str:
    """Render the quadrant shares next to the paper's headline numbers."""
    paper_without = {
        Quadrant.TOP_LEFT: 0.758,
        Quadrant.TOP_RIGHT: 0.119,
        Quadrant.BOTTOM_LEFT: 0.123,
        Quadrant.BOTTOM_RIGHT: 0.0,
    }
    paper_with = {
        Quadrant.TOP_LEFT: 0.851,
        Quadrant.TOP_RIGHT: 0.053,
        Quadrant.BOTTOM_LEFT: 0.096,
        Quadrant.BOTTOM_RIGHT: 0.0,
    }
    rows = []
    for quadrant in Quadrant:
        rows.append(
            (
                quadrant.value,
                round(result.without_history.get(quadrant, 0.0), 3),
                round(paper_without[quadrant], 3),
                round(result.with_history.get(quadrant, 0.0), 3),
                round(paper_with[quadrant], 3),
            )
        )
    table = format_table(
        ["Quadrant", "no-history", "paper", "history", "paper"],
        rows,
        title="Fig. 6 - localisation quadrant shares (TPR/FPR, 50% cut)",
    )
    return (
        f"{table}\n"
        f"bursts evaluated: {result.burst_count}, "
        f"missed with history (no accepted inference): {result.missed_with_history}"
    )
