"""Experiment harnesses: one runner per table / figure of the paper.

Every module exposes a ``run(...)`` function returning a result dataclass and
a ``format_result(...)`` helper printing the same rows / series the paper
reports, so the benchmarks can regenerate each artefact:

==============================  =========================================
Paper artefact                  Module
==============================  =========================================
Table 1 (vanilla downtime)      :mod:`repro.experiments.table1`
Fig. 2(a)/(b) (burst stats)     :mod:`repro.experiments.fig2`
Fig. 6(a)/(b) (TPR/FPR)         :mod:`repro.experiments.fig6`
Table 2 (prediction accuracy)   :mod:`repro.experiments.table2`
Fig. 7 (encoding performance)   :mod:`repro.experiments.fig7`
Fig. 8 (learning time CDF)      :mod:`repro.experiments.fig8`
Fig. 9(a) (case-study speedup)  :mod:`repro.experiments.fig9`
§6.2.2/§6.3.2 (simulation)      :mod:`repro.experiments.simulation_validation`
§6.5 (rerouting speed)          :mod:`repro.experiments.rerouting_speed`
§6 (month-scale replay)         :mod:`repro.experiments.month_replay`
==============================  =========================================
"""

from repro.experiments.common import (
    BurstEvaluation,
    burst_corpus,
    cached_corpus,
    evaluate_burst,
)

__all__ = ["BurstEvaluation", "burst_corpus", "cached_corpus", "evaluate_burst"]
