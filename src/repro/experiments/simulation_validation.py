"""§6.2.2 / §6.3.2 — validation on simulated bursts with ground truth.

The paper generates bursts with C-BGP over a 1,000-AS topology and checks:

* running the inference at the *end* of each burst always returns a set of
  links containing (or adjacent to) the failed link (Theorem 4.1);
* running it after only 200 withdrawals, the selected backup path bypasses
  the actual failed link for all bursts but one;
* both properties survive 1,000 unrelated noise withdrawals per burst.

This harness uses the :class:`~repro.simulation.propagation.PropagationSimulator`
substitute and reports the same categories (exact / superset / adjacent /
wrong) plus the share of bursts whose inferred links would let SWIFT avoid
the failed link.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bgp.messages import Update
from repro.core.fit_score import FitScoreCalculator, FitScoreConfig
from repro.core.inference import InferenceConfig, InferenceEngine
from repro.metrics.tables import format_table
from repro.simulation.events import LinkFailure
from repro.simulation.noise import NoiseConfig, inject_noise
from repro.simulation.propagation import PropagationSimulator, SimulatedBurst, VantagePoint
from repro.topology.as_graph import ASGraph
from repro.topology.generator import TopologyConfig, generate_topology

__all__ = ["SimulationValidationResult", "run", "format_result"]

Link = Tuple[int, int]


@dataclass
class SimulationValidationResult:
    """Outcome categories for end-of-burst and early inferences."""

    bursts: int
    end_exact: int
    end_superset: int
    end_adjacent: int
    end_wrong: int
    early_backup_safe: int
    early_backup_unsafe: int

    @property
    def end_contains_failed_share(self) -> float:
        """Share of bursts whose end-of-burst inference contains the failed link."""
        if self.bursts == 0:
            return 0.0
        return (self.end_exact + self.end_superset) / self.bursts

    @property
    def early_safe_share(self) -> float:
        """Share of bursts whose early inference lets SWIFT avoid the failed link."""
        total = self.early_backup_safe + self.early_backup_unsafe
        return self.early_backup_safe / total if total else 0.0


def _classify_links(inferred: Sequence[Link], failed: Link) -> str:
    """Categorise an inference against the (single) failed link."""
    failed = failed if failed[0] <= failed[1] else (failed[1], failed[0])
    inferred_set = {tuple(sorted(link)) for link in inferred}
    if inferred_set == {failed}:
        return "exact"
    if failed in inferred_set:
        return "superset"
    endpoints = set(failed)
    if any(endpoints & set(link) for link in inferred_set):
        return "adjacent"
    return "wrong"


def run(
    as_count: int = 300,
    prefixes_per_as: int = 20,
    failures: int = 30,
    early_withdrawals: int = 200,
    noise_withdrawals: int = 0,
    min_burst: int = 50,
    seed: int = 5,
    graph: Optional[ASGraph] = None,
) -> SimulationValidationResult:
    """Run the simulation validation.

    The defaults are scaled down from the paper's 1,000-AS / 2,183-burst
    campaign so the harness completes in seconds; the categories and shares
    are directly comparable.
    """
    graph = graph or generate_topology(
        TopologyConfig(as_count=as_count, prefixes_per_as=prefixes_per_as, seed=seed)
    )
    simulator = PropagationSimulator(graph, seed=seed)
    rng = random.Random(seed)

    # Vantage: a peer-to-peer session of a well-connected AS, like a collector
    # peering with a transit provider.
    vantage = _pick_vantage(graph)
    # Many prefixes crossing a link end up re-routed rather than withdrawn, so
    # the candidate pre-filter (based on crossing prefixes) must be looser
    # than the wanted burst size; relax it until enough failures are found.
    threshold = min_burst
    failures_list = simulator.random_failures(
        vantage, count=failures, min_withdrawals=threshold, seed=seed
    )
    while len(failures_list) < failures and threshold > 10:
        threshold //= 2
        failures_list = simulator.random_failures(
            vantage, count=failures, min_withdrawals=threshold, seed=seed
        )

    end_counts = {"exact": 0, "superset": 0, "adjacent": 0, "wrong": 0}
    early_safe = 0
    early_unsafe = 0
    bursts = 0

    for failure in failures_list:
        burst = simulator.simulate(failure, vantage)
        if burst.withdrawal_count < max(10, min_burst // 4):
            continue
        bursts += 1
        messages = list(burst.messages)
        if noise_withdrawals:
            unaffected = [
                prefix
                for prefix in burst.initial_rib
                if prefix not in burst.ground_truth.affected_prefixes
            ]
            messages = inject_noise(
                messages,
                unaffected,
                vantage.peer_as,
                NoiseConfig(burst_noise_withdrawals=noise_withdrawals, seed=seed),
            )
        failed = burst.ground_truth.failed_links[0]

        # End-of-burst inference: feed everything, then force an inference.
        rib = {p: a.as_path for p, a in burst.initial_rib.items()}
        calculator = FitScoreCalculator(rib, FitScoreConfig())
        for message in messages:
            if isinstance(message, Update):
                if message.withdrawals:
                    calculator.record_withdrawals(message.withdrawals)
                for announcement in message.announcements:
                    calculator.record_update(
                        announcement.prefix, announcement.attributes.as_path
                    )
        scores = calculator.all_scores()
        if scores:
            best = scores[0].fit_score
            inferred_end = [
                s.links[0] for s in scores if s.fit_score >= best - 1e-9
            ]
        else:
            inferred_end = []
        end_counts[_classify_links(inferred_end, failed)] += 1

        # Early inference after ``early_withdrawals`` withdrawals.
        inferred_early = _early_inference(rib, messages, early_withdrawals)
        if inferred_early is None:
            inferred_early = inferred_end
        endpoints: Set[int] = set()
        for link in inferred_early:
            endpoints |= set(link)
        # SWIFT avoids the common endpoints of the inferred links; the backup
        # is safe when doing so also avoids the actual failed link.
        if set(failed) & endpoints:
            early_safe += 1
        else:
            early_unsafe += 1

    return SimulationValidationResult(
        bursts=bursts,
        end_exact=end_counts["exact"],
        end_superset=end_counts["superset"],
        end_adjacent=end_counts["adjacent"],
        end_wrong=end_counts["wrong"],
        early_backup_safe=early_safe,
        early_backup_unsafe=early_unsafe,
    )


def _pick_vantage(graph: ASGraph) -> VantagePoint:
    """Pick a peer-to-peer session whose peer has a sizeable customer cone."""
    best: Optional[Tuple[int, VantagePoint]] = None
    for link in graph.links():
        if link.relationship.value != "p2p":
            continue
        a, b = link.endpoints
        for local, peer in ((a, b), (b, a)):
            degree = graph.degree(peer)
            if best is None or degree > best[0]:
                best = (degree, VantagePoint(local_as=local, peer_as=peer))
    if best is None:
        # Fall back to any link (tiny test graphs may have no peering link).
        link = next(iter(graph.links()))
        return VantagePoint(local_as=link.a, peer_as=link.b)
    return best[1]


def _early_inference(
    rib, messages, early_withdrawals: int
) -> Optional[List[Link]]:
    """Inference using only the first ``early_withdrawals`` withdrawals."""
    calculator = FitScoreCalculator(rib, FitScoreConfig())
    seen = 0
    for message in messages:
        if not isinstance(message, Update):
            continue
        if message.withdrawals:
            take = message.withdrawals[: early_withdrawals - seen]
            seen += calculator.record_withdrawals(take)
        for announcement in message.announcements:
            calculator.record_update(
                announcement.prefix, announcement.attributes.as_path
            )
        if seen >= early_withdrawals:
            break
    if seen == 0:
        return None
    scores = calculator.all_scores()
    if not scores:
        return None
    best = scores[0].fit_score
    return [s.links[0] for s in scores if s.fit_score >= best - 1e-9]


def format_result(result: SimulationValidationResult) -> str:
    """Render the validation categories."""
    rows = [
        ("exact", result.end_exact),
        ("superset (contains failed link)", result.end_superset),
        ("adjacent to failed link", result.end_adjacent),
        ("wrong", result.end_wrong),
    ]
    table = format_table(
        ["End-of-burst inference", "bursts"],
        rows,
        title=f"Simulation validation over {result.bursts} bursts",
    )
    return (
        f"{table}\n"
        f"early inference: backup avoids the failed link for "
        f"{100 * result.early_safe_share:.1f}% of bursts "
        "(paper: all bursts but one)"
    )
