"""Month-scale replay of a collector session through a (SWIFTED) router.

The paper's evaluation replays months of real BGP update streams; this
driver is the scaled equivalent over the synthetic substrate, built
end-to-end on the columnar trace format: the session's month-long stream is
generated straight into columns (memoised on disk by
:func:`repro.traces.synthetic.cached_columnar_stream`, reloading at array
speed), and replay consumes
:meth:`~repro.traces.columnar.ColumnarTrace.iter_batches` — same-peer runs
applied through the batched speaker path, with the inference engines
reading the same column windows
(:meth:`~repro.core.inference.InferenceEngine.process_columnar_run`): no
message object is constructed in either mode.

Two modes:

* ``swifted=True`` (default): the stream drives a
  :class:`~repro.core.swifted_router.SwiftedRouter` — burst inference,
  reroute activations and loss-of-reachability accounting included, all
  column-native;
* ``swifted=False``: the stream drives a bare
  :class:`~repro.bgp.speaker.BGPSpeaker` — no inference machinery at all,
  which is the replay-throughput ceiling of the substrate.

Replay proceeds in chunks of roughly ``chunk_messages`` messages: each chunk
is one speaker batch (decision process once per touched prefix), matching
how a deployment drains its BGP sockets in bulk.  Chunking does not change
results — the batched path's loss/recovery multiset matches per-message
replay regardless of batch boundaries.

This module replays *one* session; :mod:`repro.replay` fans the same
``replay_stream`` over every session of a corpus with one worker process
per session (§4.1 independence), aggregating the per-session results — and
their ``collect_events`` multisets — deterministically.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Tuple

from repro.bgp.speaker import BGPSpeaker
from repro.core import kernels
from repro.core.swifted_router import SwiftConfig, SwiftedRouter
from repro.metrics.tables import format_table
from repro.traces.columnar import ColumnarRun, ColumnarTrace
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    SyntheticTraceGenerator,
    cached_columnar_stream,
)

__all__ = [
    "BACKUP_ORIGIN_AS",
    "BACKUP_PEER_AS",
    "DEFAULT_REPLAY_CONFIG",
    "MonthReplayResult",
    "StreamReplayer",
    "backup_alternates",
    "format_result",
    "replay_stream",
    "run",
]

#: The corpus both month-scale drivers default to — :func:`run` here and
#: :func:`repro.replay.fleet.replay_fleet` — so their sequential-vs-fleet
#: parity story always exercises the same sessions.
DEFAULT_REPLAY_CONFIG = SyntheticTraceConfig(
    peer_count=4, duration_days=10.0, min_table_size=4000, max_table_size=20000
)

#: A multiset in canonical form: sorted ``(key, count)`` pairs.  Sorting
#: makes the form byte-identical across replays — the property the fleet
#: driver's parity checks rely on.
EventMultiset = Tuple[Tuple[object, int], ...]


def _canonical_multiset(counter: Counter) -> EventMultiset:
    return tuple(sorted(counter.items()))


@dataclass
class MonthReplayResult:
    """Counters of one month-replay run."""

    peer_as: int
    message_count: int
    withdrawal_count: int
    announcement_count: int
    reroutes: int
    losses: int
    recoveries: int
    chunks: int
    wall_seconds: float
    #: Canonical multisets of the replay's events, populated when the run
    #: was asked to ``collect_events`` (the fleet driver always does): loss
    #: and recovery events keyed by ``(network, length)`` prefix pairs,
    #: reroute activations keyed by ``(timestamp, peer AS, inferred links,
    #: rerouted-prefix count, rule count)``.
    loss_events: Optional[EventMultiset] = None
    recovery_events: Optional[EventMultiset] = None
    reroute_events: Optional[EventMultiset] = None

    @property
    def messages_per_second(self) -> float:
        """Replay throughput in messages per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.message_count / self.wall_seconds

    def signature(self) -> tuple:
        """Everything deterministic about the run — no wall-clock noise.

        Two replays of the same stream (in the same or different processes)
        must produce equal signatures; the fleet parity tests compare the
        pickled bytes of these.
        """
        return (
            self.peer_as,
            self.message_count,
            self.withdrawal_count,
            self.announcement_count,
            self.reroutes,
            self.losses,
            self.recoveries,
            self.loss_events,
            self.recovery_events,
            self.reroute_events,
        )


def _materialising(receive_batch):
    """Adapt ``receive_batch`` to chunk-of-runs input (the object-path twin).

    Expands every run of a chunk into message objects before handing them to
    the batched object path — what ``receive_columnar`` replaces.  Kept as
    the explicit ``column_native=False`` comparator for parity tests and
    benchmarks.
    """

    def receive(chunk: List[ColumnarRun]):
        return receive_batch(
            [message for run in chunk for message in run]
        )

    return receive


def _chunked_runs(
    stream: ColumnarTrace, chunk_messages: int, kernel=None
) -> Iterator[List[ColumnarRun]]:
    """Group the stream's same-peer runs into ~chunk_messages-sized chunks."""
    chunk: List[ColumnarRun] = []
    pending = 0
    for run in stream.iter_batches(max_run=chunk_messages, kernel=kernel):
        chunk.append(run)
        pending += len(run)
        if pending >= chunk_messages:
            yield chunk
            chunk = []
            pending = 0
    if chunk:
        yield chunk


#: Neighbor AS of the synthetic surviving session backing a SWIFTED replay.
BACKUP_PEER_AS = 64512

#: Fallback origin of a backup alternate when the primary path's own origin
#: cannot be reused (absent, invalid, or colliding with the backup peer).
BACKUP_ORIGIN_AS = BACKUP_PEER_AS + 1


def _alternate_origin(origin_as: Optional[int]) -> int:
    """A collision-free origin for the two-hop backup alternate.

    Reusing the primary origin keeps the alternate pointing at the same
    destination AS, but three cases must fall back to the synthetic
    :data:`BACKUP_ORIGIN_AS`: a missing origin (empty path), a non-positive
    one (``or`` used to conflate 0 with "absent", and :class:`ASPath`
    rejects it anyway), and — the silent one — an origin equal to
    :data:`BACKUP_PEER_AS` itself, which used to produce the looped path
    ``[64512, 64512]`` that loop detection drops, leaving the prefix with
    no backup at all.
    """
    if origin_as is None or origin_as <= 0 or origin_as == BACKUP_PEER_AS:
        return BACKUP_ORIGIN_AS
    return origin_as


def backup_alternates(rib) -> dict:
    """The backup session's loop-free two-hop alternate for every RIB prefix."""
    from repro.bgp.attributes import ASPath

    return {
        prefix: ASPath([BACKUP_PEER_AS, _alternate_origin(path.origin_as)])
        for prefix, path in rib.items()
    }


class StreamReplayer:
    """An incrementally-fed month replay — the engine behind
    :func:`replay_stream`.

    Construction performs the full router setup (initial table load, backup
    session, provisioning); :meth:`feed` then replays any number of columnar
    streams *in arrival order* through the same live router, and
    :meth:`result` snapshots the accumulated counters.  Feeding one whole
    stream and calling :meth:`result` is exactly :func:`replay_stream`;
    feeding the same rows split across several calls produces a
    byte-identical :meth:`~MonthReplayResult.signature`, because chunking
    and run-splitting never change replay results — the property the live
    ingestion tail (:class:`repro.ingest.LiveReplay`) relies on to match
    offline replay window for window.

    ``rib`` is the session's pre-trace Adj-RIB-In snapshot (prefix -> AS
    path).  Stream recording is switched off on the replay session — a
    month of messages must not accumulate in memory — which is also what
    arms the zero-object columnar path (speaker *and* inference engines
    consume the raw columns; no ``BGPMessage`` is built anywhere).

    ``column_native=False`` replays the same chunks through the
    materialising object path instead (each chunk's runs are expanded into
    messages and fed to ``receive_batch``) — the comparator the columnar
    parity matrix and the inference benchmarks measure against.

    In SWIFTED mode a second, quiet session (``backup_session``) announces
    a surviving two-hop alternate for every prefix at a lower LOCAL_PREF —
    the Fig. 1 structure where AS 3 survives the (5, 6) failure.  Synthetic
    per-session prefix spaces are disjoint, so without it the router would
    have no backup next-hops and inferences could never install a rule.

    With ``collect_events=True`` the result also carries the canonical
    loss / recovery / reroute multisets (see
    :class:`MonthReplayResult`), which is what the fleet driver aggregates
    and parity-checks against sequential replay.

    ``kernel_backend`` picks the column-kernel backend
    (:mod:`repro.core.kernels`) for the whole replay — run segmentation,
    the speaker's session walks, the engines' detector / fit-score /
    span kernels.  ``None`` auto-selects (numpy when importable, the
    stdlib reference otherwise); the backend never changes the result
    signature.  An explicit choice is injected into the SWIFTED router's
    inference config so the engines honour the same selection.
    """

    def __init__(
        self,
        rib,
        peer_as: int,
        local_as: int = 1,
        swift_config: Optional[SwiftConfig] = None,
        chunk_messages: int = 50000,
        swifted: bool = True,
        local_pref: int = 100,
        backup_session: bool = True,
        collect_events: bool = False,
        column_native: bool = True,
        kernel_backend: Optional[str] = None,
    ) -> None:
        self.peer_as = peer_as
        self.swifted = swifted
        self._chunk_messages = chunk_messages
        self._kernel = kernels.get_backend(kernel_backend)
        self._losses = 0
        self._recoveries = 0
        self._reroutes = 0
        self._message_count = 0
        self._withdrawal_count = 0
        self._announcement_count = 0
        self._chunks = 0
        self._wall_seconds = 0.0
        self._loss_counter: Optional[Counter] = Counter() if collect_events else None
        self._recovery_counter: Optional[Counter] = (
            Counter() if collect_events else None
        )
        self._reroute_counter: Optional[Counter] = (
            Counter() if collect_events else None
        )

        loss_counter = self._loss_counter
        recovery_counter = self._recovery_counter

        def count_events(changes) -> None:
            for change in changes:
                if change.is_loss_of_reachability:
                    self._losses += 1
                    if loss_counter is not None:
                        prefix = change.prefix
                        loss_counter[(prefix.network, prefix.length)] += 1
                elif change.is_recovery:
                    self._recoveries += 1
                    if recovery_counter is not None:
                        prefix = change.prefix
                        recovery_counter[(prefix.network, prefix.length)] += 1

        kernel = self._kernel
        if swifted:
            if kernel_backend is not None:
                # The engines resolve their backend from InferenceConfig;
                # inject the explicit choice so one knob steers the whole
                # path.
                config = swift_config if swift_config is not None else SwiftConfig()
                swift_config = replace(
                    config,
                    inference=replace(
                        config.inference, kernel_backend=kernel_backend
                    ),
                )
            router = SwiftedRouter(local_as, config=swift_config)
            # Recording off *before* the table loads: neither the initial
            # dump nor the month of replay messages may accumulate in
            # MessageStream.
            router.add_peer(peer_as)
            router.speaker.session(peer_as).record_stream = False
            router.load_initial_routes(peer_as, rib, local_pref=local_pref)
            if backup_session:
                router.add_peer(BACKUP_PEER_AS)
                router.speaker.session(BACKUP_PEER_AS).record_stream = False
                router.load_initial_routes(
                    BACKUP_PEER_AS,
                    backup_alternates(rib),
                    local_pref=max(1, local_pref // 2),
                )
            speaker = router.speaker
            speaker.add_best_route_listener(count_events)
            router.provision()
            if column_native:
                receive = lambda chunk: router.receive_columnar(chunk, kernel=kernel)
            else:
                receive = _materialising(router.receive_batch)
            self.router: Optional[SwiftedRouter] = router
        else:
            speaker = BGPSpeaker(local_as)
            speaker.add_peer(peer_as)
            speaker.session(peer_as).record_stream = False
            from repro.bgp.attributes import PathAttributes
            from repro.bgp.messages import Update

            interned = {}

            def attributes_for(path):
                attributes = interned.get(path.asns)
                if attributes is None:
                    attributes = interned[path.asns] = PathAttributes(
                        as_path=path, next_hop=peer_as, local_pref=local_pref
                    )
                return attributes

            speaker.receive_batch(
                Update.announce(0.0, peer_as, prefix, attributes_for(path))
                for prefix, path in sorted(rib.items())
            )
            speaker.add_best_route_listener(count_events)
            if column_native:
                receive = lambda chunk: speaker.receive_columnar(chunk, kernel=kernel)
            else:
                receive = _materialising(speaker.receive_batch)
            self.router = None
        self.speaker = speaker
        self._receive = receive

    def feed(self, stream: ColumnarTrace) -> None:
        """Replay one columnar stream (or stream window) through the router."""
        self._message_count += stream.message_count
        self._withdrawal_count += stream.withdrawal_total
        self._announcement_count += stream.announcement_total
        reroute_counter = self._reroute_counter
        begin = time.perf_counter()
        for chunk in _chunked_runs(stream, self._chunk_messages, kernel=self._kernel):
            self._chunks += 1
            result = self._receive(chunk)
            if self.swifted:
                self._reroutes += len(result)
                if reroute_counter is not None:
                    for action in result:
                        reroute_counter[
                            (
                                action.timestamp,
                                action.peer_as,
                                action.inferred_links,
                                len(action.rerouted_prefixes),
                                len(action.rules),
                            )
                        ] += 1
        self._wall_seconds += time.perf_counter() - begin

    def result(self) -> MonthReplayResult:
        """Snapshot the accumulated counters as a :class:`MonthReplayResult`."""
        return MonthReplayResult(
            peer_as=self.peer_as,
            message_count=self._message_count,
            withdrawal_count=self._withdrawal_count,
            announcement_count=self._announcement_count,
            reroutes=self._reroutes,
            losses=self._losses,
            recoveries=self._recoveries,
            chunks=self._chunks,
            wall_seconds=self._wall_seconds,
            loss_events=(
                _canonical_multiset(self._loss_counter)
                if self._loss_counter is not None
                else None
            ),
            recovery_events=(
                _canonical_multiset(self._recovery_counter)
                if self._recovery_counter is not None
                else None
            ),
            reroute_events=(
                _canonical_multiset(self._reroute_counter)
                if self._reroute_counter is not None
                else None
            ),
        )


def replay_stream(
    stream: ColumnarTrace,
    rib,
    peer_as: int,
    local_as: int = 1,
    swift_config: Optional[SwiftConfig] = None,
    chunk_messages: int = 50000,
    swifted: bool = True,
    local_pref: int = 100,
    backup_session: bool = True,
    collect_events: bool = False,
    column_native: bool = True,
    kernel_backend: Optional[str] = None,
) -> MonthReplayResult:
    """Replay one session's columnar stream through a router.

    The one-shot form of :class:`StreamReplayer` (which carries the full
    parameter documentation): set up the router, feed the whole stream,
    return the result.
    """
    replayer = StreamReplayer(
        rib,
        peer_as,
        local_as=local_as,
        swift_config=swift_config,
        chunk_messages=chunk_messages,
        swifted=swifted,
        local_pref=local_pref,
        backup_session=backup_session,
        collect_events=collect_events,
        column_native=column_native,
        kernel_backend=kernel_backend,
    )
    replayer.feed(stream)
    return replayer.result()


def run(
    config: Optional[SyntheticTraceConfig] = None,
    peer_as: Optional[int] = None,
    local_as: int = 1,
    swift_config: Optional[SwiftConfig] = None,
    chunk_messages: int = 50000,
    swifted: bool = True,
    column_native: bool = True,
    kernel_backend: Optional[str] = None,
    validate: Optional[str] = None,
) -> MonthReplayResult:
    """Replay a (cached) month-long session stream end-to-end.

    The stream comes from :func:`cached_columnar_stream` — generated once,
    reloaded from the columnar cache afterwards — and the session's
    pre-trace RIB is rebuilt deterministically from the generator's
    topology.  Defaults to the first peer of the configured fleet.
    ``validate`` (``"strict"`` / ``"lenient"``) runs the stream through
    ingestion validation (:meth:`~repro.traces.columnar.ColumnarTrace.validated`)
    before replaying it.
    """
    if validate not in (None, "strict", "lenient"):
        raise ValueError(
            f"validate must be None, 'strict' or 'lenient', got {validate!r}"
        )
    config = config or DEFAULT_REPLAY_CONFIG
    generator_stream = SyntheticTraceGenerator(config).stream()
    if peer_as is None:
        peer_as = generator_stream.peers[0].peer_as
    stream = cached_columnar_stream(config, peer_as)
    if validate is not None:
        stream = stream.validated(lenient=(validate == "lenient"))
    rib = generator_stream.rib_of(peer_as)
    return replay_stream(
        stream,
        rib,
        peer_as=peer_as,
        local_as=local_as,
        swift_config=swift_config,
        chunk_messages=chunk_messages,
        swifted=swifted,
        column_native=column_native,
        kernel_backend=kernel_backend,
    )


def format_result(result: MonthReplayResult) -> str:
    """Render the replay counters."""
    rows = [
        ("messages replayed", result.message_count),
        ("withdrawals", result.withdrawal_count),
        ("announcements", result.announcement_count),
        ("reroute activations", result.reroutes),
        ("loss events", result.losses),
        ("recovery events", result.recoveries),
        ("replay chunks", result.chunks),
        ("wall seconds", round(result.wall_seconds, 2)),
        ("messages / second", int(result.messages_per_second)),
    ]
    return format_table(
        ["Quantity", "value"],
        rows,
        title=f"Month-scale replay of session {result.peer_as}",
    )
