"""Fig. 2 — frequency and duration of withdrawal bursts.

* Fig. 2(a): number of bursts a router would see in a month as a function of
  how many peering sessions it maintains (1/5/15/30), for minimum burst sizes
  of 5k/10k/25k withdrawals.  Paper: a 30-session router sees ~104 bursts of
  at least 5k withdrawals per month in the median case.
* Fig. 2(b): CDF of burst duration, split between bursts below and above 10k
  withdrawals.  Paper: 37% of bursts last more than 10 s, 9.7% more than 30 s,
  and larger bursts last longer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.distributions import DistributionSummary, fraction_above, summarize
from repro.metrics.tables import format_table
from repro.traces.bursts import Burst, BurstExtractionConfig, BurstExtractor
from repro.traces.synthetic import SyntheticTrace, SyntheticTraceConfig, SyntheticTraceGenerator

__all__ = ["Fig2Result", "run", "format_result"]


@dataclass
class Fig2Result:
    """Burst-frequency box stats (2a) and duration statistics (2b)."""

    bursts_per_month: Dict[Tuple[int, int], DistributionSummary]
    duration_fraction_above_10s: float
    duration_fraction_above_30s: float
    small_burst_durations: List[float]
    large_burst_durations: List[float]
    total_bursts: int

    def median_bursts(self, sessions: int, min_size: int) -> float:
        """Median bursts/month for a router with ``sessions`` sessions."""
        return self.bursts_per_month[(sessions, min_size)].median


def run(
    trace: Optional[SyntheticTrace] = None,
    session_counts: Sequence[int] = (1, 5, 15, 30),
    min_sizes: Sequence[int] = (5000, 10000, 25000),
    samples: int = 30,
    seed: int = 3,
    trace_config: Optional[SyntheticTraceConfig] = None,
) -> Fig2Result:
    """Reproduce Fig. 2 from a (synthetic) multi-session trace.

    For Fig. 2(a) the harness repeatedly samples ``sessions`` random peering
    sessions and counts the bursts of at least ``min_size`` withdrawals they
    collectively observed over the trace, exactly like the paper's router
    thought-experiment.
    """
    if trace is None:
        config = trace_config or SyntheticTraceConfig(
            peer_count=30,
            duration_days=30.0,
            min_table_size=5000,
            max_table_size=80000,
            noise_rate_per_second=0.0,
            seed=seed,
        )
        trace = SyntheticTraceGenerator(config).generate()

    rng = random.Random(seed)
    per_peer_sizes: Dict[int, List[int]] = {}
    durations: List[Tuple[int, float]] = []
    for burst in trace.bursts:
        per_peer_sizes.setdefault(burst.peer.peer_as, []).append(burst.size)
        durations.append((burst.size, burst.duration))

    peer_ids = [peer.peer_as for peer in trace.peers]
    scale_to_month = 30.0 / trace.config.duration_days

    bursts_per_month: Dict[Tuple[int, int], DistributionSummary] = {}
    for sessions in session_counts:
        for min_size in min_sizes:
            counts: List[float] = []
            for _ in range(samples):
                chosen = (
                    peer_ids
                    if sessions >= len(peer_ids)
                    else rng.sample(peer_ids, sessions)
                )
                count = sum(
                    1
                    for peer in chosen
                    for size in per_peer_sizes.get(peer, [])
                    if size >= min_size
                )
                counts.append(count * scale_to_month)
            bursts_per_month[(sessions, min_size)] = summarize(counts)

    all_durations = [duration for _, duration in durations]
    small = [duration for size, duration in durations if size < 10000]
    large = [duration for size, duration in durations if size >= 10000]
    return Fig2Result(
        bursts_per_month=bursts_per_month,
        duration_fraction_above_10s=fraction_above(all_durations, 10.0),
        duration_fraction_above_30s=fraction_above(all_durations, 30.0),
        small_burst_durations=small,
        large_burst_durations=large,
        total_bursts=len(trace.bursts),
    )


def format_result(result: Fig2Result) -> str:
    """Render Fig. 2(a) as a table and Fig. 2(b) as summary fractions."""
    rows = []
    for (sessions, min_size), stats in sorted(result.bursts_per_month.items()):
        rows.append(
            (sessions, f">={min_size // 1000}k", round(stats.p5, 1),
             round(stats.median, 1), round(stats.p95, 1))
        )
    table_a = format_table(
        ["Sessions", "Min size", "p5/month", "median/month", "p95/month"],
        rows,
        title="Fig. 2(a) - bursts per month vs number of peering sessions",
    )
    lines = [
        table_a,
        "",
        "Fig. 2(b) - burst duration:",
        f"  total bursts: {result.total_bursts}",
        f"  fraction lasting > 10 s: {result.duration_fraction_above_10s:.2f}"
        "  (paper: 0.37)",
        f"  fraction lasting > 30 s: {result.duration_fraction_above_30s:.2f}"
        "  (paper: 0.097)",
    ]
    if result.small_burst_durations and result.large_burst_durations:
        small_median = summarize(result.small_burst_durations).median
        large_median = summarize(result.large_burst_durations).median
        lines.append(
            f"  median duration: <10k bursts {small_median:.1f} s, "
            f">=10k bursts {large_median:.1f} s (larger bursts last longer)"
        )
    return "\n".join(lines)
