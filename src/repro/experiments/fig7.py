"""Fig. 7 — encoding performance vs bits allocated to the AS-path part.

For each burst, the *encoding performance* is the fraction of the predicted
prefixes that the pre-provisioned tags can actually reroute (i.e. whose
inferred failed link is encoded at the position it occupies in their path).
The paper sweeps 13/18/23/28 bits and reports that 18 bits already reroute
98.7% of the predicted prefixes in the median case (73.9% on average), and
more for large (>=10k) bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.encoding import EncoderConfig, TagEncoder
from repro.core.inference import InferenceConfig
from repro.experiments.common import CorpusBurst, evaluate_burst
from repro.metrics.distributions import DistributionSummary, summarize
from repro.metrics.tables import format_table

__all__ = ["Fig7Result", "run", "format_result"]


@dataclass
class Fig7Result:
    """Encoding-performance distributions per bit budget."""

    all_bursts: Dict[int, DistributionSummary]
    large_bursts: Dict[int, DistributionSummary]
    burst_count: int

    def median_at(self, bits: int) -> float:
        """Median encoding performance (all bursts) for a bit budget."""
        return self.all_bursts[bits].median


def run(
    corpus: Sequence[CorpusBurst],
    bit_budgets: Sequence[int] = (13, 18, 23, 28),
    prefix_threshold: int = 1500,
    large_burst_size: int = 10000,
    inference_config: Optional[InferenceConfig] = None,
) -> Fig7Result:
    """Measure the encoding performance over a burst corpus.

    For every burst, the session RIB is encoded with each bit budget and the
    coverage of the accepted inference's prediction is computed.
    """
    inference_config = inference_config or InferenceConfig()
    per_bits_all: Dict[int, List[float]] = {bits: [] for bits in bit_budgets}
    per_bits_large: Dict[int, List[float]] = {bits: [] for bits in bit_budgets}
    evaluated = 0

    for burst in corpus:
        evaluation = evaluate_burst(burst, config=inference_config)
        if not evaluation.made_prediction:
            continue
        evaluated += 1
        result = evaluation.inference
        assert result is not None
        predicted = result.prediction.predicted_prefixes
        for bits in bit_budgets:
            encoder = TagEncoder(
                EncoderConfig(path_bits=bits, prefix_threshold=prefix_threshold)
            )
            encoded = encoder.encode(dict(burst.rib))
            coverage = encoder.coverage(
                encoded, dict(burst.rib), predicted, result.inferred_links
            )
            per_bits_all[bits].append(coverage)
            if burst.size >= large_burst_size:
                per_bits_large[bits].append(coverage)

    all_summary = {
        bits: summarize(values) if values else summarize([0.0])
        for bits, values in per_bits_all.items()
    }
    large_summary = {
        bits: summarize(values) if values else summarize([0.0])
        for bits, values in per_bits_large.items()
    }
    return Fig7Result(
        all_bursts=all_summary, large_bursts=large_summary, burst_count=evaluated
    )


def format_result(result: Fig7Result) -> str:
    """Render the encoding-performance sweep."""
    rows = []
    for bits in sorted(result.all_bursts):
        stats = result.all_bursts[bits]
        large = result.large_bursts[bits]
        rows.append(
            (
                bits,
                round(100 * stats.median, 1),
                round(100 * stats.mean, 1),
                round(100 * large.mean, 1),
            )
        )
    table = format_table(
        ["Path bits", "median % (all)", "mean % (all)", "mean % (>=10k)"],
        rows,
        title="Fig. 7 - encoding performance vs AS-path bit budget",
    )
    return (
        f"{table}\n"
        f"bursts with an accepted inference: {result.burst_count}\n"
        "paper at 18 bits: median 98.7%, mean 73.9% (84.0% for >=10k bursts)"
    )
