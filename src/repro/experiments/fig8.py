"""Fig. 8 — learning-time CDF: SWIFT vs plain BGP.

For every withdrawal of every burst, the *learning time* is how long after
the burst start the router learns the prefix is affected: the withdrawal's
own arrival time for BGP, or the prediction time when SWIFT predicted it.
Paper medians: 2 s for SWIFT vs 13 s for BGP (9 s vs 32 s at the 75th
percentile).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bgp.messages import Update
from repro.bgp.prefix import Prefix
from repro.core.inference import InferenceConfig
from repro.experiments.common import CorpusBurst, evaluate_burst
from repro.metrics.convergence import learning_times
from repro.metrics.distributions import cdf_points, percentile
from repro.metrics.tables import format_table

__all__ = ["Fig8Result", "run", "format_result"]


@dataclass
class Fig8Result:
    """Pooled learning times for SWIFT and BGP."""

    swift_seconds: List[float]
    bgp_seconds: List[float]
    bursts_with_prediction: int
    bursts_without_prediction: int

    def median(self, swift: bool = True) -> float:
        """Median learning time for the requested curve."""
        values = self.swift_seconds if swift else self.bgp_seconds
        return percentile(values, 0.5) if values else 0.0

    def p75(self, swift: bool = True) -> float:
        """75th-percentile learning time for the requested curve."""
        values = self.swift_seconds if swift else self.bgp_seconds
        return percentile(values, 0.75) if values else 0.0

    def cdf(self, swift: bool = True) -> List[Tuple[float, float]]:
        """The CDF points of the requested curve."""
        return cdf_points(self.swift_seconds if swift else self.bgp_seconds)


def run(
    corpus: Sequence[CorpusBurst],
    config: Optional[InferenceConfig] = None,
) -> Fig8Result:
    """Compute the two learning-time distributions over a burst corpus."""
    config = config or InferenceConfig()
    swift_all: List[float] = []
    bgp_all: List[float] = []
    with_prediction = 0
    without_prediction = 0

    for burst in corpus:
        evaluation = evaluate_burst(burst, config=config)
        withdrawal_times: Dict[Prefix, float] = {}
        for message in burst.messages:
            if isinstance(message, Update):
                for prefix in message.withdrawals:
                    withdrawal_times.setdefault(prefix, message.timestamp)
        if not withdrawal_times:
            continue
        burst_start = burst.start_time
        if evaluation.made_prediction:
            with_prediction += 1
            result = evaluation.inference
            assert result is not None
            times = learning_times(
                withdrawal_times,
                burst_start,
                result.timestamp,
                result.prediction.predicted_prefixes,
            )
        else:
            without_prediction += 1
            times = learning_times(withdrawal_times, burst_start, None, ())
        swift_all.extend(times.swift_seconds)
        bgp_all.extend(times.bgp_seconds)

    return Fig8Result(
        swift_seconds=swift_all,
        bgp_seconds=bgp_all,
        bursts_with_prediction=with_prediction,
        bursts_without_prediction=without_prediction,
    )


def format_result(result: Fig8Result) -> str:
    """Render the learning-time percentiles next to the paper's."""
    rows = [
        (
            "SWIFT",
            round(result.median(swift=True), 1),
            round(result.p75(swift=True), 1),
            2.0,
            9.0,
        ),
        (
            "BGP",
            round(result.median(swift=False), 1),
            round(result.p75(swift=False), 1),
            13.0,
            32.0,
        ),
    ]
    table = format_table(
        ["Curve", "median (s)", "p75 (s)", "paper median", "paper p75"],
        rows,
        title="Fig. 8 - learning time of withdrawals",
    )
    return (
        f"{table}\n"
        f"bursts with / without an accepted prediction: "
        f"{result.bursts_with_prediction} / {result.bursts_without_prediction}"
    )
