"""Binary-classification scoring of SWIFT inferences (§6.2, §6.3).

The paper evaluates inferences as a binary classification over prefixes:

* §6.2 (failure localisation, Fig. 6) — positives are the prefixes withdrawn
  anywhere in the burst (``W``); the inference's "positives" (``W'``) are the
  prefixes whose path traversed the inferred links.  TPR = |W' ∩ W| / |W|,
  FPR = |W' − W| / |negatives| where the negatives are all prefixes announced
  on the session before the burst and not withdrawn during it.

* §6.3 (withdrawal prediction, Table 2) — identical, except that only the
  prefixes withdrawn *after* the inference count as positives (CPR), since
  rerouting already-withdrawn prefixes has no value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Set

from repro.bgp.prefix import Prefix

__all__ = ["ClassificationCounts", "classify_inference", "classify_prediction"]


@dataclass(frozen=True)
class ClassificationCounts:
    """Confusion-matrix counts plus the derived rates."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def tpr(self) -> float:
        """True positive rate (recall); 1.0 when there are no positives."""
        positives = self.true_positives + self.false_negatives
        if positives == 0:
            return 1.0
        return self.true_positives / positives

    @property
    def fpr(self) -> float:
        """False positive rate; 0.0 when there are no negatives."""
        negatives = self.false_positives + self.true_negatives
        if negatives == 0:
            return 0.0
        return self.false_positives / negatives

    @property
    def precision(self) -> float:
        """Precision; 1.0 when nothing was predicted."""
        predicted = self.true_positives + self.false_positives
        if predicted == 0:
            return 1.0
        return self.true_positives / predicted

    @property
    def predicted_count(self) -> int:
        """Number of prefixes the inference would reroute."""
        return self.true_positives + self.false_positives


def classify_inference(
    predicted: Iterable[Prefix],
    withdrawn_in_burst: Iterable[Prefix],
    session_prefixes: Iterable[Prefix],
) -> ClassificationCounts:
    """Score an inference the way Fig. 6 does.

    Parameters
    ----------
    predicted:
        Prefixes whose path traverses the inferred links (what SWIFT reroutes).
    withdrawn_in_burst:
        All prefixes withdrawn over the *entire* burst (the positives).
    session_prefixes:
        Every prefix announced on the session before the burst (positives +
        negatives universe).
    """
    predicted_set = set(predicted)
    withdrawn_set = set(withdrawn_in_burst)
    universe = set(session_prefixes) | withdrawn_set
    negatives = universe - withdrawn_set

    tp = len(predicted_set & withdrawn_set)
    fp = len(predicted_set & negatives)
    fn = len(withdrawn_set - predicted_set)
    tn = len(negatives - predicted_set)
    return ClassificationCounts(
        true_positives=tp, false_positives=fp, false_negatives=fn, true_negatives=tn
    )


def classify_prediction(
    predicted: Iterable[Prefix],
    withdrawn_before_inference: Iterable[Prefix],
    withdrawn_in_burst: Iterable[Prefix],
    session_prefixes: Iterable[Prefix],
) -> ClassificationCounts:
    """Score the *prediction of future withdrawals* the way Table 2 does.

    Positives are only the prefixes withdrawn after the inference was made;
    the already-withdrawn prefixes are excluded from both the prediction and
    the positives (they carry no fast-reroute value), while the negatives are
    unchanged with respect to :func:`classify_inference`.
    """
    predicted_set = set(predicted)
    withdrawn_before = set(withdrawn_before_inference)
    withdrawn_total = set(withdrawn_in_burst)
    future_positives = withdrawn_total - withdrawn_before
    universe = set(session_prefixes) | withdrawn_total
    negatives = universe - withdrawn_total

    future_predicted = predicted_set - withdrawn_before
    tp = len(future_predicted & future_positives)
    fp = len(future_predicted & negatives)
    fn = len(future_positives - future_predicted)
    tn = len(negatives - future_predicted)
    return ClassificationCounts(
        true_positives=tp, false_positives=fp, false_negatives=fn, true_negatives=tn
    )
