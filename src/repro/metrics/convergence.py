"""Convergence metrics: learning times and downtime series.

* :func:`learning_times` reproduces Fig. 8: for each withdrawal of a burst,
  how long after the burst start the router *learns* it — at the withdrawal's
  own arrival time for plain BGP, or at the prediction time when SWIFT
  predicted the prefix.
* :func:`downtime_series` reproduces Fig. 9(a) / Table 1: given per-probe
  recovery times, the fraction of probes still blacked out over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.bgp.prefix import Prefix

__all__ = ["LearningTimeResult", "downtime_series", "learning_times"]


@dataclass(frozen=True)
class LearningTimeResult:
    """Per-burst learning times for BGP and for SWIFT."""

    bgp_seconds: Tuple[float, ...]
    swift_seconds: Tuple[float, ...]

    @property
    def bgp_median(self) -> float:
        """Median BGP learning time."""
        ordered = sorted(self.bgp_seconds)
        return ordered[len(ordered) // 2] if ordered else 0.0

    @property
    def swift_median(self) -> float:
        """Median SWIFT learning time."""
        ordered = sorted(self.swift_seconds)
        return ordered[len(ordered) // 2] if ordered else 0.0


def learning_times(
    withdrawal_times: Mapping[Prefix, float],
    burst_start: float,
    prediction_time: Optional[float],
    predicted_prefixes: Iterable[Prefix],
) -> LearningTimeResult:
    """Compute per-withdrawal learning times for BGP and SWIFT.

    Parameters
    ----------
    withdrawal_times:
        Arrival time of every withdrawal of the burst (prefix -> timestamp).
    burst_start:
        Timestamp of the first message of the burst.
    prediction_time:
        Timestamp at which SWIFT's accepted inference fired (``None`` when
        SWIFT made no prediction for this burst — e.g. the burst stayed below
        the triggering threshold — in which case SWIFT degenerates to BGP).
    predicted_prefixes:
        The prefixes covered by the accepted inference.
    """
    predicted = set(predicted_prefixes)
    bgp: List[float] = []
    swift: List[float] = []
    for prefix, timestamp in withdrawal_times.items():
        bgp_delay = max(0.0, timestamp - burst_start)
        bgp.append(bgp_delay)
        if prediction_time is not None and prefix in predicted:
            swift.append(max(0.0, min(prediction_time, timestamp) - burst_start))
        else:
            swift.append(bgp_delay)
    return LearningTimeResult(bgp_seconds=tuple(bgp), swift_seconds=tuple(swift))


def downtime_series(
    recovery_times: Sequence[float],
    failure_time: float = 0.0,
    horizon: Optional[float] = None,
    step: float = 1.0,
) -> List[Tuple[float, float]]:
    """Packet-loss percentage over time, from per-probe recovery times.

    Each probe is considered blacked out from ``failure_time`` until its
    recovery time; the returned series samples the fraction of probes still
    down every ``step`` seconds, which is exactly what Fig. 9(a) plots.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    if not recovery_times:
        return [(failure_time, 0.0)]
    end = horizon if horizon is not None else max(recovery_times)
    series: List[Tuple[float, float]] = []
    current = failure_time
    total = len(recovery_times)
    while current <= end + step:
        down = sum(1 for recovery in recovery_times if recovery > current)
        series.append((current, 100.0 * down / total))
        current += step
    return series


def max_downtime(recovery_times: Sequence[float], failure_time: float = 0.0) -> float:
    """Downtime of the slowest probe (what Table 1 reports)."""
    if not recovery_times:
        return 0.0
    return max(recovery_times) - failure_time
