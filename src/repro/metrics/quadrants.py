"""Quadrant analysis of inference quality (Fig. 6).

The paper plots each burst's (FPR, TPR) point and reads the figure by
quadrant: top-left = very good inferences (high TPR, low FPR), top-right =
over-estimations, bottom-left = under-estimations, bottom-right = bad
inferences (the paper reports SWIFT never lands there).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Sequence, Tuple

__all__ = ["Quadrant", "quadrant_of", "quadrant_shares"]


class Quadrant(Enum):
    """The four quadrants of the TPR/FPR plane (50% cut on both axes)."""

    TOP_LEFT = "good"
    TOP_RIGHT = "overestimate"
    BOTTOM_LEFT = "underestimate"
    BOTTOM_RIGHT = "bad"


def quadrant_of(tpr: float, fpr: float, cut: float = 0.5) -> Quadrant:
    """Classify one (TPR, FPR) point into its quadrant."""
    if not 0.0 <= tpr <= 1.0 or not 0.0 <= fpr <= 1.0:
        raise ValueError("rates must be in [0, 1]")
    high_tpr = tpr >= cut
    high_fpr = fpr > cut
    if high_tpr and not high_fpr:
        return Quadrant.TOP_LEFT
    if high_tpr and high_fpr:
        return Quadrant.TOP_RIGHT
    if not high_tpr and not high_fpr:
        return Quadrant.BOTTOM_LEFT
    return Quadrant.BOTTOM_RIGHT


def quadrant_shares(
    points: Iterable[Tuple[float, float]], cut: float = 0.5
) -> Dict[Quadrant, float]:
    """Fraction of (TPR, FPR) points in each quadrant."""
    counts: Dict[Quadrant, int] = {quadrant: 0 for quadrant in Quadrant}
    total = 0
    for tpr, fpr in points:
        counts[quadrant_of(tpr, fpr, cut)] += 1
        total += 1
    if total == 0:
        return {quadrant: 0.0 for quadrant in Quadrant}
    return {quadrant: count / total for quadrant, count in counts.items()}
