"""Distribution helpers: percentiles, CDFs and box statistics.

Used by every harness that reproduces a CDF (Fig. 2(b), Fig. 8), a box plot
(Fig. 2(a), Fig. 7) or a percentile table (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["cdf_points", "percentile", "summarize", "DistributionSummary"]


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (``fraction`` in [0, 1])."""
    if not values:
        raise ValueError("cannot take the percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = fraction * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    weight = rank - lower
    return float(ordered[lower] * (1 - weight) + ordered[upper] * weight)


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) points, sorted by value."""
    if not values:
        return []
    ordered = sorted(values)
    total = len(ordered)
    return [(value, (index + 1) / total) for index, value in enumerate(ordered)]


def fraction_at_most(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= threshold (a single CDF evaluation)."""
    if not values:
        return 0.0
    return sum(1 for value in values if value <= threshold) / len(values)


def fraction_above(values: Sequence[float], threshold: float) -> float:
    """Fraction of values strictly above threshold."""
    if not values:
        return 0.0
    return sum(1 for value in values if value > threshold) / len(values)


@dataclass(frozen=True)
class DistributionSummary:
    """Box-plot style summary of one distribution."""

    count: int
    mean: float
    minimum: float
    p5: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form, convenient for table rendering."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "p5": self.p5,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p95": self.p95,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> DistributionSummary:
    """Compute the box statistics the paper's box plots show (5/25/50/75/95)."""
    if not values:
        raise ValueError("cannot summarise an empty sequence")
    ordered = sorted(float(v) for v in values)
    return DistributionSummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        minimum=ordered[0],
        p5=percentile(ordered, 0.05),
        p25=percentile(ordered, 0.25),
        median=percentile(ordered, 0.50),
        p75=percentile(ordered, 0.75),
        p95=percentile(ordered, 0.95),
        maximum=ordered[-1],
    )
