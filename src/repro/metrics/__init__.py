"""Evaluation metrics used by the paper's §6.

* :mod:`repro.metrics.classification` — TPR / FPR / CPR scoring of inferences
  against burst ground truth (Fig. 6, Table 2).
* :mod:`repro.metrics.quadrants` — the quadrant binning of Fig. 6.
* :mod:`repro.metrics.distributions` — CDFs, percentiles and box statistics
  (Fig. 2, Fig. 7, Fig. 8).
* :mod:`repro.metrics.convergence` — learning-time computation (Fig. 8) and
  downtime series (Table 1, Fig. 9).
* :mod:`repro.metrics.tables` — plain-text table rendering for the harnesses.
"""

from repro.metrics.classification import (
    ClassificationCounts,
    classify_inference,
    classify_prediction,
)
from repro.metrics.convergence import downtime_series, learning_times
from repro.metrics.distributions import cdf_points, percentile, summarize
from repro.metrics.quadrants import Quadrant, quadrant_of, quadrant_shares
from repro.metrics.tables import format_table

__all__ = [
    "ClassificationCounts",
    "Quadrant",
    "cdf_points",
    "classify_inference",
    "classify_prediction",
    "downtime_series",
    "format_table",
    "learning_times",
    "percentile",
    "quadrant_of",
    "quadrant_shares",
    "summarize",
]
