"""Plain-text table rendering for the experiment harnesses."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple aligned text table.

    Numbers are formatted compactly (floats to 3 significant decimals); the
    result is what the benchmark harnesses print so that each reproduced
    table/figure can be compared with the paper at a glance.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}".rstrip("0").rstrip(".") or "0"
        return str(cell)

    formatted_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in formatted_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
