"""The ingestion daemon's checkpointed manifest (``MANIFEST.json``).

One JSON document at the ingest root records, per feed, everything the
daemon must know to resume after ``kill -9``:

* ``sealed`` — one entry per sealed segment: sequence number, ``.cols``
  file name, row count, whole-file CRC32, byte size, first/last row
  timestamps and the feed offset the segment ingested through;
* ``open_seq`` — the sequence number of the current *open* segment (its
  append log, ``seg-<N>.log``, holds the unsealed tail);
* ``next_offset`` / ``last_time`` — the feed read offset and the parser's
  monotonicity watermark *as of the last seal*: the resume floor when the
  open log is missing or empty;
* ``failed`` — the casualty record a ``strict=False`` daemon leaves behind
  when a feed exhausts its retries (surviving feeds keep ingesting);
* ``complete`` — the feed drained to EOF and its final segment sealed.

The manifest is only ever replaced atomically
(:func:`repro.util.atomic.write_atomic`): a crash at any point leaves
either the previous checkpoint or the new one, never a torn JSON.  The
ordering contract with the segment roll (flush log, write ``.cols``,
*then* update the manifest, then unlink the log) is what makes recovery
unambiguous — see :mod:`repro.ingest.segments`.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, List, Optional

from repro.util.atomic import write_atomic

__all__ = ["MANIFEST_NAME", "MANIFEST_VERSION", "IngestManifestError", "Manifest"]

MANIFEST_NAME = "MANIFEST.json"

#: Bump when the manifest document layout changes.
MANIFEST_VERSION = 1


class IngestManifestError(RuntimeError):
    """The manifest (or a segment it vouches for) failed an integrity check."""


def _fresh_feed_state() -> dict:
    return {
        "open_seq": 0,
        "next_offset": 0,
        "last_time": None,
        "sealed": [],
        "failed": None,
        "complete": False,
    }


class Manifest:
    """In-memory mirror of ``MANIFEST.json``; :meth:`save` checkpoints it."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.path = os.path.join(root, MANIFEST_NAME)
        self.feeds: Dict[str, dict] = {}

    @classmethod
    def load(cls, root: str) -> "Manifest":
        """Read the manifest at ``root`` (an absent one loads empty).

        A present-but-unreadable manifest raises
        :class:`IngestManifestError`: atomic replacement means a torn
        manifest cannot be a crash artifact, so damage is real corruption
        and silently restarting from row zero would re-ingest (duplicate)
        everything the sealed segments already hold.
        """
        manifest = cls(root)
        try:
            with open(manifest.path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return manifest
        except (OSError, ValueError) as error:
            raise IngestManifestError(
                f"{manifest.path}: unreadable manifest ({error})"
            ) from error
        version = document.get("version")
        if version != MANIFEST_VERSION:
            raise IngestManifestError(
                f"{manifest.path}: manifest v{version}, running code expects "
                f"v{MANIFEST_VERSION}"
            )
        manifest.feeds = document.get("feeds") or {}
        return manifest

    def feed_state(self, name: str) -> dict:
        """The (mutable) per-feed record, created fresh on first access."""
        state = self.feeds.get(name)
        if state is None:
            state = self.feeds[name] = _fresh_feed_state()
        return state

    def sealed_rows(self, name: str) -> int:
        """Total rows across the feed's sealed segments."""
        return sum(entry["rows"] for entry in self.feed_state(name)["sealed"])

    def save(self) -> None:
        """Atomically replace ``MANIFEST.json`` with the current state."""
        document = {"version": MANIFEST_VERSION, "feeds": self.feeds}
        text = json.dumps(document, indent=2, sort_keys=True)

        def writer(temp_path: str) -> None:
            with open(temp_path, "w", encoding="utf-8") as handle:
                handle.write(text)

        write_atomic(self.path, writer)

    # -- integrity -----------------------------------------------------------

    def verify(self, feeds: Optional[List[str]] = None) -> int:
        """Check every sealed segment against its manifest entry.

        Re-reads each sealed ``.cols`` file and compares its whole-file
        CRC32, byte size and row count to what the manifest recorded at
        seal time; raises :class:`IngestManifestError` on the first
        mismatch or missing file, returns the number of segments checked.
        The crash-recovery tests run this after every ``kill -9`` — the
        acknowledged dataset must be not merely present but bit-exact.
        """
        from repro.traces.columnar_store import ColumnarTraceFile

        checked = 0
        for name in feeds if feeds is not None else sorted(self.feeds):
            for entry in self.feed_state(name)["sealed"]:
                path = os.path.join(self.root, name, entry["file"])
                try:
                    with open(path, "rb") as handle:
                        data = handle.read()
                except OSError as error:
                    raise IngestManifestError(
                        f"{path}: sealed segment unreadable ({error})"
                    ) from error
                if len(data) != entry["bytes"]:
                    raise IngestManifestError(
                        f"{path}: {len(data)} bytes, manifest records "
                        f"{entry['bytes']}"
                    )
                if zlib.crc32(data) != entry["crc"]:
                    raise IngestManifestError(f"{path}: segment CRC mismatch")
                with ColumnarTraceFile(path) as store:
                    if store.message_count != entry["rows"]:
                        raise IngestManifestError(
                            f"{path}: {store.message_count} rows, manifest "
                            f"records {entry['rows']}"
                        )
                checked += 1
        return checked
