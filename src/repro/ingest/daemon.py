"""The always-on streaming ingestion daemon.

An asyncio supervisor runs one *reader* task per feed (a collector/peer
session) and one *writer* task per feed, connected by a bounded
:class:`asyncio.Queue`:

* the **reader** connects its feed at the current resume offset and pushes
  ``(offset, line)`` pairs into the queue — ``await queue.put`` on a full
  queue is the backpressure that paces a fast feed to the writer's
  durable-append throughput;
* the **writer** drains the queue into the feed's
  :class:`~repro.ingest.segments.SegmentWriter`: parse, append, and every
  ``flush_rows`` lines (or whenever the queue runs dry) write one fsync'd
  log frame — the acknowledgement point — rolling the segment every
  ``segment_rows`` rows;
* a **watchdog** task sweeps all feeds: a reader that has not enqueued a
  line for ``stall_timeout`` seconds (a hung source, an injected
  ``hang@feed.read``) is cancelled and restarted by its supervisor with
  the shared seeded backoff (:class:`repro.util.retry.RetryPolicy` — the
  same policy the fleet replay driver retries workers with).

Reader restarts are exactly-once by construction: the in-memory resume
offset advances only after a successful ``queue.put``, so a restarted
reader re-reads precisely the lines that never reached the queue; a
*process* death instead resumes from the durable checkpoint
(:func:`~repro.ingest.segments.recover_feed`), which trails by at most the
unflushed tail — unacknowledged by definition.

A feed that exhausts ``retry.max_attempts`` consecutive no-progress
attempts is a casualty: under ``strict=True`` (default) the daemon stops
with :class:`IngestError`; under ``strict=False`` the survivors keep
ingesting, the casualty's partial segment is sealed, and the manifest
records the failure — the same graceful-degradation shape as the fleet
driver's ``failed_sessions``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.traces.validation import ValidationReport
from repro.util.retry import RetryPolicy

from repro.ingest.manifest import Manifest
from repro.ingest.segments import SegmentWriter, recover_feed

__all__ = ["FeedStatus", "IngestConfig", "IngestDaemon", "IngestError", "IngestResult"]


class IngestError(RuntimeError):
    """A feed failed permanently under ``strict=True``."""


@dataclass(frozen=True)
class IngestConfig:
    """Knobs of one daemon run (frozen, like the other config surfaces)."""

    #: Lines per fsync'd log frame when the queue is backed up (the queue
    #: running dry always forces a flush, bounding ack latency).
    flush_rows: int = 256
    #: Rows per sealed segment (the live-replay window grain).
    segment_rows: int = 4096
    #: Bounded queue depth per feed — the backpressure budget.
    queue_size: int = 1024
    #: Seconds without reader progress before the watchdog restarts it.
    stall_timeout: float = 5.0
    #: Shared backoff policy for reader reconnects and flush/roll retries.
    retry: RetryPolicy = RetryPolicy()
    #: strict=True: any permanent feed failure aborts the run.
    #: strict=False: survivors keep ingesting, the manifest records the
    #: casualty.
    strict: bool = True
    #: True only under an external supervisor (the subprocess runner):
    #: lets injected ``kill`` faults hard-exit the process.
    supervised: bool = False

    def __post_init__(self) -> None:
        if self.flush_rows < 1:
            raise ValueError("flush_rows must be at least 1")
        if self.segment_rows < 1:
            raise ValueError("segment_rows must be at least 1")
        if self.queue_size < 1:
            raise ValueError("queue_size must be at least 1")
        if self.stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive")


@dataclass
class FeedStatus:
    """Per-feed outcome of a daemon run."""

    name: str
    rows_acked: int = 0
    next_offset: int = 0
    segments_sealed: int = 0
    restarts: int = 0
    queue_high_water: int = 0
    lines_skipped: int = 0
    complete: bool = False
    failed: Optional[str] = None


@dataclass
class IngestResult:
    """Aggregate outcome of one :meth:`IngestDaemon.run`."""

    feeds: Dict[str, FeedStatus] = field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return sum(status.rows_acked for status in self.feeds.values())

    @property
    def failed_feeds(self) -> List[str]:
        return sorted(
            name for name, status in self.feeds.items() if status.failed is not None
        )


class _FeedRuntime:
    """Mutable in-loop state of one feed (reader progress, watchdog clock)."""

    def __init__(self, feed, writer: SegmentWriter, queue: "asyncio.Queue") -> None:
        self.feed = feed
        self.writer = writer
        self.queue = queue
        self.next_offset = writer.next_offset
        self.rows_read = 0
        self.last_progress: Optional[float] = None
        self.reader_task: Optional[asyncio.Task] = None
        self.stalled = False
        self.status = FeedStatus(name=feed.name)


_EOF = object()


async def _execute_feed_fault(injector, site: str, key: str, supervised: bool):
    """Async-aware twin of :meth:`FaultInjector.fire` for reader sites.

    ``hang`` must not block the event loop (the watchdog has to keep
    running to catch it), so it sleeps *asynchronously*; the other kinds
    match ``fire`` semantics.  Returns the spec for ``corrupt`` so the
    reader can mangle the line text.
    """
    from repro.testing import faults

    if injector is None:
        return None
    spec = injector.check(site, key=key)
    if spec is None:
        return None
    if spec.kind == "hang":
        await asyncio.sleep(spec.hang_seconds)
        raise faults.InjectedFault(f"injected hang at {site} ({key}) outlived its sleep")
    if spec.kind == "io_error":
        raise faults.InjectedIOError(f"injected IO error at {site} ({key})")
    if spec.kind == "kill":
        if supervised:
            import os

            os._exit(3)
        raise faults.InjectedFault(
            f"injected kill at {site} ({key}) outside a supervised daemon"
        )
    if spec.kind == "crash":
        raise faults.InjectedFault(f"injected crash at {site} ({key})")
    return spec  # corrupt: the reader owns the line damage


def _mangle_line(text: str) -> str:
    """Deterministically damage a feed line so it fails line validation."""
    return "corrupt<" + text


class IngestDaemon:
    """Supervises live feeds into crash-safe rolling segments.

    ``ack`` (optional) is called as ``ack(feed_name, rows_acked,
    next_offset)`` after every durable flush and seal — the hook the
    subprocess runner uses to report acknowledged progress to the
    crash-recovery tests *after* the corresponding fsync returned.
    """

    def __init__(
        self,
        root: str,
        feeds: Sequence,
        config: Optional[IngestConfig] = None,
        ack: Optional[Callable[[str, int, int], None]] = None,
    ) -> None:
        names = [feed.name for feed in feeds]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate feed names: {names}")
        self.root = root
        self.feeds = list(feeds)
        self.config = config if config is not None else IngestConfig()
        self._ack = ack

    def run(self) -> IngestResult:
        """Recover, ingest every feed to EOF, seal, and checkpoint.

        Synchronous wrapper around the asyncio supervisor — the daemon owns
        its event loop for the duration of the run.
        """
        return asyncio.run(self._run())

    # -- supervisor ----------------------------------------------------------

    async def _run(self) -> IngestResult:
        config = self.config
        manifest = Manifest.load(self.root)
        runtimes: List[_FeedRuntime] = []
        for feed in self.feeds:
            recovery = recover_feed(self.root, feed.name, manifest)
            writer = SegmentWriter(
                self.root,
                feed.name,
                manifest,
                recovery=recovery,
                supervised=config.supervised,
            )
            queue: asyncio.Queue = asyncio.Queue(maxsize=config.queue_size)
            runtimes.append(_FeedRuntime(feed, writer, queue))

        watchdog = asyncio.create_task(self._watchdog(runtimes))
        supervisors = [
            asyncio.create_task(self._run_feed(manifest, state)) for state in runtimes
        ]
        try:
            outcomes = await asyncio.gather(*supervisors, return_exceptions=True)
        finally:
            watchdog.cancel()
            for state in runtimes:
                if state.reader_task is not None:
                    state.reader_task.cancel()
            for state in runtimes:
                state.writer.close()
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome

        result = IngestResult()
        for state in runtimes:
            status = state.status
            status.rows_acked = state.writer.rows_acked
            status.next_offset = state.writer.next_offset
            status.segments_sealed = len(
                manifest.feed_state(state.feed.name)["sealed"]
            )
            status.lines_skipped = state.writer.line_report.skipped_total
            result.feeds[status.name] = status
        return result

    async def _watchdog(self, runtimes: List[_FeedRuntime]) -> None:
        """Cancel readers that stopped making progress (heartbeat check)."""
        config = self.config
        interval = min(1.0, config.stall_timeout / 4)
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(interval)
            now = loop.time()
            for state in runtimes:
                task = state.reader_task
                if task is None or task.done() or state.last_progress is None:
                    continue
                if now - state.last_progress > config.stall_timeout:
                    state.stalled = True
                    task.cancel()

    # -- per-feed supervision ------------------------------------------------

    async def _run_feed(self, manifest: Manifest, state: _FeedRuntime) -> None:
        """Supervise one feed: restartable reader + writer, then seal."""
        config = self.config
        writer_task = asyncio.create_task(self._drain_feed(manifest, state))
        failure: Optional[str] = None
        attempt = 0
        try:
            while True:
                rows_before = state.rows_read
                state.stalled = False
                state.last_progress = asyncio.get_running_loop().time()
                state.reader_task = asyncio.create_task(self._read_feed(state))
                try:
                    await state.reader_task
                    break  # EOF: the feed drained cleanly
                except asyncio.CancelledError:
                    if not state.stalled:
                        raise  # daemon shutdown, not a watchdog restart
                    error: Exception = TimeoutError(
                        f"feed {state.feed.name} stalled for >"
                        f"{config.stall_timeout:g}s"
                    )
                except (OSError, RuntimeError) as caught:
                    error = caught
                finally:
                    state.reader_task = None
                # Progress resets the attempt clock: only *consecutive*
                # no-progress failures exhaust the policy (same contract as
                # the fleet driver's per-session retries).
                attempt = attempt + 1 if state.rows_read == rows_before else 1
                state.status.restarts += 1
                if attempt >= config.retry.max_attempts:
                    failure = f"{type(error).__name__}: {error}"
                    break
                await asyncio.sleep(config.retry.delay(attempt))
        finally:
            # Hand the writer its EOF without blocking on a full queue in
            # case the writer itself already died (nothing would drain it).
            while not writer_task.done():
                try:
                    state.queue.put_nowait(_EOF)
                    break
                except asyncio.QueueFull:
                    await asyncio.sleep(0.01)
            drain_error = None
            try:
                await writer_task
            except Exception as caught:  # noqa: BLE001 - re-raised below
                drain_error = caught
        if drain_error is not None:
            failure = failure or f"{type(drain_error).__name__}: {drain_error}"
        await self._finish_feed(manifest, state, failure)

    async def _finish_feed(
        self, manifest: Manifest, state: _FeedRuntime, failure: Optional[str]
    ) -> None:
        """Seal the feed's tail and checkpoint its final manifest record."""
        feed_state = manifest.feed_state(state.feed.name)
        try:
            state.writer.flush()
            if state.writer.open_rows:
                state.writer.roll()
        except Exception as error:  # noqa: BLE001 - recorded as the casualty
            failure = failure or f"{type(error).__name__}: {error}"
        if failure is not None:
            state.status.failed = failure
            feed_state["failed"] = {"error": failure}
            manifest.save()
            if self.config.strict:
                raise IngestError(f"feed {state.feed.name} failed: {failure}")
            return
        state.status.complete = True
        feed_state["complete"] = True
        manifest.save()
        self._acknowledge(state)

    # -- reader --------------------------------------------------------------

    async def _read_feed(self, state: _FeedRuntime) -> None:
        """One reader incarnation: connect at the resume offset, enqueue."""
        from repro.testing import faults

        injector = faults.active_injector()
        feed = state.feed
        # Must use the async-aware twin, not injector.fire(): fire()'s hang
        # kind sleeps synchronously, which on the event loop would also
        # freeze the watchdog meant to catch the hang.
        await _execute_feed_fault(
            injector, "feed.connect", feed.name, self.config.supervised
        )
        loop = asyncio.get_running_loop()
        rate = getattr(feed, "rate", None)
        for offset, line in feed.connect(state.next_offset):
            spec = await _execute_feed_fault(
                injector, "feed.read", feed.name, self.config.supervised
            )
            if spec is not None:
                line = _mangle_line(line)
            await state.queue.put((offset, line))
            # Advance the resume offset only once the line is safely in the
            # pipeline: a reader restarted past this point must not re-read
            # it (duplicate), nor skip an unqueued one (loss).
            state.next_offset = offset + 1
            state.rows_read += 1
            state.last_progress = loop.time()
            depth = state.queue.qsize()
            if depth > state.status.queue_high_water:
                state.status.queue_high_water = depth
            if rate:
                await asyncio.sleep(1.0 / rate)
            else:
                # queue.put on a non-full queue never yields; give the
                # writer and watchdog the loop once per line.
                await asyncio.sleep(0)

    # -- writer --------------------------------------------------------------

    async def _drain_feed(self, manifest: Manifest, state: _FeedRuntime) -> None:
        """Drain the queue into the segment writer; flush and roll."""
        config = self.config
        writer = state.writer
        while True:
            item = await state.queue.get()
            if item is _EOF:
                break
            offset, line = item
            writer.add_line(offset, line)
            if writer.pending_lines >= config.flush_rows or state.queue.empty():
                await self._flush_with_retry(state)
            if writer.open_rows >= config.segment_rows:
                await self._roll_with_retry(state)

    async def _flush_with_retry(self, state: _FeedRuntime) -> None:
        await self._durable_with_retry(state, state.writer.flush)

    async def _roll_with_retry(self, state: _FeedRuntime) -> None:
        await self._durable_with_retry(state, state.writer.roll)

    async def _durable_with_retry(self, state: _FeedRuntime, operation) -> None:
        """Run a durability operation under the shared retry policy.

        Flush failures truncate the log to its durable end before raising,
        and roll is re-entrant across its phases, so retrying the bare
        operation is always safe.
        """
        retry = self.config.retry
        attempt = 0
        while True:
            try:
                operation()
            except (OSError, RuntimeError) as error:
                attempt += 1
                if attempt >= retry.max_attempts:
                    raise type(error)(
                        f"feed {state.feed.name}: {operation.__name__} failed "
                        f"after {attempt} attempts: {error}"
                    ) from error
                await asyncio.sleep(retry.delay(attempt))
            else:
                self._acknowledge(state)
                return

    def _acknowledge(self, state: _FeedRuntime) -> None:
        if self._ack is not None:
            self._ack(
                state.feed.name, state.writer.rows_acked, state.writer.next_offset
            )
