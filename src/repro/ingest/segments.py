"""Rolling columnar segments with a crash-safe append log.

Each feed ingests into a directory of its own under the ingest root::

    <root>/<feed>/seg-00000.cols     sealed segments (mmap column store)
    <root>/<feed>/seg-00002.log      the open segment's append log
    <root>/MANIFEST.json             the shared checkpoint (one per root)

A segment lives twice.  While *open* it is an in-memory
:class:`~repro.traces.columnar.ColumnarTrace` shadowed by an append log
(:class:`~repro.traces.columnar_store.SegmentAppendLog`) whose frames hold
the raw feed lines plus a checkpoint token ``{offset, last_time}``; a
frame is acknowledged once ``fsync`` returns.  At *roll* time the trace is
sealed into an ordinary ``.cols`` column store and the log is retired.

**The roll ordering is the recovery contract.**  :meth:`SegmentWriter.roll`
performs, in order: (1) flush + fsync the log, (2) atomically write
``seg-<N>.cols``, (3) atomically update the manifest (segment entry +
``open_seq`` bump), (4) unlink ``seg-<N>.log``.  Recovery
(:func:`recover_feed`) inverts each crash window unambiguously:

* died before (3): the manifest does not know the ``.cols`` — the log is
  the authority, so any orphan ``seg-<N>.cols`` with ``N >= open_seq`` is
  deleted and the open segment is rebuilt from the log (the re-roll later
  rewrites it from the same rows);
* died after (3) but before (4): the rows are sealed — the stale
  ``seg-<N>.log`` with ``N`` already sealed (or below ``open_seq``) is
  deleted, because replaying it would ingest every row twice;
* died mid-append: the log's torn tail fails its frame CRC and is
  truncated; a torn frame was never fsync'd, hence never acknowledged.

Rebuilding replays the log's lines through the same incremental parser
(:class:`RowParser`) with the watermark the manifest checkpointed at the
last seal, so the recovered rows are byte-identical to the pre-crash open
trace — no acknowledged row is lost, no row appears twice.

Fault sites: ``segment.append`` fires per flush (key ``<feed>:<seq>``);
``segment.roll`` fires once per roll *phase* (keys ``<feed>:<seq>:start``
/ ``:sealed`` / ``:manifest``), bracketing exactly the three crash windows
above.
"""

from __future__ import annotations

import os
import re
import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.traces.columnar import ColumnarTrace
from repro.traces.columnar_store import SegmentAppendLog, write_trace
from repro.traces.mrt import TraceRecord
from repro.traces.validation import TraceValidationError, ValidationReport
from repro.util.atomic import fsync_directory, write_atomic

from repro.ingest.manifest import Manifest

__all__ = ["FeedRecovery", "RowParser", "SegmentWriter", "recover_feed"]

_SEGMENT_FILE = re.compile(r"^seg-(\d+)\.(log|cols)$")


def _log_name(seq: int) -> str:
    return f"seg-{seq:05d}.log"


def _cols_name(seq: int) -> str:
    return f"seg-{seq:05d}.cols"


def _fire(site: str, key: str, supervised: bool) -> None:
    """Consult the fault harness at an ingest hook (no-op when idle)."""
    from repro.testing import faults

    injector = faults.active_injector()
    if injector is not None:
        injector.fire(site, key=key, in_worker=supervised)


class RowParser:
    """Incremental twin of :func:`repro.traces.mrt.records_to_columnar`.

    Applies the same per-record checks (non-positive peer AS, non-monotone
    timestamp), the same column appends and the same attribute interning —
    but one record at a time, with the monotonicity watermark
    (``previous_time``) carried across flushes, segments and daemon
    restarts.  Feeding the same records through this parser in any
    grouping therefore produces exactly the rows one offline
    ``records_to_columnar`` pass over the whole stream would — the
    invariant behind the live-tail / offline replay parity guarantee.
    """

    def __init__(
        self,
        report: Optional[ValidationReport] = None,
        previous_time: Optional[float] = None,
    ) -> None:
        self.report = report if report is not None else ValidationReport(lenient=True)
        self.previous_time = previous_time
        # Records repeat (path, peer) pairs heavily; interning the
        # constructed attribute objects keeps the pool's value-keyed dedup
        # from rebuilding an identical PathAttributes per record.
        self._attributes_of: dict = {}

    def append(self, trace: ColumnarTrace, record: TraceRecord) -> bool:
        """Append one record to ``trace``; False if validation skipped it."""
        from repro.bgp.attributes import PathAttributes
        from repro.bgp.messages import Notification

        report = self.report
        report.checked += 1
        if record.peer_as < 1:
            report.flag(
                "invalid-peer", f"record {report.checked}: peer AS {record.peer_as}"
            )
            return False
        if self.previous_time is not None and record.timestamp < self.previous_time:
            report.flag(
                "non-monotone-timestamp",
                f"record {report.checked}: {record.timestamp} after "
                f"{self.previous_time}",
            )
            return False
        self.previous_time = record.timestamp
        if record.type == "W":
            assert record.prefix is not None
            trace.withdraw(record.timestamp, record.peer_as, record.prefix)
        elif record.type in ("A", "R"):
            assert record.prefix is not None and record.as_path is not None
            key = (record.as_path.asns, record.peer_as)
            attributes = self._attributes_of.get(key)
            if attributes is None:
                attributes = self._attributes_of[key] = PathAttributes(
                    as_path=record.as_path,
                    next_hop=record.as_path.first_hop or record.peer_as,
                )
            trace.announce(record.timestamp, record.peer_as, record.prefix, attributes)
        elif record.type == "S":
            trace.append(
                Notification(timestamp=record.timestamp, peer_as=record.peer_as)
            )
        return True


@dataclass
class FeedRecovery:
    """What :func:`recover_feed` reconstructed for one feed."""

    open_seq: int
    #: Feed offset to resume reading at (everything before it is durable).
    next_offset: int
    #: Parser monotonicity watermark as of the last *seal* (the open log's
    #: lines re-advance it during rebuild).
    last_time: Optional[float]
    #: Raw lines of the open segment, recovered from fsync'd log frames.
    open_lines: List[str] = field(default_factory=list)
    sealed_rows: int = 0


def recover_feed(root: str, name: str, manifest: Manifest) -> FeedRecovery:
    """Repair a feed directory after a crash and reconstruct resume state.

    Applies the crash-window rules from the module docstring (sweep
    ``*.tmp`` litter, delete orphan ``.cols``, delete stale logs, truncate
    the open log's torn tail) and returns the open segment's recovered
    lines plus the offset/watermark to resume from.  Safe to run on a
    clean directory (it is the normal startup path, not a special case).
    """
    state = manifest.feed_state(name)
    directory = os.path.join(root, name)
    os.makedirs(directory, exist_ok=True)
    open_seq = state["open_seq"]
    sealed_seqs = {entry["seq"] for entry in state["sealed"]}
    for entry_name in sorted(os.listdir(directory)):
        path = os.path.join(directory, entry_name)
        if entry_name.endswith(".tmp"):
            # write_atomic cleans up on exceptions, but kill -9 skips
            # finally blocks; sweep the litter here.
            os.unlink(path)
            continue
        matched = _SEGMENT_FILE.match(entry_name)
        if matched is None:
            continue
        seq, kind = int(matched.group(1)), matched.group(2)
        if kind == "cols" and seq not in sealed_seqs:
            # Died between the sealed write and the manifest checkpoint:
            # the log is the authority, the unacknowledged .cols is rebuilt
            # at the next roll.
            os.unlink(path)
        elif kind == "log" and (seq in sealed_seqs or seq != open_seq):
            # Died between the manifest checkpoint and the log unlink:
            # these rows are already sealed; replaying the log would
            # duplicate every one of them.
            os.unlink(path)
    fsync_directory(directory)

    payloads = SegmentAppendLog.recover(os.path.join(directory, _log_name(open_seq)))
    open_lines: List[str] = []
    next_offset = state["next_offset"]
    for payload in payloads:
        open_lines.extend(payload["lines"])
        next_offset = payload["offset"]
    return FeedRecovery(
        open_seq=open_seq,
        next_offset=next_offset,
        last_time=state["last_time"],
        open_lines=open_lines,
        sealed_rows=manifest.sealed_rows(name),
    )


class SegmentWriter:
    """Appends one feed's lines into rolling, crash-safe segments.

    Lines are parsed into the open trace immediately (`add_line`) and
    buffered raw; :meth:`flush` writes them as one fsync'd log frame —
    the acknowledgement point — and :meth:`roll` seals the open trace into
    a ``.cols`` store under the ordering contract documented on the
    module.  A failed flush truncates the log back to its durable end, so
    a retry never appends after a torn frame.  ``rows_acked`` counts the
    durable rows (sealed + fsync'd open); rows parsed but not yet flushed
    are exactly the ones a crash right now would (legitimately) lose.
    """

    def __init__(
        self,
        root: str,
        feed_name: str,
        manifest: Manifest,
        recovery: Optional[FeedRecovery] = None,
        supervised: bool = False,
        line_report: Optional[ValidationReport] = None,
    ) -> None:
        self.feed_name = feed_name
        self.directory = os.path.join(root, feed_name)
        os.makedirs(self.directory, exist_ok=True)
        self._manifest = manifest
        self._state = manifest.feed_state(feed_name)
        self._supervised = supervised
        if recovery is None:
            recovery = recover_feed(root, feed_name, manifest)
        self.seq = recovery.open_seq
        self.next_offset = recovery.next_offset
        #: Line-level lenient validation (blank/malformed feed lines).
        self.line_report = (
            line_report if line_report is not None else ValidationReport(lenient=True)
        )
        self.parser = RowParser(previous_time=recovery.last_time)
        self.trace = ColumnarTrace()
        self._log = SegmentAppendLog(os.path.join(self.directory, _log_name(self.seq)))
        # Recovered lines are already durable in the log: rebuild the open
        # trace from them without re-logging.
        for line in recovery.open_lines:
            self._ingest_line(line)
        self._sealed_rows = recovery.sealed_rows
        self.rows_acked = self._sealed_rows + len(self.trace)
        self._pending: List[str] = []
        self._pending_offset = self.next_offset

    # -- parsing -------------------------------------------------------------

    def _ingest_line(self, text: str) -> None:
        """One line through lenient line parse + incremental row append."""
        line = text.strip()
        if not line or line.startswith("#"):
            return
        report = self.line_report
        report.checked += 1
        try:
            record = TraceRecord.from_line(line)
        except TraceValidationError as error:
            if not report.lenient:
                raise
            report.note(error)
            return
        self.parser.append(self.trace, record)

    # -- write path ----------------------------------------------------------

    @property
    def open_rows(self) -> int:
        """Rows in the open segment (flushed or not)."""
        return len(self.trace)

    @property
    def pending_lines(self) -> int:
        """Lines added since the last flush (at risk until then)."""
        return len(self._pending)

    def add_line(self, offset: int, text: str) -> None:
        """Parse one feed line into the open segment and buffer it raw."""
        self._ingest_line(text)
        self._pending.append(text)
        self._pending_offset = offset + 1

    def flush(self) -> int:
        """Write buffered lines as one fsync'd frame; advance the ack point.

        Raises whatever the log write raised (injected or real IO errors)
        *after* truncating the log back to its durable end, so the caller
        can simply retry — the buffered lines stay pending and the open
        trace already holds their rows.
        """
        if not self._pending:
            return 0
        _fire("segment.append", f"{self.feed_name}:{self.seq}", self._supervised)
        try:
            self._log.append(
                {
                    "lines": self._pending,
                    "offset": self._pending_offset,
                    "last_time": self.parser.previous_time,
                }
            )
            self._log.sync()
        except Exception:
            self._log.truncate_to_durable()
            raise
        count = len(self._pending)
        self._pending = []
        self.next_offset = self._pending_offset
        self.rows_acked = self._sealed_rows + len(self.trace)
        return count

    def roll(self) -> Optional[dict]:
        """Seal the open segment into a ``.cols`` store; start the next one.

        Returns the new manifest entry, or ``None`` when the open segment
        holds no rows (nothing to seal).  Re-entrant after a mid-roll
        failure: a retry skips the phases the manifest already records.
        """
        state = self._state
        key = f"{self.feed_name}:{self.seq}"
        if state["open_seq"] <= self.seq:
            _fire("segment.roll", f"{key}:start", self._supervised)
            self.flush()
            if not len(self.trace):
                return None
            trace = self.trace
            cols_name = _cols_name(self.seq)
            info: dict = {}

            def writer(temp_path: str) -> None:
                write_trace(temp_path, trace)

            def hook(temp_path: str) -> None:
                with open(temp_path, "rb") as handle:
                    data = handle.read()
                info["crc"] = zlib.crc32(data)
                info["bytes"] = len(data)

            write_atomic(os.path.join(self.directory, cols_name), writer, hook=hook)
            _fire("segment.roll", f"{key}:sealed", self._supervised)
            state["sealed"].append(
                {
                    "seq": self.seq,
                    "file": cols_name,
                    "rows": len(trace),
                    "crc": info["crc"],
                    "bytes": info["bytes"],
                    "first_time": trace.first_timestamp,
                    "last_time": trace.last_timestamp,
                    "offset_end": self.next_offset,
                }
            )
            state["open_seq"] = self.seq + 1
            state["next_offset"] = self.next_offset
            state["last_time"] = self.parser.previous_time
            self._manifest.save()
        _fire("segment.roll", f"{key}:manifest", self._supervised)
        entry = state["sealed"][-1]
        # The manifest now vouches for the .cols; the log is retired.
        self._log.close()
        log_path = os.path.join(self.directory, _log_name(self.seq))
        if os.path.exists(log_path):
            os.unlink(log_path)
        fsync_directory(self.directory)
        self._sealed_rows += entry["rows"]
        self.seq += 1
        self.trace = ColumnarTrace()
        self._log = SegmentAppendLog(
            os.path.join(self.directory, _log_name(self.seq))
        )
        self.rows_acked = self._sealed_rows
        return entry

    def close(self) -> None:
        self._log.close()
