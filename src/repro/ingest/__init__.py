"""Always-on streaming ingestion: supervised live feeds into crash-safe
rolling columnar segments, with windowed live inference over the tail.

The paper's SWIFT runs *on the live feed* of a router's BGP sessions; this
package is that always-on half of the reproduction.  An asyncio supervisor
(:class:`IngestDaemon`) runs one reader per collector session over a
rate-controlled source (:class:`SyntheticFeed`), each feeding a bounded
queue into a :class:`SegmentWriter` that appends into rolling segments —
an fsync'd append log while open, an ordinary ``.cols`` column store once
sealed — checkpointed by an atomically-replaced ``MANIFEST.json``.  A
``kill -9`` at any point recovers to the last acknowledged row with no
loss and no duplicates (:func:`recover_feed`), and :class:`LiveReplay`
runs the same inference over each sealed window that offline
``month_replay`` runs over the whole stream, byte-identically.

See ``src/repro/ingest/README.md`` for the lifecycle, the manifest format
and the backpressure / recovery contracts.
"""

from repro.ingest.daemon import (
    FeedStatus,
    IngestConfig,
    IngestDaemon,
    IngestError,
    IngestResult,
)
from repro.ingest.feeds import SyntheticFeed
from repro.ingest.live import LiveReplay, iter_feed_windows, open_tail, replay_feed
from repro.ingest.manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    IngestManifestError,
    Manifest,
)
from repro.ingest.segments import FeedRecovery, RowParser, SegmentWriter, recover_feed

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "FeedRecovery",
    "FeedStatus",
    "IngestConfig",
    "IngestDaemon",
    "IngestError",
    "IngestManifestError",
    "IngestResult",
    "LiveReplay",
    "Manifest",
    "RowParser",
    "SegmentWriter",
    "SyntheticFeed",
    "iter_feed_windows",
    "open_tail",
    "recover_feed",
    "replay_feed",
]
