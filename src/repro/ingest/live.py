"""Windowed inference over a feed's ingested tail.

The live half of the §6 replay story: instead of waiting for a complete
month dump, inference runs over each segment the ingestion daemon seals —
and the contract is that it loses nothing by doing so.
:class:`LiveReplay` drives a
:class:`~repro.experiments.month_replay.StreamReplayer` (the same router
setup, batching and event accounting as offline ``replay_stream``) over
one columnar window at a time; because chunking and run-splitting never
change replay results, the accumulated
:meth:`~repro.experiments.month_replay.MonthReplayResult.signature` is
byte-identical to an offline replay over the concatenation of the same
rows — the property ``tests/test_ingest_daemon.py`` pins.

:func:`iter_feed_windows` yields a feed's ingested rows in order: every
sealed ``.cols`` segment, then (optionally) the open tail rebuilt
read-only from the append log's valid frames — so live inference can run
against a daemon that is still ingesting, or mid-recovery after a crash.
"""

from __future__ import annotations

import os
from typing import Iterator, Optional

from repro.experiments.month_replay import MonthReplayResult, StreamReplayer
from repro.traces.columnar import ColumnarTrace
from repro.traces.columnar_store import SegmentAppendLog, read_trace

from repro.ingest.manifest import Manifest
from repro.ingest.segments import RowParser, _log_name
from repro.traces.mrt import TraceRecord
from repro.traces.validation import TraceValidationError, ValidationReport

__all__ = ["LiveReplay", "iter_feed_windows", "open_tail", "replay_feed"]


def open_tail(root: str, feed_name: str, manifest: Optional[Manifest] = None) -> ColumnarTrace:
    """Rebuild the open segment's rows read-only (no truncation, no repair).

    Scans the valid frame prefix of the feed's open append log and replays
    its lines through the same incremental parser the daemon uses, seeded
    with the manifest's sealed-through watermark — the exact rows a crashed
    daemon would recover, without touching the files.
    """
    manifest = manifest if manifest is not None else Manifest.load(root)
    state = manifest.feed_state(feed_name)
    trace = ColumnarTrace()
    parser = RowParser(
        report=ValidationReport(lenient=True), previous_time=state["last_time"]
    )
    log_path = os.path.join(root, feed_name, _log_name(state["open_seq"]))
    payloads, _ = SegmentAppendLog.scan(log_path)
    for payload in payloads:
        for text in payload["lines"]:
            line = text.strip()
            if not line or line.startswith("#"):
                continue
            try:
                record = TraceRecord.from_line(line)
            except TraceValidationError:
                continue
            parser.append(trace, record)
    return trace


def iter_feed_windows(
    root: str,
    feed_name: str,
    manifest: Optional[Manifest] = None,
    include_open_tail: bool = True,
) -> Iterator[ColumnarTrace]:
    """Yield a feed's ingested rows as columnar windows, in ingest order.

    Sealed segments load off their ``.cols`` stores (each a standalone
    trace with its own pool); the open tail, if any and requested, comes
    from :func:`open_tail`.  Empty windows are skipped.
    """
    manifest = manifest if manifest is not None else Manifest.load(root)
    state = manifest.feed_state(feed_name)
    for entry in state["sealed"]:
        yield read_trace(os.path.join(root, feed_name, entry["file"]))
    if include_open_tail:
        tail = open_tail(root, feed_name, manifest)
        if tail.message_count:
            yield tail


class LiveReplay:
    """Incremental (SWIFTED) replay over ingested windows.

    Construct with the session's pre-trace RIB and peer AS (plus any
    :class:`~repro.experiments.month_replay.StreamReplayer` keyword), then
    :meth:`consume` each window as the daemon seals it; :meth:`result`
    snapshots the same counters and canonical event multisets offline
    replay produces.
    """

    def __init__(self, rib, peer_as: int, **replayer_options) -> None:
        self._replayer = StreamReplayer(rib, peer_as, **replayer_options)
        self.windows_consumed = 0

    def consume(self, window: ColumnarTrace) -> None:
        """Replay one sealed (or tail) window through the live router."""
        self._replayer.feed(window)
        self.windows_consumed += 1

    def result(self) -> MonthReplayResult:
        """The accumulated replay result over every window consumed."""
        return self._replayer.result()


def replay_feed(
    root: str,
    feed_name: str,
    rib,
    peer_as: int,
    manifest: Optional[Manifest] = None,
    include_open_tail: bool = True,
    **replayer_options,
) -> MonthReplayResult:
    """Drive :class:`LiveReplay` over every window of an ingested feed."""
    live = LiveReplay(rib, peer_as, **replayer_options)
    for window in iter_feed_windows(
        root, feed_name, manifest=manifest, include_open_tail=include_open_tail
    ):
        live.consume(window)
    return live.result()
