"""Live feed sources for the ingestion daemon.

A *feed* is anything that yields ``(offset, line)`` pairs of the MRT-like
line format (:mod:`repro.traces.mrt`) from a given resume offset — the
offset is the line's ordinal in the feed, and it is the unit of the
daemon's exactly-once contract: a checkpointed offset means every line
before it is durably ingested, so a restarted daemon reconnects *at* the
checkpoint and no line is ever read twice into the dataset.

:class:`SyntheticFeed` is the offline stand-in for a live BGP collector
session: the same seeded generator the month-replay experiments use
(:mod:`repro.traces.synthetic`), rendered through the record line format.
Determinism is the point — reconnecting at offset *k* replays byte-for-byte
the lines a never-crashed reader would have seen, which is what lets the
crash-recovery tests compare a killed-and-restarted ingest against the
straight-through one.

Fault sites (:mod:`repro.testing.faults`): the daemon's reader fires
``feed.connect`` once per (re)connection and consults ``feed.read`` per
line — ``corrupt`` mangles the line text (exercising lenient line
validation), ``hang`` stalls the reader (exercising the heartbeat
watchdog), ``io_error``/``crash`` abort the read (exercising reconnect
with backoff).  The async-aware evaluation lives in
:func:`repro.ingest.daemon.IngestDaemon._read_feed`; feeds themselves are
plain synchronous iterators.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.traces.mrt import messages_to_records
from repro.traces.synthetic import SyntheticTraceConfig, SyntheticTraceGenerator

__all__ = ["SyntheticFeed"]


class SyntheticFeed:
    """A deterministic line feed derived from one synthetic collector session.

    ``rate`` (lines per second, ``None`` = unthrottled) paces the daemon's
    reader — the knob that makes an ingest run behave like a live session
    instead of a bulk load.  ``name`` defaults to ``peer-<AS>`` and names
    the feed's segment directory, its manifest record and its fault keys.
    """

    def __init__(
        self,
        config: SyntheticTraceConfig,
        peer_as: int,
        name: Optional[str] = None,
        rate: Optional[float] = None,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None for unthrottled)")
        self.config = config
        self.peer_as = peer_as
        self.name = name if name is not None else f"peer-{peer_as}"
        self.rate = rate

    def connect(self, offset: int = 0) -> Iterator[Tuple[int, str]]:
        """Yield ``(offset, line)`` pairs starting at feed offset ``offset``.

        The generator re-derives the session stream from its seed, so a
        reconnect at any offset yields exactly the lines a continuous read
        would have — skipped lines are generated and discarded, which costs
        O(offset) work but keeps the feed stateless between connections
        (the shape a real collector replay from an archive has too).
        """
        stream = SyntheticTraceGenerator(self.config).stream()

        def lines() -> Iterator[Tuple[int, str]]:
            index = 0
            for message in stream.iter_messages(self.peer_as):
                for record in messages_to_records([message]):
                    if index >= offset:
                        yield index, record.to_line()
                    index += 1

        return lines()

    def rib(self):
        """The session's pre-trace Adj-RIB-In snapshot (for replay setup)."""
        return SyntheticTraceGenerator(self.config).stream().rib_of(self.peer_as)

    def __repr__(self) -> str:
        return (
            f"SyntheticFeed({self.name!r}, peer_as={self.peer_as}, "
            f"rate={self.rate})"
        )
