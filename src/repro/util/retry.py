"""Bounded retry with exponential backoff and deterministic jitter.

One policy object serves every supervisor in the tree: the fleet replay
driver (:mod:`repro.replay.fleet`) retries failed session jobs under it,
and the streaming ingestion daemon (:mod:`repro.ingest`) restarts failed
or stalled feed readers under the *same* implementation — extracted here
so the two cannot drift.  The jitter is seeded (a pure function of
``(seed, attempt)``), so reruns sleep identically: retry timing can never
make an otherwise deterministic run diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Optional

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a supervisor retries a failing unit of work.

    ``max_attempts`` counts the first try: the default of 3 means one try
    plus two retries.  The delay before attempt ``n``'s resubmission is
    ``min(backoff_base * backoff_factor**n, backoff_max)`` stretched by a
    deterministic jitter fraction in ``[0, jitter]`` — seeded, so reruns
    sleep identically.  ``timeout`` (seconds) bounds one supervised
    attempt where the supervisor has a preemption point: the fleet driver
    applies it to pooled jobs (a worker that blows it is presumed hung and
    reclaimed), the ingestion daemon's watchdog uses its own stall
    deadline instead; supervisors without preemption ignore it.
    """

    max_attempts: int = 3
    timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")

    def delay(self, attempt: int) -> float:
        """Seconds to back off before resubmitting attempt ``attempt + 1``."""
        base = min(self.backoff_base * (self.backoff_factor**attempt), self.backoff_max)
        if self.jitter <= 0:
            return base
        fraction = Random(f"{self.seed}:{attempt}").random()
        return base * (1.0 + self.jitter * fraction)
