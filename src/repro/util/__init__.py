"""Small shared utilities with no domain knowledge.

:mod:`repro.util.retry` — the bounded-retry policy (exponential backoff +
deterministic seeded jitter) shared by the fleet replay driver and the
streaming ingestion daemon; :mod:`repro.util.atomic` — crash-safe file
writes (temp + fsync + rename) shared by the trace cache and the ingestion
manifest.
"""

from repro.util.atomic import fsync_directory, fsync_file, write_atomic
from repro.util.retry import RetryPolicy

__all__ = [
    "RetryPolicy",
    "fsync_directory",
    "fsync_file",
    "write_atomic",
]
