"""Crash-safe file replacement: temp file + fsync + rename.

The durability discipline every on-disk artifact of this tree follows —
trace-cache blobs, sealed ingestion segments, the ingestion manifest: write
the new contents to a temp file *in the destination directory*, fsync the
temp file, ``os.replace`` it over the final name, then fsync the directory
so the rename itself is durable.  A crash (or ``kill -9``) at any point
leaves either the old file or the complete new one under the final name,
never a torn hybrid.
"""

from __future__ import annotations

import os
import tempfile
from typing import Callable, Optional

__all__ = ["fsync_directory", "fsync_file", "write_atomic"]


def fsync_file(path: str) -> None:
    """Force a written file's contents to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_directory(directory: str) -> None:
    """Force a directory entry update (a rename/unlink) to stable storage.

    Best-effort: not every platform allows opening a directory for fsync.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(directory, flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_atomic(
    path: str,
    writer: Callable[[str], None],
    hook: Optional[Callable[[str], None]] = None,
) -> None:
    """Write ``path`` via temp file + fsync + rename.

    ``writer(temp_path)`` produces the file contents.  The temp file is
    ``fsync``\\ ed *before* the rename — so a crash at any point leaves
    either no entry (or the old one) or a complete new one, never a torn
    blob under the final name — and the directory is fsynced after, making
    the rename itself durable.  ``hook`` (if given) runs between the write
    and the fsync; the trace cache points it at the fault-injection
    harness so tests can corrupt or abort exactly there.  The temp file is
    removed in a ``finally`` block (surviving even
    :class:`KeyboardInterrupt` during the write), so an interrupted writer
    cannot orphan it permanently; callers that sweep ``*.tmp`` litter do so
    before calling in.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    os.close(fd)
    try:
        writer(temp_path)
        if hook is not None:
            hook(temp_path)
        fsync_file(temp_path)
        os.replace(temp_path, path)
        fsync_directory(directory)
    finally:
        if os.path.exists(temp_path):
            try:
                os.unlink(temp_path)
            except OSError:
                pass  # a stale-tmp sweep will reclaim it
