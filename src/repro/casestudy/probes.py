"""Downtime probing (the measurement methodology of §2.1.2 / §7).

The paper injects traffic towards 100 random addresses inside the withdrawn
prefixes and measures, per probe, how long packets are dropped after the
failure.  :func:`measure_downtime` reproduces that measurement against any
"forwarding over time" function, and :class:`DowntimeReport` summarises it
(max downtime for Table 1, loss-percentage series for Fig. 9(a)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bgp.prefix import Prefix
from repro.metrics.convergence import downtime_series

__all__ = ["DowntimeReport", "measure_downtime"]

#: A forwarding oracle: (prefix, time) -> next-hop AS or None (blackhole).
ForwardingOracle = Callable[[Prefix, float], Optional[int]]


@dataclass(frozen=True)
class DowntimeReport:
    """Per-probe downtimes and the derived statistics."""

    downtimes: Dict[Prefix, float]
    failure_time: float
    horizon: float

    @property
    def max_downtime(self) -> float:
        """Downtime of the slowest probe (Table 1's number)."""
        return max(self.downtimes.values()) if self.downtimes else 0.0

    @property
    def mean_downtime(self) -> float:
        """Average probe downtime."""
        if not self.downtimes:
            return 0.0
        return sum(self.downtimes.values()) / len(self.downtimes)

    def loss_series(self, step: float = 1.0) -> List[Tuple[float, float]]:
        """Packet-loss percentage over time (Fig. 9(a))."""
        recovery_times = [
            self.failure_time + downtime for downtime in self.downtimes.values()
        ]
        return downtime_series(
            recovery_times, failure_time=self.failure_time, horizon=self.horizon, step=step
        )


def measure_downtime(
    probes: Sequence[Prefix],
    forwarding: ForwardingOracle,
    working_next_hops: Sequence[int],
    failure_time: float,
    horizon: float,
    step: float = 0.1,
) -> DowntimeReport:
    """Measure per-probe downtime against a forwarding oracle.

    A probe is considered recovered at the first sampling instant at which
    the oracle maps it to a next-hop that actually reaches the destination
    after the failure (``working_next_hops``); forwarding to a dead next-hop
    or to nothing counts as loss, exactly like the blackholed testbed traffic.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    working = set(working_next_hops)
    downtimes: Dict[Prefix, float] = {}
    for probe in probes:
        recovered_at: Optional[float] = None
        current = failure_time
        while current <= horizon:
            next_hop = forwarding(probe, current)
            if next_hop is not None and next_hop in working:
                recovered_at = current
                break
            current += step
        downtime = (recovered_at - failure_time) if recovered_at is not None else (
            horizon - failure_time
        )
        downtimes[probe] = downtime
    return DowntimeReport(
        downtimes=downtimes, failure_time=failure_time, horizon=horizon
    )
