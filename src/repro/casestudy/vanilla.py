"""Vanilla (non-SWIFTED) router convergence model (Table 1).

A conventional router recovers from a remote outage one prefix at a time: it
must receive the withdrawal, re-run best-path selection, and install the new
next-hop in the FIB.  §2.1.2 measures the resulting downtime on a Cisco
Nexus 7k: roughly linear in the burst size, 109 s for 290k prefixes.

:class:`VanillaRouterModel` reproduces that behaviour analytically: each
prefix's recovery time is the later of (a) the arrival time of its withdrawal
on the preferred session and (b) the router's cumulative processing/FIB
position for it, using the per-prefix costs of
:class:`~repro.dataplane.timing.FibUpdateTimingModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import BGPMessage, Update
from repro.bgp.prefix import Prefix
from repro.bgp.speaker import BGPSpeaker
from repro.casestudy.testbed import Fig1Scenario
from repro.dataplane.timing import FibUpdateTimingModel

__all__ = ["VanillaRouterModel", "VanillaConvergenceResult"]


@dataclass(frozen=True)
class VanillaConvergenceResult:
    """Outcome of replaying a burst through the vanilla router model."""

    recovery_time_of: Dict[Prefix, float]
    failure_time: float
    total_convergence_seconds: float

    def downtime_of(self, prefix: Prefix) -> Optional[float]:
        """Downtime of one prefix, or ``None`` when it never recovered."""
        recovery = self.recovery_time_of.get(prefix)
        if recovery is None:
            return None
        return max(0.0, recovery - self.failure_time)

    def probe_downtimes(self, probes: Sequence[Prefix]) -> List[float]:
        """Downtimes of the probed prefixes (missing probes count as the max)."""
        fallback = self.total_convergence_seconds
        return [
            self.downtime_of(probe) if probe in self.recovery_time_of else fallback
            for probe in probes
        ]


class VanillaRouterModel:
    """Discrete-time model of a router converging prefix by prefix."""

    def __init__(self, timing: Optional[FibUpdateTimingModel] = None) -> None:
        self.timing = timing or FibUpdateTimingModel()

    def converge(
        self,
        withdrawal_messages: Sequence[BGPMessage],
        failure_time: float = 0.0,
        has_alternate: bool = True,
    ) -> VanillaConvergenceResult:
        """Replay a withdrawal burst and compute per-prefix recovery times.

        Each withdrawal is processed in arrival order; the router is busy for
        ``per_prefix_processing + per_prefix_install`` seconds per prefix, so
        the effective recovery time of a prefix is
        ``max(arrival_time, previous_completion) + per_prefix_cost``.
        When ``has_alternate`` is false the prefixes never recover within the
        burst (no backup path exists); the model then reports the time at
        which the withdrawal was merely processed.
        """
        per_prefix = (
            self.timing.per_prefix_processing_seconds + self.timing.per_prefix_seconds
        )
        recovery: Dict[Prefix, float] = {}
        busy_until = failure_time
        for message in withdrawal_messages:
            if not isinstance(message, Update):
                continue
            for prefix in message.withdrawals:
                if prefix in recovery:
                    continue
                start = max(message.timestamp, busy_until)
                busy_until = start + per_prefix
                recovery[prefix] = busy_until
        total = (max(recovery.values()) - failure_time) if recovery else 0.0
        if not has_alternate:
            # No backup path: processing happened but connectivity is not
            # restored until BGP converges globally; callers treat this as
            # "still down" by reading ``total_convergence_seconds``.
            recovery = {}
        return VanillaConvergenceResult(
            recovery_time_of=recovery,
            failure_time=failure_time,
            total_convergence_seconds=total,
        )

    def converge_scenario(self, scenario: Fig1Scenario) -> VanillaConvergenceResult:
        """Convenience wrapper: replay the AS 2 burst of a Fig. 1 scenario.

        Only the preferred session's withdrawals gate recovery: once the AS 2
        route is withdrawn the router falls back to the (already known) AS 3
        route and installs it — that installation is the per-prefix cost.
        """
        return self.converge(
            scenario.messages_from(2), failure_time=scenario.failure_time
        )

    def converge_scenario_with_speaker(
        self, scenario: Fig1Scenario
    ) -> VanillaConvergenceResult:
        """Replay a Fig. 1 scenario through a real :class:`BGPSpeaker`.

        Where :meth:`converge_scenario` assumes every preferred-session
        withdrawal frees its prefix to fall back, this variant actually runs
        the BGP decision process: the speaker ingests the scenario's per-peer
        tables and the whole burst through the batched path
        (:meth:`~repro.bgp.speaker.BGPSpeaker.receive_batch`, one best-path
        selection per touched prefix), and only the prefixes whose best route
        genuinely moved to a surviving neighbor go through the per-prefix
        FIB-install pipeline, ordered by their withdrawal arrival times.
        """
        speaker = BGPSpeaker(1)
        for peer_as in scenario.routes_via_peer:
            speaker.add_peer(peer_as)
        for peer_as, routes in scenario.routes_via_peer.items():
            local_pref = scenario.local_pref_of_peer.get(peer_as, 100)
            speaker.receive_batch(
                Update.announce(
                    0.0,
                    peer_as,
                    prefix,
                    PathAttributes(
                        as_path=routes[prefix], next_hop=peer_as, local_pref=local_pref
                    ),
                )
                for prefix in sorted(routes)
            )

        # First withdrawal arrival per prefix: gates when the router can even
        # start re-converging that prefix.
        arrival_of: Dict[Prefix, float] = {}
        for message in scenario.burst_messages:
            if not isinstance(message, Update):
                continue
            for prefix in message.withdrawals:
                if prefix not in arrival_of:
                    arrival_of[prefix] = message.timestamp

        changes = speaker.receive_batch(scenario.burst_messages)
        # A prefix that transiently blackholed yields both a synthetic
        # recovery and the coalesced final change; count it once.
        seen = set()
        recovered = []
        for change in changes:
            if (
                change.new is not None
                and change.new.next_hop in scenario.surviving_next_hops
                and change.prefix not in seen
            ):
                seen.add(change.prefix)
                recovered.append(change.prefix)
        recovered.sort(key=lambda prefix: arrival_of.get(prefix, scenario.failure_time))

        per_prefix = (
            self.timing.per_prefix_processing_seconds + self.timing.per_prefix_seconds
        )
        recovery: Dict[Prefix, float] = {}
        busy_until = scenario.failure_time
        for prefix in recovered:
            start = max(arrival_of.get(prefix, scenario.failure_time), busy_until)
            busy_until = start + per_prefix
            recovery[prefix] = busy_until
        total = (
            (max(recovery.values()) - scenario.failure_time) if recovery else 0.0
        )
        return VanillaConvergenceResult(
            recovery_time_of=recovery,
            failure_time=scenario.failure_time,
            total_convergence_seconds=total,
        )

    def downtime_for_burst_size(
        self, prefix_count: int, arrival_rate_per_second: float = 3000.0
    ) -> float:
        """Analytic downtime for a burst of ``prefix_count`` withdrawals.

        The downtime is dominated by the slower of the arrival process and
        the per-prefix processing pipeline, which is what makes Table 1 grow
        linearly with the burst size.
        """
        if prefix_count < 0:
            raise ValueError("prefix_count must be non-negative")
        arrival_time = prefix_count / arrival_rate_per_second
        processing_time = self.timing.per_prefix_convergence_time(prefix_count)
        return max(arrival_time, processing_time)
