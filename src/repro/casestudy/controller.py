"""The §7 alternative deployment: SWIFT controller + SDN switch.

To SWIFT an unmodified router, the paper interposes (i) a BGP-speaking
controller between the router and its peers at the control plane and (ii) an
OpenFlow switch on the data path.  The controller runs the inference and
encoding algorithms and programs the switch; the two-stage forwarding table
then spans two devices (router = tagging stage via ARP/MAC tricks, switch =
tag-matching stage).

Here the deployment is modelled as a thin composition over the same
:class:`~repro.core.swifted_router.SwiftedRouter` machinery, with an explicit
:class:`SdnSwitch` device that adds per-flow-mod programming latency — the
quantity that separates the "within 2 s" SWIFTED convergence from the 109 s
vanilla convergence in Fig. 9(a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.messages import BGPMessage
from repro.bgp.prefix import Prefix
from repro.casestudy.testbed import Fig1Scenario
from repro.core.encoding import WildcardRule
from repro.core.swifted_router import RerouteAction, SwiftConfig, SwiftedRouter
from repro.dataplane.timing import FibUpdateTimingModel

__all__ = ["SdnSwitch", "SwiftController", "SwiftedDeployment"]


@dataclass
class SdnSwitch:
    """The OpenFlow switch holding the second forwarding stage.

    ``flow_mod_seconds`` is the per-rule programming latency (OpenVSwitch and
    hardware switches program individual flow-mods in the low milliseconds).
    """

    flow_mod_seconds: float = 2e-3
    installed_rules: List[WildcardRule] = field(default_factory=list)
    programming_log: List[Tuple[float, int]] = field(default_factory=list)

    def program(self, rules: Sequence[WildcardRule], at: float) -> float:
        """Install ``rules``; returns the completion time."""
        self.installed_rules.extend(rules)
        completion = at + len(rules) * self.flow_mod_seconds
        self.programming_log.append((completion, len(rules)))
        return completion

    @property
    def rule_count(self) -> int:
        """Number of rules currently installed in the switch."""
        return len(self.installed_rules)


class SwiftController:
    """The BGP-speaking controller of the §7 deployment.

    It terminates the peers' BGP sessions (through the SWIFTED router, which
    simply relays them), runs SWIFT, and programs the SDN switch whenever an
    inference fires.
    """

    def __init__(
        self,
        local_as: int,
        switch: Optional[SdnSwitch] = None,
        config: Optional[SwiftConfig] = None,
        controller_overhead_seconds: float = 0.2,
    ) -> None:
        self.router = SwiftedRouter(local_as, config=config)
        self.switch = switch or SdnSwitch()
        self.controller_overhead_seconds = controller_overhead_seconds
        self.reroute_completions: List[Tuple[RerouteAction, float]] = []

    def add_peer(self, peer_as: int) -> None:
        """Declare an eBGP peer of the SWIFTED router."""
        self.router.add_peer(peer_as)

    def load_initial_routes(
        self, peer_as: int, routes: Mapping[Prefix, ASPath], local_pref: int = 100
    ) -> None:
        """Load a session's initial table into the controller's RIB."""
        self.router.load_initial_routes(peer_as, routes, local_pref=local_pref)

    def provision(self) -> None:
        """Pre-compute tags/backups and program the default switch rules."""
        encoded = self.router.provision()
        self.switch.program(self.router.forwarding.rules(), at=0.0)
        self._encoded = encoded

    def _program_switch(self, action: RerouteAction) -> float:
        """Push one reroute action's rules to the switch; returns completion."""
        completion = self.switch.program(
            list(action.rules),
            at=action.timestamp + self.controller_overhead_seconds,
        )
        self.reroute_completions.append((action, completion))
        return completion

    def receive(self, message: BGPMessage) -> Optional[float]:
        """Relay one BGP message; returns the reroute completion time if any."""
        action = self.router.receive(message)
        if action is None:
            return None
        return self._program_switch(action)

    def receive_all(self, messages: Sequence[BGPMessage]) -> List[float]:
        """Relay a stream of messages; returns every reroute completion time.

        The messages are handed to the router as one batch (the controller of
        §7 drains its BGP socket in bulk anyway); switch programming happens
        per resulting reroute action, timed from the action's own timestamp.
        """
        return [
            self._program_switch(action)
            for action in self.router.receive_batch(messages)
        ]

    def receive_columnar(self, source) -> List[float]:
        """Relay a columnar trace; returns every reroute completion time.

        Same semantics as :meth:`receive_all` over the materialised stream,
        but the router consumes the trace's same-peer runs directly
        (:meth:`~repro.core.swifted_router.SwiftedRouter.receive_columnar`).
        """
        return [
            self._program_switch(action)
            for action in self.router.receive_columnar(source)
        ]

    def forward(self, destination: int) -> Optional[int]:
        """Data-plane next-hop for ``destination`` through the two devices."""
        return self.router.forward(destination)


@dataclass
class SwiftedDeployment:
    """Convenience bundle: run a Fig. 1 scenario through the §7 deployment."""

    controller: SwiftController

    @classmethod
    def for_scenario(
        cls,
        scenario: Fig1Scenario,
        config: Optional[SwiftConfig] = None,
    ) -> "SwiftedDeployment":
        """Build and provision a deployment from a Fig. 1 scenario."""
        controller = SwiftController(local_as=1, config=config)
        for peer_as in scenario.routes_via_peer:
            controller.add_peer(peer_as)
        for peer_as, routes in scenario.routes_via_peer.items():
            controller.load_initial_routes(
                peer_as, routes, local_pref=scenario.local_pref_of_peer[peer_as]
            )
        controller.provision()
        return cls(controller=controller)

    def run_burst(self, scenario: Fig1Scenario) -> Optional[float]:
        """Feed the failure burst; returns the SWIFT convergence time (seconds).

        The convergence time is measured from the failure instant to the
        completion of the switch programming triggered by the first accepted
        inference — the moment all affected traffic flows again.  The burst
        is consumed in columnar form (``scenario.columnar_burst()``) through
        the router's batched run path; results are identical to replaying
        the object stream.
        """
        completions = self.controller.receive_columnar(scenario.columnar_burst())
        if not completions:
            return None
        return completions[0] - scenario.failure_time
