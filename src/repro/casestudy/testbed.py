"""The Fig. 1 testbed at router granularity.

§2.1.2 and §7 reproduce the topology of Fig. 1 with real routers: the AS 1
border router maintains eBGP sessions with AS 2, AS 3 and AS 4; AS 6
announces up to 290k prefixes; the link (5, 6) fails and the downtime of
traffic entering at AS 1 is measured with probes towards 100 random
addresses.

:func:`build_fig1_scenario` constructs that scenario as data: the per-peer
Adj-RIB-Ins of the AS 1 router (preferring the AS 2 path, as the paper's
forwarding figure shows), the burst of withdrawals AS 2 and AS 4 emit upon
the failure, the set of next-hops that still reach the affected prefixes
after the failure (AS 3), and the probe prefixes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.messages import BGPMessage, Update
from repro.bgp.prefix import Prefix, prefix_block

__all__ = ["Fig1Scenario", "build_fig1_scenario"]


@dataclass
class Fig1Scenario:
    """All the data describing one run of the Fig. 1 experiment."""

    prefix_count: int
    prefixes: List[Prefix]
    routes_via_peer: Dict[int, Dict[Prefix, ASPath]]
    local_pref_of_peer: Dict[int, int]
    failed_link: Tuple[int, int]
    surviving_next_hops: FrozenSet[int]
    burst_messages: List[BGPMessage]
    probe_prefixes: List[Prefix]
    failure_time: float

    @property
    def withdrawal_count(self) -> int:
        """Number of withdrawals in the burst (per affected session)."""
        return sum(
            len(m.withdrawals)
            for m in self.burst_messages
            if isinstance(m, Update) and m.peer_as == 2
        )

    def messages_from(self, peer_as: int) -> List[BGPMessage]:
        """The burst messages received on the session with ``peer_as``."""
        return [m for m in self.burst_messages if m.peer_as == peer_as]

    def columnar_burst(self):
        """The failure burst encoded as a columnar stream (memoised).

        The SWIFTED replay path consumes the burst via
        :meth:`~repro.traces.columnar.ColumnarTrace.iter_batches`; encoding
        happens once per scenario and is shared across runs.
        """
        cached = getattr(self, "_columnar_burst", None)
        if cached is None:
            from repro.traces.columnar import ColumnarTrace

            cached = ColumnarTrace.from_messages(self.burst_messages)
            self._columnar_burst = cached
        return cached


def build_fig1_scenario(
    prefix_count: int = 290000,
    probe_count: int = 100,
    failure_time: float = 0.0,
    arrival_rate_per_second: float = 15000.0,
    seed: int = 0,
    include_as4_burst: bool = True,
) -> Fig1Scenario:
    """Build the Fig. 1 experiment for a given announced-prefix count.

    Parameters
    ----------
    prefix_count:
        Number of prefixes announced by AS 6 (the paper sweeps 10k…290k).
    probe_count:
        Number of probe prefixes sampled among AS 6's announcements (100).
    failure_time:
        Timestamp of the (5, 6) failure; withdrawals start arriving then.
    arrival_rate_per_second:
        Rate at which the upstream routers send the withdrawals.  On the
        paper's LAN testbed transmission is fast (the receiving router's
        per-prefix processing is the bottleneck); the default of 15k
        withdrawals/s keeps the input ahead of processing, which is what
        makes the vanilla downtime processing-bound (Table 1) while letting
        SWIFT gather its triggering threshold within a couple of seconds.
    seed:
        Seed for the withdrawal ordering and probe sampling.
    include_as4_burst:
        Whether AS 4 (whose path also dies) sends its own copy of the burst.
    """
    if prefix_count <= 0:
        raise ValueError("prefix_count must be positive")
    if probe_count <= 0:
        raise ValueError("probe_count must be positive")
    rng = random.Random(seed)

    prefixes = prefix_block("60.0.0.0/24", prefix_count)

    routes_via_peer: Dict[int, Dict[Prefix, ASPath]] = {
        2: {prefix: ASPath([2, 5, 6]) for prefix in prefixes},
        3: {prefix: ASPath([3, 6]) for prefix in prefixes},
        4: {prefix: ASPath([4, 5, 6]) for prefix in prefixes},
    }
    # The paper's router forwards via AS 2 before the failure (Fig. 1(a));
    # we express that economic preference with LOCAL_PREF, as operators do.
    local_pref_of_peer = {2: 200, 3: 100, 4: 150}

    # Burst: AS 2 and AS 4 withdraw every prefix (their only path used (5, 6)).
    order = list(prefixes)
    rng.shuffle(order)
    interval = 1.0 / arrival_rate_per_second
    messages: List[BGPMessage] = []
    for index, prefix in enumerate(order):
        timestamp = failure_time + index * interval
        messages.append(Update.withdraw(timestamp, 2, prefix))
        if include_as4_burst:
            messages.append(Update.withdraw(timestamp + interval / 2.0, 4, prefix))
    messages.sort(key=lambda m: m.timestamp)

    probe_prefixes = rng.sample(prefixes, min(probe_count, len(prefixes)))

    return Fig1Scenario(
        prefix_count=prefix_count,
        prefixes=prefixes,
        routes_via_peer=routes_via_peer,
        local_pref_of_peer=local_pref_of_peer,
        failed_link=(5, 6),
        surviving_next_hops=frozenset({3}),
        burst_messages=messages,
        probe_prefixes=probe_prefixes,
        failure_time=failure_time,
    )
