"""Case-study substrate: the Fig. 1 testbed, vanilla router and §7 deployment.

The paper quantifies the problem (Table 1) and the solution (Fig. 9(a)) on a
hardware testbed reproducing Fig. 1 with a Cisco Nexus 7k and, for the
SWIFTED case, an OpenFlow switch plus a SWIFT controller.  This package
models that testbed:

* :mod:`repro.casestudy.testbed` builds the router-level Fig. 1 scenario
  (per-peer RIBs, burst of withdrawals upon the (5, 6) failure, probe
  prefixes),
* :mod:`repro.casestudy.vanilla` is the discrete-time model of a vanilla
  router converging one prefix at a time,
* :mod:`repro.casestudy.controller` is the §7 alternative deployment: a
  SWIFT controller and an SDN switch interposed between an unmodified router
  and its peers,
* :mod:`repro.casestudy.probes` measures per-probe downtime and packet-loss
  series.
"""

from repro.casestudy.controller import SdnSwitch, SwiftController, SwiftedDeployment
from repro.casestudy.probes import DowntimeReport, measure_downtime
from repro.casestudy.testbed import Fig1Scenario, build_fig1_scenario
from repro.casestudy.vanilla import VanillaRouterModel

__all__ = [
    "DowntimeReport",
    "Fig1Scenario",
    "SdnSwitch",
    "SwiftController",
    "SwiftedDeployment",
    "VanillaRouterModel",
    "build_fig1_scenario",
    "measure_downtime",
]
