"""Deterministic fault injection for the replay / store / cache stack.

SWIFT is a robustness system; its reproduction should survive the same
partial-failure conditions in its *own* machinery that the paper studies in
the control plane.  This module is the harness that proves it: seeded
injectors for worker crashes, hard worker kills, worker hangs, IO errors
and byte-level blob corruption, wired into narrow hooks at the production
call sites.  With no plan configured every hook is a no-op.

The canonical site table is the :data:`KNOWN_SITES` constant below — one
entry per hook, naming its per-call key shape and the kinds that make
sense there.  The ``fault-site-registry`` rule of ``repro.analysis``
checks every site string in the tree (hook calls and textual plans alike)
against it, in both directions; ``src/repro/replay/README.md`` renders the
same table for humans.

The ``feed.*`` / ``segment.*`` sites live in the streaming ingestion
daemon (:mod:`repro.ingest`): ``feed.read``'s ``corrupt`` mangles the line
text (a malformed feed line, counted-and-skipped by lenient validation)
and its ``hang`` stalls the reader (exercising the heartbeat watchdog);
``segment.roll`` fires once per roll *phase* — keys
``...:start`` / ``...:sealed`` / ``...:manifest`` — so a test can kill the
daemon between the sealed-segment write, the manifest checkpoint and the
log cleanup, the three windows the crash-recovery contract covers.

Two activation channels, both deterministic:

* **explicit knobs** — build a :class:`FaultPlan` (an
  ``InferenceConfig``-style frozen dataclass) and pass it to
  :func:`repro.replay.fleet.replay_jobs`; the plan pickles into the worker
  options, so it reaches pool workers under any start method;
* **environment** — ``REPRO_FAULTS`` holds the textual plan and
  ``REPRO_FAULT_SEED`` the seed (:meth:`FaultPlan.to_env` /
  :meth:`FaultPlan.from_env`); forked *and* spawned workers inherit the
  environment, which is how an end-to-end subprocess test arms the harness
  without touching any API.

Determinism has two axes:

* *which keys fire*: a spec with ``rate < 1`` selects keys by a seeded
  coin — a stable hash of ``(seed, site, key, kind)`` — so the same
  sessions fail in every process and every rerun;
* *when they stop*: a spec fires while ``after <= attempt < after + times``
  (callers that retry pass the real attempt number, so retried work
  self-heals even across pool restarts); sites without a natural attempt
  count occurrences per ``(spec, key)`` within the process instead.
  ``after=K`` skips the first ``K`` occurrences — which is how the
  crash-recovery property tests express "``kill -9`` at the K-th seeded
  injection point".

The textual plan grammar (``REPRO_FAULTS``) is ``,``-separated specs of
``kind@site`` followed by optional ``;field=value`` pairs::

    kill@fleet.worker;times=1;match=session:1[12]
    crash@fleet.worker;rate=0.5,io_error@store.read

``site`` and ``match`` are :mod:`fnmatch` patterns (``match`` screens the
per-call key, e.g. ``session:<peer_as>`` for fleet workers or the blob's
file name for store/cache sites).
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass, field, replace
from fnmatch import fnmatchcase
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "FAULTS_ENV",
    "KNOWN_SITES",
    "SEED_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedIOError",
    "active_injector",
    "corrupt_file",
    "injector_for",
]

#: Environment variable holding the textual fault plan.
FAULTS_ENV = "REPRO_FAULTS"

#: Environment variable holding the plan seed (decimal integer).
SEED_ENV = "REPRO_FAULT_SEED"

#: The fault kinds the harness can execute.
KINDS = ("crash", "kill", "hang", "io_error", "corrupt")

#: The canonical registry of injection sites: site -> (per-call key shape,
#: kinds that make sense there).  Production hooks and textual plans both
#: address sites by these strings; the ``fault-site-registry`` static rule
#: keeps every usage in the tree and this table in sync, both ways, so a
#: typo'd site (which fails open — the injector simply never fires) cannot
#: ship silently.
KNOWN_SITES: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "fleet.worker": ("session:<peer_as>", ("crash", "kill", "hang")),
    "store.open": ("<.cols file name>", ("io_error",)),
    "store.read": ("<.cols file name>", ("io_error",)),
    "cache.write": ("<cache entry name>", ("io_error", "corrupt")),
    "feed.connect": ("<feed name>", ("crash", "io_error")),
    "feed.read": ("<feed name>", ("io_error", "corrupt", "hang")),
    "segment.append": ("<feed>:<segment>", ("crash", "kill", "io_error")),
    "segment.roll": ("<feed>:<segment>:<phase>", ("crash", "kill", "io_error")),
}


class InjectedFault(RuntimeError):
    """An injected worker failure (the ``crash`` kind, and ``kill``/``hang``
    downgraded outside a supervised pool worker)."""


class InjectedIOError(InjectedFault, OSError):
    """An injected IO failure — an :class:`OSError`, so production error
    handling (cache-miss degradation, quarantine) treats it like the real
    thing."""


@dataclass(frozen=True)
class FaultSpec:
    """One injector: *kind* at *site*, scoped by key match / rate / times.

    ``times`` bounds how often the spec fires per key: against the caller's
    ``attempt`` number when one is passed (retried work self-heals once
    ``attempt >= after + times``), else against a per-process occurrence
    counter.  ``after`` skips the first ``after`` occurrences before the
    spec arms — ``after=7;times=1`` fires exactly at the 8th occurrence,
    the knob the crash-recovery tests use to place a kill at a seeded
    injection point.  ``rate`` thins the matched keys with a seeded coin,
    so ``rate=0.5`` deterministically fails *the same* half of the fleet
    in every process.
    """

    kind: str
    site: str
    times: int = 1
    rate: float = 1.0
    match: str = "*"
    hang_seconds: float = 3600.0
    after: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (expected one of {KINDS})")

    def to_text(self) -> str:
        """Render the spec in the ``REPRO_FAULTS`` grammar."""
        parts = [f"{self.kind}@{self.site}"]
        if self.times != 1:
            parts.append(f"times={self.times}")
        if self.rate != 1.0:
            parts.append(f"rate={self.rate:g}")
        if self.match != "*":
            parts.append(f"match={self.match}")
        if self.hang_seconds != 3600.0:
            parts.append(f"hang={self.hang_seconds:g}")
        if self.after:
            parts.append(f"after={self.after}")
        return ";".join(parts)

    @classmethod
    def from_text(cls, text: str) -> "FaultSpec":
        """Parse one spec of the ``REPRO_FAULTS`` grammar."""
        head, _, tail = text.strip().partition(";")
        kind, at, site = head.partition("@")
        if not at or not kind or not site:
            raise ValueError(f"malformed fault spec {text!r} (expected kind@site[;k=v...])")
        spec = cls(kind=kind.strip(), site=site.strip())
        for pair in filter(None, (piece.strip() for piece in tail.split(";"))):
            name, eq, value = pair.partition("=")
            if not eq:
                raise ValueError(f"malformed fault field {pair!r} in {text!r}")
            name = name.strip()
            if name == "times":
                spec = replace(spec, times=int(value))
            elif name == "rate":
                spec = replace(spec, rate=float(value))
            elif name == "match":
                spec = replace(spec, match=value.strip())
            elif name == "hang":
                spec = replace(spec, hang_seconds=float(value))
            elif name == "after":
                spec = replace(spec, after=int(value))
            else:
                raise ValueError(f"unknown fault field {name!r} in {text!r}")
        return spec


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the specs to arm — the whole harness configuration.

    Frozen and picklable, so it travels inside the fleet worker options;
    :meth:`to_env` / :meth:`from_env` are the environment round-trip the
    subprocess tests use.
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def to_text(self) -> str:
        """The ``REPRO_FAULTS`` rendering of the specs (seed excluded)."""
        return ",".join(spec.to_text() for spec in self.specs)

    def to_env(self) -> Dict[str, str]:
        """Environment variables that re-create this plan in any process."""
        return {FAULTS_ENV: self.to_text(), SEED_ENV: str(self.seed)}

    @classmethod
    def from_text(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse a plan from its ``REPRO_FAULTS`` form."""
        specs = tuple(
            FaultSpec.from_text(piece)
            for piece in filter(None, (piece.strip() for piece in text.split(",")))
        )
        return cls(seed=seed, specs=specs)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> Optional["FaultPlan"]:
        """The plan configured in the environment, or ``None``."""
        environ = os.environ if environ is None else environ
        text = environ.get(FAULTS_ENV)
        if not text:
            return None
        seed = int(environ.get(SEED_ENV, "0") or "0")
        return cls.from_text(text, seed=seed)


def _coin(seed: int, site: str, key: str, kind: str) -> float:
    """A stable uniform-[0,1) draw for (seed, site, key, kind).

    CRC32-based so it is identical across processes and Python hash
    randomisation — the property that makes ``rate`` select the same keys
    in a worker as in the parent.
    """
    digest = zlib.crc32(f"{seed}|{site}|{key}|{kind}".encode("utf-8"))
    return (digest % 1_000_000) / 1_000_000.0


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at production hook sites.

    :meth:`fire` is the single entry point: it decides (deterministically)
    whether a spec applies at this (site, key, attempt) and *executes* the
    fault — raising for ``crash``/``io_error``, exiting or sleeping for
    ``kill``/``hang`` inside a supervised pool worker (downgraded to a
    raise elsewhere, so an inline replay never takes the whole process
    down), and returning the spec for ``corrupt`` so the caller can apply
    the byte damage itself (only the writer knows which buffer to hit).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._occurrences: Dict[Tuple[int, str], int] = {}

    def check(
        self, site: str, key: str = "", attempt: Optional[int] = None
    ) -> Optional[FaultSpec]:
        """The first armed spec matching (site, key, attempt), or ``None``.

        Purely a decision — no fault is executed.  When ``attempt`` is
        ``None`` the per-process occurrence counter of the (spec, key) pair
        is consumed instead.
        """
        for index, spec in enumerate(self.plan.specs):
            if not fnmatchcase(site, spec.site):
                continue
            if not fnmatchcase(key, spec.match):
                continue
            if spec.rate < 1.0 and _coin(self.plan.seed, site, key, spec.kind) >= spec.rate:
                continue
            if attempt is None:
                counter_key = (index, key)
                occurrence = self._occurrences.get(counter_key, 0)
                self._occurrences[counter_key] = occurrence + 1
            else:
                occurrence = attempt
            if spec.after <= occurrence < spec.after + spec.times:
                return spec
        return None

    def fire(
        self,
        site: str,
        key: str = "",
        attempt: Optional[int] = None,
        in_worker: bool = False,
    ) -> Optional[FaultSpec]:
        """Decide and execute a fault at this hook.

        Returns ``None`` (nothing armed), returns the spec (``corrupt`` —
        the caller applies the damage), or does not return at all: raises
        :class:`InjectedFault` / :class:`InjectedIOError`, or — only with
        ``in_worker=True``, i.e. under a supervising pool driver —
        hard-exits the process (``kill``) / blocks (``hang``) so the
        driver's broken-pool and timeout handling are exercised for real.
        """
        spec = self.check(site, key, attempt=attempt)
        if spec is None:
            return None
        if spec.kind == "crash":
            raise InjectedFault(f"injected crash at {site} ({key})")
        if spec.kind == "io_error":
            raise InjectedIOError(f"injected IO error at {site} ({key})")
        if spec.kind == "kill":
            if in_worker:
                os._exit(3)
            raise InjectedFault(f"injected kill at {site} ({key}) outside a pool worker")
        if spec.kind == "hang":
            if in_worker:
                time.sleep(spec.hang_seconds)
                raise InjectedFault(f"injected hang at {site} ({key}) outlived its sleep")
            raise InjectedFault(f"injected hang at {site} ({key}) outside a pool worker")
        return spec  # corrupt: the caller owns the byte damage


def corrupt_file(path: str, seed: int = 0, offset: Optional[int] = None) -> int:
    """Flip one byte of ``path`` in place; returns the flipped offset.

    The offset is seeded (a stable function of the seed and the file size)
    unless given explicitly, so a corruption test damages the same byte in
    every run.  The flip is ``XOR 0xFF`` — guaranteed to change the byte,
    hence guaranteed to trip a covering checksum.
    """
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"cannot corrupt empty file {path!r}")
    if offset is None:
        offset = zlib.crc32(f"corrupt|{seed}|{size}".encode("utf-8")) % size
    # repro: allow(durability-ordering): deliberate in-place byte damage —
    # this helper EXISTS to violate durability, that is the test.
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes((byte[0] ^ 0xFF,)))
    return offset


# -- ambient (environment-configured) injector ------------------------------

_env_cache_key: Optional[Tuple[Optional[str], Optional[str]]] = None
_env_cache_value: Optional[FaultInjector] = None

_plan_injectors: Dict[FaultPlan, FaultInjector] = {}

_installed: Optional[FaultInjector] = None


def install_injector(injector: Optional[FaultInjector]) -> None:
    """Process-locally arm (``None``: disarm) an injector for ambient hooks.

    The fleet worker body installs the injector of an explicitly-passed
    plan for the duration of a job, so store / cache hook sites inside the
    worker see the same plan the ``fleet.worker`` site does — without the
    plan having to travel through the environment.
    """
    global _installed
    _installed = injector


def active_injector() -> Optional[FaultInjector]:
    """The ambient injector, or ``None`` (the common case).

    A process-locally installed injector (:func:`install_injector`) wins;
    otherwise the environment-configured one is used, cached per
    ``(REPRO_FAULTS, REPRO_FAULT_SEED)`` value so production hooks pay two
    dict lookups when the harness is idle — and so occurrence counters
    persist across calls within a process.
    """
    if _installed is not None:
        return _installed
    global _env_cache_key, _env_cache_value
    key = (os.environ.get(FAULTS_ENV), os.environ.get(SEED_ENV))
    if key != _env_cache_key:
        _env_cache_key = key
        plan = FaultPlan.from_env()
        _env_cache_value = FaultInjector(plan) if plan and plan.specs else None
    return _env_cache_value


def injector_for(plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """The injector for an explicit plan, falling back to the environment.

    Explicit plans get one injector instance each (per process), so their
    occurrence counters behave like the ambient one's.
    """
    if plan is None:
        return active_injector()
    if not plan.specs:
        return None
    injector = _plan_injectors.get(plan)
    if injector is None:
        injector = _plan_injectors[plan] = FaultInjector(plan)
    return injector
