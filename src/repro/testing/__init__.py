"""Test-support machinery that ships with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
behind the robustness suite: seeded injectors for worker crashes / kills /
hangs, IO errors and byte-level blob corruption, activatable through
explicit :class:`~repro.testing.faults.FaultPlan` knobs or the
``REPRO_FAULTS`` / ``REPRO_FAULT_SEED`` environment variables (which is how
they reach process-pool replay workers).  Production code paths consult the
harness through cheap, always-safe hooks: with no plan configured every
hook is a no-op.
"""

from repro.testing.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    InjectedIOError,
    active_injector,
    corrupt_file,
    injector_for,
    install_injector,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedIOError",
    "active_injector",
    "corrupt_file",
    "injector_for",
    "install_injector",
]
