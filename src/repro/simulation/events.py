"""Routing events injected into the control-plane simulation.

The paper studies outages caused by link failures (possibly several links
sharing an endpoint, e.g. a router failure, §4.2) and by maintenance or
peering failures observed at a national ISP (§2.2.2).  We model the two
event shapes the inference algorithm is designed for: a single AS-link
failure and an AS-node failure (all adjacent links fail at once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.topology.as_graph import ASGraph, ASLink, canonical_link

__all__ = ["LinkFailure", "NodeFailure", "RoutingEvent"]


@dataclass(frozen=True)
class RoutingEvent:
    """Base class for events; ``at`` is the failure time in seconds."""

    at: float = 0.0

    def failed_links(self, graph: ASGraph) -> List[Tuple[int, int]]:
        """The canonical AS links removed by this event."""
        raise NotImplementedError

    def apply(self, graph: ASGraph) -> List[ASLink]:
        """Remove the failed links from ``graph`` and return them (for undo)."""
        removed: List[ASLink] = []
        for a, b in self.failed_links(graph):
            if graph.has_link(a, b):
                removed.append(graph.remove_link(a, b))
        return removed

    @staticmethod
    def undo(graph: ASGraph, removed: List[ASLink]) -> None:
        """Re-insert links previously removed by :meth:`apply`."""
        for link in removed:
            graph.restore_link(link)


@dataclass(frozen=True)
class LinkFailure(RoutingEvent):
    """Failure of a single AS link."""

    a: int = 0
    b: int = 0

    def __post_init__(self) -> None:
        if self.a <= 0 or self.b <= 0 or self.a == self.b:
            raise ValueError(f"invalid link ({self.a}, {self.b})")

    @property
    def link(self) -> Tuple[int, int]:
        """Canonical endpoints of the failing link."""
        return canonical_link(self.a, self.b)

    def failed_links(self, graph: ASGraph) -> List[Tuple[int, int]]:
        return [self.link]


@dataclass(frozen=True)
class NodeFailure(RoutingEvent):
    """Failure of an AS (router/AS-wide outage): all adjacent links go down."""

    asn: int = 0

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"invalid AS number {self.asn}")

    def failed_links(self, graph: ASGraph) -> List[Tuple[int, int]]:
        return [
            canonical_link(self.asn, neighbor)
            for neighbor in sorted(graph.neighbors(self.asn))
        ]
