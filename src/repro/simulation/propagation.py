"""The control-plane propagation simulator (C-BGP substitute).

Given an AS graph, the simulator computes valley-free routing towards every
origin, lets the caller pick a vantage point (a BGP session between a local
AS — the SWIFTED router or a route collector — and one of its neighbors),
injects link or node failures, and produces the burst of BGP messages that
the vantage point would observe, together with the ground truth (which links
failed, which prefixes were withdrawn or re-routed).

This is exactly the role C-BGP plays in the paper's §6.1: "Using C-BGP, we
simulated random link failures, and recorded the BGP messages seen on each
BGP session in the network."
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.messages import BGPMessage, Update
from repro.bgp.prefix import Prefix
from repro.bgp.session import PeeringSession
from repro.simulation.events import LinkFailure, RoutingEvent
from repro.simulation.routing import GaoRexfordRouting, RouteComputation
from repro.simulation.timing import EmpiricalPacing, PacingModel
from repro.topology.as_graph import ASGraph, canonical_link

__all__ = [
    "BurstGroundTruth",
    "PropagationSimulator",
    "SimulatedBurst",
    "VantagePoint",
]


@dataclass(frozen=True)
class VantagePoint:
    """A BGP session at which bursts are observed.

    ``local_as`` is the AS running SWIFT (or hosting the collector peer) and
    ``peer_as`` the neighbor whose announcements we see.
    """

    local_as: int
    peer_as: int

    def __post_init__(self) -> None:
        if self.local_as == self.peer_as:
            raise ValueError("a vantage point needs two distinct ASes")


@dataclass(frozen=True)
class BurstGroundTruth:
    """What actually happened, for scoring inference accuracy."""

    failed_links: Tuple[Tuple[int, int], ...]
    withdrawn_prefixes: FrozenSet[Prefix]
    updated_prefixes: FrozenSet[Prefix]
    announced_prefixes: FrozenSet[Prefix]

    @property
    def affected_prefixes(self) -> FrozenSet[Prefix]:
        """Prefixes whose reachability or path changed because of the outage."""
        return self.withdrawn_prefixes | self.updated_prefixes

    @property
    def failure_endpoints(self) -> FrozenSet[int]:
        """All AS numbers appearing as an endpoint of a failed link."""
        endpoints: Set[int] = set()
        for a, b in self.failed_links:
            endpoints.add(a)
            endpoints.add(b)
        return frozenset(endpoints)


@dataclass
class SimulatedBurst:
    """A burst as observed on one vantage session, with its ground truth."""

    vantage: VantagePoint
    messages: List[BGPMessage]
    ground_truth: BurstGroundTruth
    initial_rib: Dict[Prefix, PathAttributes] = field(default_factory=dict)

    @property
    def withdrawal_count(self) -> int:
        """Number of withdrawn prefixes in the burst."""
        return sum(
            len(m.withdrawals) for m in self.messages if isinstance(m, Update)
        )

    @property
    def update_count(self) -> int:
        """Number of announced (path-update) prefixes in the burst."""
        return sum(
            len(m.announcements) for m in self.messages if isinstance(m, Update)
        )

    @property
    def duration(self) -> float:
        """Wall-clock duration of the burst in seconds."""
        if len(self.messages) < 2:
            return 0.0
        return self.messages[-1].timestamp - self.messages[0].timestamp

    def build_session(self) -> PeeringSession:
        """Return a session pre-loaded with the pre-burst Adj-RIB-In.

        The initial announcements are installed with timestamps preceding the
        burst so the session's statistics and stream remain consistent.
        """
        session = PeeringSession(self.vantage.local_as, self.vantage.peer_as)
        session.establish(timestamp=-1.0)
        for prefix in sorted(self.initial_rib):
            session.process(
                Update.announce(-1.0, self.vantage.peer_as, prefix, self.initial_rib[prefix])
            )
        return session


class PropagationSimulator:
    """Simulates BGP route propagation and failures over an AS graph.

    Parameters
    ----------
    graph:
        The AS-level topology (with relationships and originated prefixes).
    pacing:
        Model assigning arrival times to burst messages; defaults to the
        empirically calibrated pacing of :class:`EmpiricalPacing`.
    seed:
        Seed for the pacing/interleaving randomness.
    """

    def __init__(
        self,
        graph: ASGraph,
        pacing: Optional[PacingModel] = None,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.pacing = pacing or EmpiricalPacing()
        self.seed = seed
        self._routing = GaoRexfordRouting(graph)
        self._baseline: Dict[int, RouteComputation] = {}
        self._link_origin_index: Optional[Dict[Tuple[int, int], Set[int]]] = None
        self._prefix_origin: Dict[Prefix, int] = graph.prefix_origin_map()

    # -- baseline routing ---------------------------------------------------

    def baseline(self, origin: int) -> RouteComputation:
        """Routing towards ``origin`` on the intact graph (cached)."""
        computation = self._baseline.get(origin)
        if computation is None:
            computation = self._routing.compute(origin)
            self._baseline[origin] = computation
        return computation

    def ensure_baseline(self, origins: Optional[Iterable[int]] = None) -> None:
        """Pre-compute (and cache) baseline routing for the given origins."""
        for origin in origins if origins is not None else self.graph.ases():
            self.baseline(origin)

    def _origins_using_link(self, link: Tuple[int, int]) -> Set[int]:
        """Origins for which at least one AS's best path traverses ``link``."""
        if self._link_origin_index is None:
            self.ensure_baseline()
            index: Dict[Tuple[int, int], Set[int]] = {}
            for origin, computation in self._baseline.items():
                seen: Set[Tuple[int, int]] = set()
                for asn in computation.best_path:
                    for used in computation.links_used_by(asn):
                        if used not in seen:
                            seen.add(used)
                            index.setdefault(used, set()).add(origin)
            self._link_origin_index = index
        return self._link_origin_index.get(canonical_link(*link), set())

    # -- vantage point state --------------------------------------------------

    def vantage_rib(self, vantage: VantagePoint) -> Dict[Prefix, PathAttributes]:
        """The pre-failure Adj-RIB-In of the vantage session.

        For every originated prefix, the exported path (if any) that
        ``vantage.peer_as`` offers to ``vantage.local_as`` on the intact graph.
        """
        if not self.graph.has_link(vantage.local_as, vantage.peer_as):
            raise ValueError(
                f"no AS link between {vantage.local_as} and {vantage.peer_as}"
            )
        rib: Dict[Prefix, PathAttributes] = {}
        for node in self.graph.nodes():
            if not node.prefixes:
                continue
            computation = self.baseline(node.asn)
            path = computation.exported_path(
                self.graph, vantage.peer_as, vantage.local_as
            )
            if path is None:
                continue
            attributes = PathAttributes(
                as_path=ASPath(path), next_hop=vantage.peer_as
            )
            for prefix in node.prefixes:
                rib[prefix] = attributes
        return rib

    def all_vantage_ribs(
        self, local_as: int
    ) -> Dict[int, Dict[Prefix, PathAttributes]]:
        """Pre-failure Adj-RIB-Ins for every session of ``local_as``."""
        return {
            peer_as: self.vantage_rib(VantagePoint(local_as, peer_as))
            for peer_as in sorted(self.graph.neighbors(local_as))
        }

    # -- failure simulation ----------------------------------------------------

    def simulate(
        self,
        event: RoutingEvent,
        vantage: VantagePoint,
        shuffle: bool = True,
    ) -> SimulatedBurst:
        """Simulate ``event`` and return the burst observed at ``vantage``.

        The burst contains one withdrawal per prefix that loses its exported
        path on the session and one announcement per prefix whose exported
        path changes (implicit withdrawal), paced by the simulator's pacing
        model and (optionally) interleaved in random order, as observed in
        real traces.
        """
        failed = [canonical_link(a, b) for a, b in event.failed_links(self.graph)]
        pre_rib = self.vantage_rib(vantage)

        affected_origins: Set[int] = set()
        for link in failed:
            affected_origins |= self._origins_using_link(link)

        removed = event.apply(self.graph)
        try:
            failed_routing = GaoRexfordRouting(self.graph)
            post_exports: Dict[int, Optional[Tuple[int, ...]]] = {}
            for origin in affected_origins:
                computation = failed_routing.compute(origin)
                post_exports[origin] = computation.exported_path(
                    self.graph, vantage.peer_as, vantage.local_as
                )
        finally:
            RoutingEvent.undo(self.graph, removed)

        withdrawn: List[Prefix] = []
        updated: List[Tuple[Prefix, Tuple[int, ...]]] = []
        announced: List[Tuple[Prefix, Tuple[int, ...]]] = []
        for node in self.graph.nodes():
            if node.asn not in affected_origins or not node.prefixes:
                continue
            new_path = post_exports.get(node.asn)
            for prefix in node.prefixes:
                old = pre_rib.get(prefix)
                if old is None:
                    if new_path is not None:
                        announced.append((prefix, new_path))
                    continue
                if new_path is None:
                    withdrawn.append(prefix)
                elif tuple(old.as_path.asns) != new_path:
                    updated.append((prefix, new_path))

        messages = self._pace_messages(
            vantage, withdrawn, updated + announced, event.at, shuffle
        )
        ground_truth = BurstGroundTruth(
            failed_links=tuple(sorted(failed)),
            withdrawn_prefixes=frozenset(withdrawn),
            updated_prefixes=frozenset(prefix for prefix, _ in updated),
            announced_prefixes=frozenset(prefix for prefix, _ in announced),
        )
        return SimulatedBurst(
            vantage=vantage,
            messages=messages,
            ground_truth=ground_truth,
            initial_rib=pre_rib,
        )

    def _pace_messages(
        self,
        vantage: VantagePoint,
        withdrawn: Sequence[Prefix],
        updated: Sequence[Tuple[Prefix, Tuple[int, ...]]],
        start: float,
        shuffle: bool,
    ) -> List[BGPMessage]:
        rng = random.Random(
            (self.seed, vantage.local_as, vantage.peer_as, len(withdrawn)).__hash__()
        )
        events: List[Tuple[str, object]] = [("withdraw", p) for p in withdrawn]
        events.extend(("update", item) for item in updated)
        if shuffle:
            rng.shuffle(events)
        offsets = self.pacing.offsets(len(events), rng)
        messages: List[BGPMessage] = []
        for offset, (kind, payload) in zip(offsets, events):
            timestamp = start + offset
            if kind == "withdraw":
                messages.append(
                    Update.withdraw(timestamp, vantage.peer_as, payload)  # type: ignore[arg-type]
                )
            else:
                prefix, path = payload  # type: ignore[misc]
                attributes = PathAttributes(
                    as_path=ASPath(path), next_hop=vantage.peer_as
                )
                messages.append(
                    Update.announce(timestamp, vantage.peer_as, prefix, attributes)
                )
        messages.sort(key=lambda m: m.timestamp)
        return messages

    # -- helpers for experiment harnesses ---------------------------------------

    def candidate_link_failures(
        self,
        vantage: VantagePoint,
        min_withdrawals: int = 1000,
        exclude_session_link: bool = True,
    ) -> List[Tuple[int, int]]:
        """Links whose failure would withdraw at least ``min_withdrawals`` prefixes.

        The estimate counts the prefixes whose pre-failure exported path on
        the vantage session traverses the link (an upper bound on the
        withdrawal count, tight when no post-failure path exists).  Used by
        the benchmark harnesses to pick interesting failures, mirroring the
        paper's focus on bursts of at least 1k-2.5k withdrawals.
        """
        pre_rib = self.vantage_rib(vantage)
        counts: Dict[Tuple[int, int], int] = {}
        for prefix, attributes in pre_rib.items():
            full_path = (vantage.local_as,) + tuple(attributes.as_path.asns)
            for a, b in zip(full_path, full_path[1:]):
                counts[canonical_link(a, b)] = counts.get(canonical_link(a, b), 0) + 1
        session_link = canonical_link(vantage.local_as, vantage.peer_as)
        candidates = [
            link
            for link, count in counts.items()
            if count >= min_withdrawals
            and (not exclude_session_link or link != session_link)
        ]
        return sorted(candidates, key=lambda link: (-counts[link], link))

    def random_failures(
        self,
        vantage: VantagePoint,
        count: int,
        min_withdrawals: int = 1000,
        seed: Optional[int] = None,
    ) -> List[LinkFailure]:
        """Pick ``count`` random link failures expected to cause visible bursts."""
        rng = random.Random(self.seed if seed is None else seed)
        candidates = self.candidate_link_failures(vantage, min_withdrawals)
        if not candidates:
            return []
        picked = candidates if len(candidates) <= count else rng.sample(candidates, count)
        return [LinkFailure(a=a, b=b) for a, b in picked]

    @property
    def prefix_origin(self) -> Dict[Prefix, int]:
        """Mapping prefix -> origin AS for every originated prefix."""
        return dict(self._prefix_origin)
