"""Message pacing models.

Withdrawal bursts do not arrive instantaneously: the paper measures that
the median withdrawal takes 13 s to be received and that 37% of bursts last
more than 10 s, with large bursts taking the longest (§2.2.1, Fig. 2(b)),
and that a significant share of the withdrawals sits in the middle and tail
of a burst.  The pacing models below convert "the set of prefixes touched by
a burst" into a timestamped sequence reproducing those properties.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["PacingModel", "UniformPacing", "EmpiricalPacing"]


class PacingModel:
    """Base class: assigns an arrival offset (seconds) to each of ``n`` items."""

    def offsets(self, count: int, rng: random.Random) -> List[float]:
        """Return ``count`` non-decreasing arrival offsets starting at ~0."""
        raise NotImplementedError


@dataclass(frozen=True)
class UniformPacing(PacingModel):
    """Spread messages uniformly at a fixed rate (messages per second).

    Used for controlled experiments where a deterministic arrival rate is
    wanted, e.g. feeding a router model at its per-prefix processing rate.
    """

    rate_per_second: float = 1000.0

    def __post_init__(self) -> None:
        if self.rate_per_second <= 0:
            raise ValueError("rate_per_second must be positive")

    def offsets(self, count: int, rng: random.Random) -> List[float]:
        interval = 1.0 / self.rate_per_second
        return [index * interval for index in range(count)]


@dataclass(frozen=True)
class EmpiricalPacing(PacingModel):
    """Pacing calibrated to the burst-duration behaviour of §2.2.1.

    The total duration of a burst grows with its size (large bursts take more
    time to be learned): we use ``duration = base + size / throughput`` with a
    default throughput of ~5,000 withdrawals/s, which makes a 10k burst last
    ~3-5 s, a 50k burst ~10-12 s and a 560k burst ~110 s — in line with the
    paper's observations (the largest burst, 570k withdrawals, took 105 s).

    Within the burst, arrivals are skewed towards the head but keep
    significant mass in the middle and the tail: offsets are drawn from a
    Beta-like distribution implemented with a power transform, such that
    roughly 55-65% of messages fall in the first third, ~25% in the middle
    third and ~10-15% in the tail — matching "50% of the bursts have at least
    26% of their withdrawals in the middle and 10% in the tail".
    """

    base_duration: float = 2.0
    throughput_per_second: float = 5000.0
    head_skew: float = 2.2
    jitter: float = 0.05

    def __post_init__(self) -> None:
        if self.base_duration < 0:
            raise ValueError("base_duration must be non-negative")
        if self.throughput_per_second <= 0:
            raise ValueError("throughput_per_second must be positive")
        if self.head_skew < 1.0:
            raise ValueError("head_skew must be >= 1 (1 = uniform)")

    def duration_for(self, count: int) -> float:
        """Total burst duration for ``count`` messages."""
        return self.base_duration + count / self.throughput_per_second

    def offsets(self, count: int, rng: random.Random) -> List[float]:
        if count <= 0:
            return []
        duration = self.duration_for(count)
        raw: List[float] = []
        for _ in range(count):
            u = rng.random()
            # Power transform skews mass towards 0 (the head of the burst).
            position = u ** self.head_skew
            if self.jitter:
                position += rng.uniform(-self.jitter, self.jitter) / max(count, 1)
            raw.append(min(max(position, 0.0), 1.0) * duration)
        raw.sort()
        return raw


def interleave_offsets(
    groups: Sequence[Sequence[float]],
) -> List[int]:
    """Return the merge order of several already-sorted offset groups.

    Returns a list of group indices describing, in arrival order, which group
    the next message comes from.  Used to interleave withdrawals and path
    updates inside a burst (the paper notes withdrawals of some origins are
    "interleaved with path updates" of others, §3.1).
    """
    cursors = [0] * len(groups)
    order: List[int] = []
    total = sum(len(group) for group in groups)
    for _ in range(total):
        best_group = -1
        best_value = math.inf
        for index, group in enumerate(groups):
            cursor = cursors[index]
            if cursor < len(group) and group[cursor] < best_value:
                best_value = group[cursor]
                best_group = index
        order.append(best_group)
        cursors[best_group] += 1
    return order
