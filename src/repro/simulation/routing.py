"""Valley-free route computation over an AS graph.

Implements the standard three-phase algorithm for Gao–Rexford routing to a
single origin AS:

1. **Customer routes** — announcements travel uphill from the origin along
   customer→provider edges; every AS on such a chain learns a customer route
   and prefers the shortest one.
2. **Peer routes** — ASes owning a customer route (or originating the prefix)
   announce it over peering links; the receiving AS accepts it only if it has
   no customer route.
3. **Provider routes** — ASes owning any route announce it downhill to their
   customers; customers accept it only if they have neither a customer nor a
   peer route, preferring the shortest provider route.

Within a phase ties are broken by shortest AS path and then lowest neighbor
ASN, giving a deterministic outcome.  The result records, for every AS, its
best path to the origin *and* the set of candidate paths offered by each
neighbor (what would sit in its per-neighbor Adj-RIB-In), which is what the
vantage-point construction needs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.topology.as_graph import ASGraph

__all__ = ["GaoRexfordRouting", "RouteComputation"]


# Route classes, lower = more preferred.
_CLASS_ORIGIN = -1
_CLASS_CUSTOMER = 0
_CLASS_PEER = 1
_CLASS_PROVIDER = 2


@dataclass
class _Route:
    """Internal per-AS routing state towards one origin."""

    route_class: int
    path: Tuple[int, ...]  # AS path towards the origin, next AS first, origin last.

    @property
    def length(self) -> int:
        return len(self.path)


@dataclass
class RouteComputation:
    """Routing towards one origin AS.

    Attributes
    ----------
    origin:
        The origin AS number.
    best_path:
        Mapping AS -> best AS path towards the origin (tuple, next AS first,
        origin last).  The origin itself maps to an empty tuple.  ASes with no
        route are absent.
    route_class:
        Mapping AS -> preference class of its best route (0 customer, 1 peer,
        2 provider, -1 origin).
    """

    origin: int
    best_path: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    route_class: Dict[int, int] = field(default_factory=dict)

    def has_route(self, asn: int) -> bool:
        """True when ``asn`` can reach the origin."""
        return asn in self.best_path

    def path_of(self, asn: int) -> Optional[Tuple[int, ...]]:
        """Best AS path of ``asn`` towards the origin, or ``None``."""
        return self.best_path.get(asn)

    def links_used_by(self, asn: int) -> List[Tuple[int, int]]:
        """Canonical AS links crossed by ``asn``'s best path (including first hop)."""
        path = self.best_path.get(asn)
        if path is None:
            return []
        full = (asn,) + path
        return [
            (a, b) if a <= b else (b, a) for a, b in zip(full, full[1:])
        ]

    def exported_path(
        self, graph: ASGraph, exporter: int, importer: int
    ) -> Optional[Tuple[int, ...]]:
        """The path ``exporter`` would announce to ``importer`` (or ``None``).

        Applies valley-free export filtering and sender-side loop avoidance:
        a route whose path already contains the importer is never offered.
        """
        if exporter == self.origin:
            path: Tuple[int, ...] = (exporter,)
        elif exporter in self.best_path:
            path = (exporter,) + self.best_path[exporter]
        else:
            return None
        if importer in path:
            return None
        exporter_class = self.route_class.get(exporter, _CLASS_ORIGIN)
        if exporter_class in (_CLASS_ORIGIN, _CLASS_CUSTOMER):
            return path
        # Peer/provider-learned routes are only exported to customers.
        link = graph.link(exporter, importer)
        if link.relationship_from(exporter) == "customer":
            return path
        return None


class GaoRexfordRouting:
    """Computes valley-free routing towards origins over an :class:`ASGraph`."""

    def __init__(self, graph: ASGraph) -> None:
        self.graph = graph

    # -- public API --------------------------------------------------------

    def compute(self, origin: int) -> RouteComputation:
        """Compute the routing of every AS towards ``origin``."""
        graph = self.graph
        if not graph.has_as(origin):
            raise KeyError(f"unknown origin AS {origin}")

        routes: Dict[int, _Route] = {origin: _Route(_CLASS_ORIGIN, ())}

        # Phase 1: customer routes propagate uphill (towards providers).
        # Dijkstra-like expansion on path length with deterministic tie break.
        heap: List[Tuple[int, int, int]] = []  # (path_len, announcing_as, receiving_as)
        for provider in graph.providers_of(origin):
            heapq.heappush(heap, (1, origin, provider))
        while heap:
            length, sender, receiver = heapq.heappop(heap)
            current = routes.get(receiver)
            candidate_path = (sender,) + routes[sender].path
            if receiver in candidate_path:
                continue
            if current is not None and current.route_class <= _CLASS_CUSTOMER:
                if current.length <= len(candidate_path):
                    continue
            routes[receiver] = _Route(_CLASS_CUSTOMER, candidate_path)
            for provider in graph.providers_of(receiver):
                heapq.heappush(heap, (length + 1, receiver, provider))

        # Phase 2: peer routes (single peering hop at the top of the path).
        peer_updates: Dict[int, _Route] = {}
        for asn, route in routes.items():
            if route.route_class not in (_CLASS_ORIGIN, _CLASS_CUSTOMER):
                continue
            for peer in self.graph.peers_of(asn):
                existing = routes.get(peer)
                if existing is not None and existing.route_class <= _CLASS_CUSTOMER:
                    continue
                candidate_path = (asn,) + route.path
                if peer in candidate_path:
                    continue
                candidate = _Route(_CLASS_PEER, candidate_path)
                best_so_far = peer_updates.get(peer)
                if best_so_far is None or _better(candidate, best_so_far):
                    peer_updates[peer] = candidate
        for asn, route in peer_updates.items():
            existing = routes.get(asn)
            if existing is None or _better(route, existing):
                routes[asn] = route

        # Phase 3: provider routes propagate downhill to customers.
        heap = []
        for asn, route in routes.items():
            for customer in graph.customers_of(asn):
                heapq.heappush(heap, (len(route.path) + 1, asn, customer))
        while heap:
            length, sender, receiver = heapq.heappop(heap)
            sender_route = routes.get(sender)
            if sender_route is None:
                continue
            candidate_path = (sender,) + sender_route.path
            if receiver in candidate_path:
                continue
            candidate = _Route(_CLASS_PROVIDER, candidate_path)
            existing = routes.get(receiver)
            if existing is not None and not _better(candidate, existing):
                continue
            routes[receiver] = candidate
            for customer in graph.customers_of(receiver):
                heapq.heappush(heap, (length + 1, receiver, customer))

        computation = RouteComputation(origin=origin)
        for asn, route in routes.items():
            if asn == origin:
                computation.best_path[asn] = ()
                computation.route_class[asn] = _CLASS_ORIGIN
            else:
                computation.best_path[asn] = route.path
                computation.route_class[asn] = route.route_class
        return computation

    def compute_all(self, origins: Optional[Sequence[int]] = None) -> Dict[int, RouteComputation]:
        """Compute routing for several origins (defaults to every AS)."""
        origins = list(origins) if origins is not None else self.graph.ases()
        return {origin: self.compute(origin) for origin in origins}


def _better(a: _Route, b: _Route) -> bool:
    """True when route ``a`` is strictly preferred over ``b``."""
    if a.route_class != b.route_class:
        return a.route_class < b.route_class
    if a.length != b.length:
        return a.length < b.length
    return a.path < b.path
