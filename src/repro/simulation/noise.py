"""BGP noise injection.

Real BGP sessions carry a steady trickle of messages unrelated to any given
outage (misconfigurations, route flaps, router bugs).  The paper quantifies
the noise floor at ~9 withdrawals per 10 s at the 90th percentile (§2.2.1)
and stresses the inference algorithm by adding 1,000 unrelated withdrawals
per simulated burst (§6.2.2).  This module injects both kinds of noise into
a message stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.messages import BGPMessage, Update
from repro.bgp.prefix import Prefix

__all__ = ["NoiseConfig", "inject_noise", "background_noise"]


@dataclass(frozen=True)
class NoiseConfig:
    """Parameters of the injected noise.

    ``burst_noise_withdrawals`` unrelated withdrawals are spread uniformly
    over the burst window (the §6.2.2 stress test); ``background_rate`` adds
    a Poisson-like trickle of withdrawals per second outside and inside the
    burst (the §2.2.1 noise floor).
    """

    burst_noise_withdrawals: int = 0
    background_rate: float = 0.0
    reannounce: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.burst_noise_withdrawals < 0:
            raise ValueError("burst_noise_withdrawals must be non-negative")
        if self.background_rate < 0:
            raise ValueError("background_rate must be non-negative")


def inject_noise(
    messages: Sequence[BGPMessage],
    unaffected_prefixes: Sequence[Prefix],
    peer_as: int,
    config: NoiseConfig,
    window: Optional[Tuple[float, float]] = None,
) -> List[BGPMessage]:
    """Return a new message list with noise withdrawals mixed in.

    Parameters
    ----------
    messages:
        The original (sorted) burst messages.
    unaffected_prefixes:
        Prefixes *not* affected by the outage, from which noise victims are
        drawn without replacement.
    peer_as:
        The session peer the noise appears to come from.
    config:
        Noise parameters.
    window:
        Optional ``(start, end)`` time window for the noise; defaults to the
        span of ``messages``.
    """
    if not messages:
        return list(messages)
    rng = random.Random(config.seed)
    start = window[0] if window else messages[0].timestamp
    end = window[1] if window else messages[-1].timestamp
    if end <= start:
        end = start + 1.0

    noise: List[BGPMessage] = []
    pool = list(unaffected_prefixes)
    rng.shuffle(pool)

    count = min(config.burst_noise_withdrawals, len(pool))
    for index in range(count):
        timestamp = rng.uniform(start, end)
        noise.append(Update.withdraw(timestamp, peer_as, pool[index]))

    if config.background_rate > 0 and pool:
        expected = config.background_rate * (end - start)
        background_count = int(expected)
        if rng.random() < (expected - background_count):
            background_count += 1
        for _ in range(background_count):
            prefix = pool[rng.randrange(len(pool))]
            timestamp = rng.uniform(start, end)
            noise.append(Update.withdraw(timestamp, peer_as, prefix))

    merged = sorted(list(messages) + noise, key=lambda m: m.timestamp)
    return merged


def background_noise(
    prefixes: Sequence[Prefix],
    peer_as: int,
    duration: float,
    rate_per_second: float,
    rng: random.Random,
    start: float = 0.0,
    first_hop: int = 0,
) -> List[BGPMessage]:
    """Generate a standalone background-noise stream (flap withdraw+announce).

    Each noise event withdraws a random prefix and, half of the time,
    re-announces it a few seconds later with a slightly different path —
    the classic route-flap signature.  Used by the synthetic trace generator
    to fill the quiet periods between bursts.
    """
    messages: List[BGPMessage] = []
    if rate_per_second <= 0 or duration <= 0 or not prefixes:
        return messages
    expected = rate_per_second * duration
    count = int(expected)
    if rng.random() < (expected - count):
        count += 1
    for _ in range(count):
        prefix = prefixes[rng.randrange(len(prefixes))]
        timestamp = start + rng.uniform(0.0, duration)
        messages.append(Update.withdraw(timestamp, peer_as, prefix))
        if rng.random() < 0.5:
            origin = 64500 + rng.randrange(100)
            path = ASPath([first_hop or peer_as, 64496 + rng.randrange(4), origin])
            attributes = PathAttributes(as_path=path, next_hop=peer_as)
            messages.append(
                Update.announce(
                    timestamp + rng.uniform(1.0, 30.0), peer_as, prefix, attributes
                )
            )
    messages.sort(key=lambda m: m.timestamp)
    return messages
