"""Control-plane simulation substrate (the C-BGP substitute).

The paper validates SWIFT's inference on bursts produced by C-BGP over a
generated 1,000-AS topology (§6.1, §6.2.2, §6.3.2).  This package provides
the equivalent machinery:

* :mod:`repro.simulation.routing` — per-origin valley-free route computation
  (best path of every AS towards an origin, plus the candidate routes each
  AS learns from its neighbors),
* :mod:`repro.simulation.events` — link/node failure events,
* :mod:`repro.simulation.timing` — message pacing models that spread a burst
  over realistic wall-clock durations,
* :mod:`repro.simulation.noise` — injection of withdrawals unrelated to the
  outage (BGP noise),
* :mod:`repro.simulation.propagation` — the simulator proper: builds vantage
  point RIBs, applies failures, and emits per-session message streams with
  ground truth.
"""

from repro.simulation.events import LinkFailure, NodeFailure, RoutingEvent
from repro.simulation.noise import NoiseConfig, inject_noise
from repro.simulation.propagation import (
    BurstGroundTruth,
    PropagationSimulator,
    SimulatedBurst,
    VantagePoint,
)
from repro.simulation.routing import GaoRexfordRouting, RouteComputation
from repro.simulation.timing import PacingModel, UniformPacing, EmpiricalPacing

__all__ = [
    "BurstGroundTruth",
    "EmpiricalPacing",
    "GaoRexfordRouting",
    "LinkFailure",
    "NodeFailure",
    "NoiseConfig",
    "PacingModel",
    "PropagationSimulator",
    "RouteComputation",
    "RoutingEvent",
    "SimulatedBurst",
    "UniformPacing",
    "VantagePoint",
    "inject_noise",
]
