"""The AS-level graph with inter-AS business relationships.

This is the substrate on which the control-plane simulator propagates routes
and on which link failures are injected.  Each node is an AS originating a
set of prefixes (as in the paper's Fig. 1 where "each AS i originates a
distinct set of prefixes S_i"), each edge is an AS link annotated with a
business relationship (customer-provider or peer-peer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.bgp.prefix import Prefix

__all__ = ["ASGraph", "ASLink", "ASNode", "Relationship", "canonical_link"]


class Relationship(Enum):
    """Business relationship of an AS link, from the perspective of ``(a, b)``.

    ``CUSTOMER_PROVIDER`` means ``a`` is a customer of ``b`` (``a`` pays ``b``);
    ``PEER_PEER`` is settlement-free peering.  Sibling relationships are rare
    and not modelled.
    """

    CUSTOMER_PROVIDER = "c2p"
    PEER_PEER = "p2p"


def canonical_link(a: int, b: int) -> Tuple[int, int]:
    """Return the undirected (sorted-endpoint) form of an AS link."""
    return (a, b) if a <= b else (b, a)


@dataclass
class ASNode:
    """An autonomous system in the graph."""

    asn: int
    prefixes: List[Prefix] = field(default_factory=list)
    tier: Optional[int] = None

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"invalid AS number {self.asn}")

    @property
    def prefix_count(self) -> int:
        """Number of prefixes originated by this AS."""
        return len(self.prefixes)


@dataclass(frozen=True)
class ASLink:
    """An undirected AS adjacency with its business relationship.

    The relationship is stored relative to the canonical (sorted) endpoint
    order: for ``CUSTOMER_PROVIDER`` the *customer* attribute names which
    endpoint pays the other.
    """

    a: int
    b: int
    relationship: Relationship
    customer: Optional[int] = None

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("self-loop AS links are not allowed")
        if self.relationship == Relationship.CUSTOMER_PROVIDER:
            if self.customer not in (self.a, self.b):
                raise ValueError(
                    "customer must be one of the link endpoints for a c2p link"
                )
        elif self.customer is not None:
            raise ValueError("peer-peer links have no customer endpoint")

    @property
    def endpoints(self) -> Tuple[int, int]:
        """The link endpoints in canonical order."""
        return canonical_link(self.a, self.b)

    @property
    def provider(self) -> Optional[int]:
        """The provider endpoint for c2p links, ``None`` for p2p."""
        if self.relationship != Relationship.CUSTOMER_PROVIDER:
            return None
        return self.b if self.customer == self.a else self.a

    def other(self, asn: int) -> int:
        """Return the endpoint that is not ``asn``."""
        if asn == self.a:
            return self.b
        if asn == self.b:
            return self.a
        raise ValueError(f"AS {asn} is not an endpoint of {self.endpoints}")

    def relationship_from(self, asn: int) -> str:
        """Relationship as seen from ``asn``: 'customer', 'provider' or 'peer'.

        The returned label describes what the *other* endpoint is to ``asn``:
        e.g. ``"customer"`` means the neighbor across this link is a customer
        of ``asn``.
        """
        if self.relationship == Relationship.PEER_PEER:
            return "peer"
        if asn == self.provider:
            return "customer"
        if asn == self.customer:
            return "provider"
        raise ValueError(f"AS {asn} is not an endpoint of {self.endpoints}")


class ASGraph:
    """An undirected AS-level graph with relationships and originated prefixes."""

    def __init__(self) -> None:
        self._nodes: Dict[int, ASNode] = {}
        self._links: Dict[Tuple[int, int], ASLink] = {}
        self._adjacency: Dict[int, Set[int]] = {}

    # -- construction ------------------------------------------------------

    def add_as(self, asn: int, prefixes: Optional[Sequence[Prefix]] = None) -> ASNode:
        """Add an AS (idempotent); optionally extend its originated prefixes."""
        node = self._nodes.get(asn)
        if node is None:
            node = ASNode(asn=asn)
            self._nodes[asn] = node
            self._adjacency[asn] = set()
        if prefixes:
            node.prefixes.extend(prefixes)
        return node

    def add_link(
        self,
        a: int,
        b: int,
        relationship: Relationship = Relationship.PEER_PEER,
        customer: Optional[int] = None,
    ) -> ASLink:
        """Add an undirected link; both endpoints are created if missing."""
        self.add_as(a)
        self.add_as(b)
        link = ASLink(a=a, b=b, relationship=relationship, customer=customer)
        key = canonical_link(a, b)
        if key in self._links:
            raise ValueError(f"link {key} already exists")
        self._links[key] = link
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        return link

    def add_customer_provider(self, customer: int, provider: int) -> ASLink:
        """Add a customer-provider link (``customer`` pays ``provider``)."""
        return self.add_link(
            customer, provider, Relationship.CUSTOMER_PROVIDER, customer=customer
        )

    def add_peering(self, a: int, b: int) -> ASLink:
        """Add a settlement-free peering link."""
        return self.add_link(a, b, Relationship.PEER_PEER)

    def remove_link(self, a: int, b: int) -> ASLink:
        """Remove a link (used to inject failures); returns the removed link."""
        key = canonical_link(a, b)
        link = self._links.pop(key, None)
        if link is None:
            raise KeyError(key)
        self._adjacency[a].discard(b)
        self._adjacency[b].discard(a)
        return link

    def restore_link(self, link: ASLink) -> None:
        """Re-insert a previously removed link (failure repair)."""
        key = link.endpoints
        if key in self._links:
            raise ValueError(f"link {key} already present")
        self._links[key] = link
        self._adjacency[link.a].add(link.b)
        self._adjacency[link.b].add(link.a)

    # -- queries -----------------------------------------------------------

    def node(self, asn: int) -> ASNode:
        """Return the node for ``asn`` (KeyError if unknown)."""
        return self._nodes[asn]

    def has_as(self, asn: int) -> bool:
        """True if the AS exists in the graph."""
        return asn in self._nodes

    def has_link(self, a: int, b: int) -> bool:
        """True if the (undirected) link exists."""
        return canonical_link(a, b) in self._links

    def link(self, a: int, b: int) -> ASLink:
        """Return the link between ``a`` and ``b`` (KeyError if absent)."""
        return self._links[canonical_link(a, b)]

    def neighbors(self, asn: int) -> FrozenSet[int]:
        """The ASes adjacent to ``asn``."""
        return frozenset(self._adjacency.get(asn, frozenset()))

    def degree(self, asn: int) -> int:
        """Number of AS links incident to ``asn``."""
        return len(self._adjacency.get(asn, ()))

    def customers_of(self, asn: int) -> List[int]:
        """Neighboring ASes that are customers of ``asn``."""
        return [
            other
            for other in self._adjacency.get(asn, ())
            if self.link(asn, other).relationship_from(asn) == "customer"
        ]

    def providers_of(self, asn: int) -> List[int]:
        """Neighboring ASes that are providers of ``asn``."""
        return [
            other
            for other in self._adjacency.get(asn, ())
            if self.link(asn, other).relationship_from(asn) == "provider"
        ]

    def peers_of(self, asn: int) -> List[int]:
        """Neighboring ASes in a settlement-free peering with ``asn``."""
        return [
            other
            for other in self._adjacency.get(asn, ())
            if self.link(asn, other).relationship_from(asn) == "peer"
        ]

    def ases(self) -> List[int]:
        """All AS numbers, sorted."""
        return sorted(self._nodes)

    def nodes(self) -> Iterator[ASNode]:
        """Iterate over all AS nodes."""
        return iter(self._nodes.values())

    def links(self) -> Iterator[ASLink]:
        """Iterate over all AS links."""
        return iter(self._links.values())

    def link_keys(self) -> List[Tuple[int, int]]:
        """All link endpoint pairs in canonical order, sorted."""
        return sorted(self._links)

    @property
    def as_count(self) -> int:
        """Number of ASes."""
        return len(self._nodes)

    @property
    def link_count(self) -> int:
        """Number of AS links."""
        return len(self._links)

    @property
    def average_degree(self) -> float:
        """Average node degree (2 * links / nodes)."""
        if not self._nodes:
            return 0.0
        return 2.0 * len(self._links) / len(self._nodes)

    def total_prefix_count(self) -> int:
        """Total number of prefixes originated across all ASes."""
        return sum(node.prefix_count for node in self._nodes.values())

    def origin_of(self, prefix: Prefix) -> Optional[int]:
        """Return the AS originating ``prefix`` (linear scan; cached by callers)."""
        for node in self._nodes.values():
            if prefix in node.prefixes:
                return node.asn
        return None

    def prefix_origin_map(self) -> Dict[Prefix, int]:
        """Build a prefix -> origin AS dictionary for all originated prefixes."""
        mapping: Dict[Prefix, int] = {}
        for node in self._nodes.values():
            for prefix in node.prefixes:
                mapping[prefix] = node.asn
        return mapping

    def is_connected(self) -> bool:
        """True when the graph is a single connected component."""
        if not self._nodes:
            return True
        start = next(iter(self._nodes))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in self._adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self._nodes)

    def copy(self) -> "ASGraph":
        """Deep-ish copy (nodes share prefix objects, which are immutable)."""
        clone = ASGraph()
        for node in self._nodes.values():
            new_node = clone.add_as(node.asn, list(node.prefixes))
            new_node.tier = node.tier
        for link in self._links.values():
            clone.add_link(link.a, link.b, link.relationship, link.customer)
        return clone
