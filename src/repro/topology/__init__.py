"""AS-level topology substrate.

Provides the AS graph with business relationships, tier classification,
valley-free (Gao–Rexford) export policies, and the topology generator used
to reproduce the paper's C-BGP evaluation setup (§6.1: 1,000 ASes, average
degree 8.4, power-law degree distribution with exponent 2.1, tiered
relationships, 20 prefixes per AS).
"""

from repro.topology.as_graph import ASGraph, ASLink, ASNode, Relationship
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.policies import (
    ExportPolicy,
    valley_free_export,
    is_valley_free,
    relationship_preference,
)
from repro.topology.tiers import assign_tiers

__all__ = [
    "ASGraph",
    "ASLink",
    "ASNode",
    "ExportPolicy",
    "Relationship",
    "TopologyConfig",
    "assign_tiers",
    "generate_topology",
    "is_valley_free",
    "relationship_preference",
    "valley_free_export",
]
