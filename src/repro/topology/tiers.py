"""Tier assignment for generated AS topologies.

The paper's C-BGP setup (§6.1) classifies ASes into tiers: "The three ASes
with highest degree are Tier1 ASes and are fully-meshed.  ASes directly
connected to a Tier1 are Tier2s.  ASes directly connected to a Tier2 but not
to a Tier1 are Tier3s, etc."  This module implements exactly that
breadth-first tiering given an undirected adjacency structure.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set

__all__ = ["assign_tiers"]


def assign_tiers(
    adjacency: Mapping[int, Iterable[int]],
    tier1_count: int = 3,
) -> Dict[int, int]:
    """Assign a tier (1 = top) to every AS.

    Parameters
    ----------
    adjacency:
        Mapping from AS number to iterable of neighbor AS numbers.
    tier1_count:
        How many of the highest-degree ASes form the Tier-1 clique (the paper
        uses 3).

    Returns
    -------
    dict
        Mapping AS number -> tier.  ASes unreachable from the Tier-1 core are
        assigned ``max_tier + 1`` so every AS gets a tier.
    """
    if tier1_count <= 0:
        raise ValueError("tier1_count must be positive")
    degrees = {asn: len(set(neighbors)) for asn, neighbors in adjacency.items()}
    if not degrees:
        return {}
    # Highest degree first; ties broken by lowest ASN for determinism.
    ordered = sorted(degrees, key=lambda asn: (-degrees[asn], asn))
    tier1 = ordered[: min(tier1_count, len(ordered))]

    tiers: Dict[int, int] = {asn: 1 for asn in tier1}
    frontier: List[int] = list(tier1)
    current_tier = 1
    while frontier:
        next_frontier: List[int] = []
        for asn in frontier:
            for neighbor in adjacency.get(asn, ()):  # breadth-first expansion
                if neighbor not in tiers:
                    tiers[neighbor] = current_tier + 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
        current_tier += 1

    # Disconnected leftovers (should not happen for generated topologies, but
    # keep every AS classified).
    max_tier = max(tiers.values()) if tiers else 1
    for asn in degrees:
        if asn not in tiers:
            tiers[asn] = max_tier + 1
    return tiers
