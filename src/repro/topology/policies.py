"""Valley-free (Gao–Rexford) routing policies.

Inter-domain routing policies are the reason convergence is slow: ASes hide
paths from each other ("BGP information hiding", §2.1.1).  The propagation
simulator uses the standard valley-free export model:

* a route learned from a **customer** is exported to everyone,
* a route learned from a **peer** or a **provider** is exported only to
  customers,

and the standard preference order customer > peer > provider, then shortest
AS path, then lowest neighbor ASN as tie break.  This matches how the paper
configures its C-BGP topology (§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.topology.as_graph import ASGraph

__all__ = [
    "ExportPolicy",
    "is_valley_free",
    "relationship_preference",
    "valley_free_export",
]

# Preference classes; lower is better (customer routes bring revenue).
_PREFERENCE = {"customer": 0, "peer": 1, "provider": 2}


def relationship_preference(relationship: str) -> int:
    """Map a relationship label to its Gao–Rexford preference class."""
    try:
        return _PREFERENCE[relationship]
    except KeyError:
        raise ValueError(f"unknown relationship {relationship!r}") from None


def valley_free_export(learned_from: str, export_to: str) -> bool:
    """Return True if a route learned over ``learned_from`` may be exported.

    Parameters
    ----------
    learned_from:
        Relationship of the neighbor the route was learned from, as seen by
        the exporting AS: ``"customer"``, ``"peer"``, ``"provider"`` or
        ``"origin"`` (the AS originates the prefix itself).
    export_to:
        Relationship of the neighbor the route would be exported to.
    """
    if learned_from == "origin":
        return True
    if learned_from == "customer":
        return True
    # Routes from peers and providers only flow "downhill" to customers.
    return export_to == "customer"


def is_valley_free(graph: ASGraph, path: Sequence[int]) -> bool:
    """Check that an AS path (origin last) respects valley-free export rules.

    The path is given in BGP order (nearest AS first, origin last), i.e. the
    traffic flows from the first AS towards the origin, while the route
    announcement travelled in the opposite direction.  A path is valley-free
    when, walking from the origin towards the receiver, the sequence of
    relationships is a series of customer-to-provider ("uphill") steps,
    followed by at most one peering step, followed by provider-to-customer
    ("downhill") steps.
    """
    if len(path) <= 1:
        return True
    # Walk announcement direction: origin -> ... -> receiver.
    announcement_order = list(reversed(path))
    # State machine: 0 = uphill allowed, 1 = after peak (only downhill).
    seen_peak = False
    for sender, receiver in zip(announcement_order, announcement_order[1:]):
        if not graph.has_link(sender, receiver):
            return False
        relationship = graph.link(sender, receiver).relationship_from(sender)
        # relationship describes what *receiver* is to *sender*:
        #   "provider"  -> announcement goes uphill (sender is customer)
        #   "peer"      -> peering step (the single allowed peak)
        #   "customer"  -> announcement goes downhill
        if relationship == "provider":
            if seen_peak:
                return False
        elif relationship == "peer":
            if seen_peak:
                return False
            seen_peak = True
        elif relationship == "customer":
            seen_peak = True
        else:  # pragma: no cover - defensive
            return False
    return True


@dataclass(frozen=True)
class ExportPolicy:
    """Per-AS export policy configuration.

    ``prepend`` allows modelling path prepending (not used by default) and
    ``export_nothing_to`` allows modelling partial transit / selective export,
    which is the mechanism that hides backup paths in the paper's Fig. 1
    example ("because of inter-domain policies (e.g., partial transit), it
    does not know any backup path for S6 and S8").
    """

    prepend: int = 0
    export_nothing_to: Tuple[int, ...] = ()

    def allows_export(
        self, learned_from: str, export_to: str, neighbor_asn: int
    ) -> bool:
        """Combine valley-free rules with the per-neighbor suppression list."""
        if neighbor_asn in self.export_nothing_to:
            return False
        return valley_free_export(learned_from, export_to)
