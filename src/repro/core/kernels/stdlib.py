"""The stdlib kernel backend: the original bisect/Counter hot loops.

Extracted verbatim from :meth:`BurstDetector.observe_run`, the
:meth:`FitScoreCalculator.record_run` fast path, the engine's span walking
and :meth:`ColumnarTrace.iter_batches` — this module is the *parity
reference* every other backend is checked against, in the tradition of
``repro/core/reference.py``.  It is always importable (no third-party
dependencies) and is what :func:`repro.core.kernels.get_backend` falls back
to when numpy is absent.

Kernel contract (see ``src/repro/core/README.md``): kernels read immutable
column views (any buffer-backed integer/float sequence honouring the
run-column contract of ``src/repro/traces/README.md``) and return plain row
indices, counts and Python scalars.  They never touch an interning table —
materialising interned objects is the caller's job.  The one piece of
mutable state a kernel owns is the detector's sliding-window deque (passed
in, left in exactly the state the per-message path would produce) and the
opaque seen-row masks handed back by :func:`new_seen_mask`.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Deque, List, Optional, Tuple

__all__ = [
    "NAME",
    "VECTORISED",
    "detector_scan",
    "event_rows",
    "find_crossing",
    "flatten_rows",
    "fresh_candidate_rows",
    "interesting_rows",
    "last_update_row",
    "next_positive_row",
    "new_seen_mask",
    "run_boundaries",
]

#: Backend name, recorded in benchmark payloads and test ids.
NAME = "stdlib"

#: Whether the backend pays off on whole-run array arithmetic.  The callers
#: use this to keep their original dense row loops (which this module's
#: functions mirror) when the backend cannot beat them.
VECTORISED = False


# -- burst detection ---------------------------------------------------------

def detector_scan(
    times,
    kinds,
    wd_end,
    start: int,
    stop: int,
    window: Deque[Tuple[float, int]],
    in_window: int,
    bursting: bool,
    window_seconds: float,
    start_threshold: int,
    stop_threshold: int,
) -> Tuple[List[Tuple[int, str, float, int, Optional[float]]], int, bool]:
    """Sliding-window scan of one run; the detector's hot loop.

    Walks rows ``[start, stop)`` of the (whole-trace cumulative) columns
    exactly as the per-message detector would: a quiet detector skips
    straight to the next withdrawal-bearing row with one bisect, a bursting
    one observes every UPDATE row.  ``window`` (time-ordered ``(timestamp,
    count)`` entries) is mutated in place and left exactly as per-message
    calls would leave it; ``in_window``/``bursting`` are the scalar state.

    Returns ``(transitions, in_window, bursting)`` where each transition is
    ``(row, kind, timestamp, count_in_window, burst_start)`` — ``kind`` is
    ``"start"`` or ``"end"`` and ``burst_start`` (the window's oldest
    surviving timestamp) is only meaningful on ``"start"``.
    """
    transitions: List[Tuple[int, str, float, int, Optional[float]]] = []
    window_append = window.append
    window_pop = window.popleft
    index = start
    cursor = wd_end[start - 1] if start else 0
    while index < stop:
        if not bursting:
            # Skip straight to the next withdrawal-bearing row.  Rows in
            # between only expire window entries, which the bisect makes
            # implicit: expiry is monotone in the timestamp, so deferring
            # it to the next observation leaves identical window state.
            row = bisect_right(wd_end, cursor, index, stop)
            if row >= stop:
                # Trailing quiet rows: expire through the last UPDATE
                # timestamp so the window state matches the per-message
                # path at the run boundary.
                if window:
                    last = stop - 1
                    while last >= index and kinds[last] != 0:
                        last -= 1
                    if last >= index:
                        horizon = times[last] - window_seconds
                        while window and window[0][0] < horizon:
                            in_window -= window_pop()[1]
                break
            timestamp = times[row]
            count = wd_end[row] - cursor
            window_append((timestamp, count))
            in_window += count
            horizon = timestamp - window_seconds
            while window and window[0][0] < horizon:
                in_window -= window_pop()[1]
            cursor = wd_end[row]
            if in_window >= start_threshold:
                bursting = True
                burst_start = window[0][0] if window else timestamp
                transitions.append((row, "start", timestamp, in_window, burst_start))
            index = row + 1
        else:
            # Bursting: per-row window arithmetic, inlined — the end
            # transition may fire on any UPDATE row, so every row is
            # observed, but without per-row method dispatch.
            while index < stop:
                high = wd_end[index]
                if kinds[index] != 0:
                    cursor = high
                    index += 1
                    continue
                timestamp = times[index]
                if high > cursor:
                    window_append((timestamp, high - cursor))
                    in_window += high - cursor
                horizon = timestamp - window_seconds
                while window and window[0][0] < horizon:
                    in_window -= window_pop()[1]
                cursor = high
                index += 1
                if in_window <= stop_threshold:
                    bursting = False
                    transitions.append((index - 1, "end", timestamp, in_window, None))
                    break
    return transitions, in_window, bursting


# -- fit-score folds ---------------------------------------------------------

def new_seen_mask(size: int):
    """An opaque per-burst seen-row mask; this backend never uses one."""
    return None


def fresh_candidate_rows(mask, wd_prefix, lo: int, hi: int) -> List[int]:
    """Deduplicated prefix rows of the withdrawal window ``[lo, hi)``.

    Returns the distinct entries of ``wd_prefix[lo:hi]`` not already marked
    in ``mask``, marking them; callers re-check the returned candidates
    against their (authoritative) seen *sets*, so the mask is purely a
    negative cache.  With this backend's ``mask is None`` the dedup is a
    plain first-occurrence pass.
    """
    seen_rows = set()
    seen_add = seen_rows.add
    ordered: List[int] = []
    append = ordered.append
    for row in wd_prefix[lo:hi]:
        if row not in seen_rows:
            seen_add(row)
            append(row)
    return ordered


def flatten_rows(batches) -> List[int]:
    """Concatenate row-index batches into one plain Python int list."""
    if len(batches) == 1:
        return list(batches[0])
    flat: List[int] = []
    for batch in batches:
        flat.extend(batch)
    return flat


# -- span walking ------------------------------------------------------------

def event_rows(kinds, wd_end, ann_end, lo: int, hi: int) -> List[int]:
    """Rows of ``[lo, hi)`` carrying withdrawals or announcements."""
    rows: List[int] = []
    append = rows.append
    w = wd_end[lo - 1] if lo else 0
    a = ann_end[lo - 1] if lo else 0
    for row in range(lo, hi):
        w_high = wd_end[row]
        a_high = ann_end[row]
        if w_high > w or a_high > a:
            append(row)
            w = w_high
            a = a_high
    return rows


def interesting_rows(kinds, wd_end, ann_end, lo: int, hi: int) -> List[int]:
    """Rows of ``[lo, hi)`` that are non-UPDATE or carry prefixes."""
    rows: List[int] = []
    append = rows.append
    w = wd_end[lo - 1] if lo else 0
    a = ann_end[lo - 1] if lo else 0
    for row in range(lo, hi):
        w_high = wd_end[row]
        a_high = ann_end[row]
        if kinds[row] != 0 or w_high > w or a_high > a:
            append(row)
        w = w_high
        a = a_high
    return rows


def last_update_row(kinds, lo: int, hi: int) -> Optional[int]:
    """The last row of ``[lo, hi)`` with kind byte 0, or ``None``."""
    for row in range(hi - 1, lo - 1, -1):
        if kinds[row] == 0:
            return row
    return None


def find_crossing(cumulative, value: int, lo: int, hi: int) -> int:
    """First row in ``[lo, hi)`` whose cumulative bound reaches ``value``."""
    return bisect_left(cumulative, value, lo, hi)


def next_positive_row(cumulative, base: int, lo: int, hi: int) -> int:
    """First row in ``[lo, hi)`` whose cumulative bound exceeds ``base``."""
    return bisect_right(cumulative, base, lo, hi)


# -- run segmentation --------------------------------------------------------

def run_boundaries(
    peers, total: int, max_run: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Consecutive same-peer windows ``(start, stop)`` over ``peers``.

    ``max_run`` caps window length, exactly as
    :meth:`~repro.traces.columnar.ColumnarTrace.iter_batches` documents.
    """
    boundaries: List[Tuple[int, int]] = []
    append = boundaries.append
    start = 0
    while start < total:
        peer = peers[start]
        stop = start + 1
        if max_run is None:
            while stop < total and peers[stop] == peer:
                stop += 1
        else:
            limit = min(total, start + max_run)
            while stop < limit and peers[stop] == peer:
                stop += 1
        append((start, stop))
        start = stop
    return boundaries
