"""The numpy kernel backend: whole-run array arithmetic over column views.

Each kernel wraps the caller's column buffers in zero-copy
``np.frombuffer`` views (the stdlib ``array`` columns of
:mod:`repro.traces.columnar` export the buffer protocol directly) and
replaces the per-row Python loop with ``np.cumsum`` / ``np.searchsorted`` /
``np.bincount`` / boolean-mask passes.  Views are strictly call-local —
holding one across a call would pin the underlying buffer and break column
writers (``array.append`` raises ``BufferError`` while exports are live) —
and every return value is plain Python (row-index lists, ints, floats), so
no numpy object ever escapes into engine state.

Parity with :mod:`repro.core.kernels.stdlib` is element-for-element on
contract-honouring columns (see the run-column contract in
``src/repro/traces/README.md``; in particular non-UPDATE rows carry no
prefixes) — asserted by ``tests/test_kernels.py`` including degenerate and
fuzzed runs, and byte-for-byte on replay signatures by
``tests/test_columnar_inference.py``.  Short inputs delegate to the stdlib
reference (same results, no array-setup overhead), so the backend never
loses on run-fragmented traces.

numpy is optional: importing this module without numpy leaves
``AVAILABLE = False`` and :func:`repro.core.kernels.get_backend` falls back
to stdlib.
"""

from __future__ import annotations

from typing import Deque, List, Optional, Tuple

from repro.core.kernels import stdlib as _stdlib

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via tests/test_kernels_numpy_absent.py
    np = None

__all__ = [
    "AVAILABLE",
    "NAME",
    "VECTORISED",
    "detector_scan",
    "event_rows",
    "find_crossing",
    "flatten_rows",
    "fresh_candidate_rows",
    "interesting_rows",
    "last_update_row",
    "next_positive_row",
    "new_seen_mask",
    "run_boundaries",
]

#: Whether numpy imported; the selection seam checks this before offering
#: the backend.
AVAILABLE = np is not None

NAME = "numpy"
VECTORISED = True

#: Below this many rows the array setup costs more than the row loop it
#: replaces; delegate to the (identical-result) stdlib reference.
_SMALL = 48

_F64 = None if np is None else np.float64
_U32 = None if np is None else np.uint32
_U8 = None if np is None else np.uint8
_I64 = None if np is None else np.int64


# -- burst detection ---------------------------------------------------------

def detector_scan(
    times,
    kinds,
    wd_end,
    start: int,
    stop: int,
    window: Deque[Tuple[float, int]],
    in_window: int,
    bursting: bool,
    window_seconds: float,
    start_threshold: int,
    stop_threshold: int,
) -> Tuple[List[Tuple[int, str, float, int, Optional[float]]], int, bool]:
    """Vectorised twin of :func:`repro.core.kernels.stdlib.detector_scan`.

    The key observation: which entries the sliding window holds at row
    ``r`` is *state-independent*.  Appended entries are exactly the
    ``(timestamp, count)`` pairs of withdrawal-bearing UPDATE rows — a
    quiet detector observes precisely those rows, a bursting one observes
    every UPDATE row but appends nothing for zero counts — and expiry
    (strict ``<`` against ``timestamp - window_seconds``) is monotone, so
    deferring it is unobservable.  The whole run's window sums therefore
    come from one ``cumsum`` + ``searchsorted`` pass (plus a suffix-sum fix
    for the carried-in deque), and the only sequential part left is the
    alternating quiet/bursting walk over the two transition masks, which
    touches O(transitions) rows instead of O(rows).
    """
    if stop - start < _SMALL:
        return _stdlib.detector_scan(
            times, kinds, wd_end, start, stop, window, in_window, bursting,
            window_seconds, start_threshold, stop_threshold,
        )
    t = np.frombuffer(times, _F64)[start:stop]
    k = np.frombuffer(kinds, _U8)[start:stop]
    we = np.frombuffer(wd_end, _U32)
    upd = k == 0
    upd_idx = np.flatnonzero(upd)
    if upd_idx.size == 0:
        # No UPDATE rows: the per-message path would not observe anything.
        return [], in_window, bursting
    cursor0 = int(we[start - 1]) if start else 0
    counts = np.diff(we[start:stop].astype(_I64), prepend=cursor0)
    counts[~upd] = 0
    positive_idx = np.flatnonzero(counts > 0)

    # Window sum after observing row r: carried-in entries surviving the
    # horizon t[r] - window_seconds, plus in-run entries [left[r], r].
    horizons = t - window_seconds
    csum0 = np.concatenate(([0], np.cumsum(counts)))
    left = np.searchsorted(t, horizons, side="left")
    win = csum0[1:] - csum0[left]
    ct = cc = cpre = None
    if window:
        ct = np.fromiter((entry[0] for entry in window), _F64, len(window))
        cc = np.fromiter((entry[1] for entry in window), _I64, len(window))
        cpre = np.concatenate(([0], np.cumsum(cc)))
        cpos = np.searchsorted(ct, horizons, side="left")
        win = win + (cpre[-1] - cpre[cpos])

    # A quiet detector can only transition on an observation (a
    # withdrawal-bearing row); a bursting one checks after every UPDATE row.
    starts = np.flatnonzero((counts > 0) & (win >= start_threshold))
    ends = np.flatnonzero(upd & (win <= stop_threshold))

    transitions: List[Tuple[int, str, float, int, Optional[float]]] = []
    pos = 0
    while True:
        if not bursting:
            i = int(np.searchsorted(starts, pos, side="left"))
            if i == starts.size:
                break
            p = int(starts[i])
            # burst_start: the window's oldest surviving entry at p — the
            # carry head if any survives, else the first surviving
            # withdrawal-bearing row (p itself qualifies, so one exists).
            burst_start = None
            if window:
                j = int(np.searchsorted(ct, horizons[p], side="left"))
                if j < ct.size:
                    burst_start = float(ct[j])
            if burst_start is None:
                j = int(np.searchsorted(positive_idx, left[p], side="left"))
                burst_start = float(t[positive_idx[j]])
            transitions.append(
                (start + p, "start", float(t[p]), int(win[p]), burst_start)
            )
            bursting = True
        else:
            i = int(np.searchsorted(ends, pos, side="left"))
            if i == ends.size:
                break
            p = int(ends[i])
            transitions.append((start + p, "end", float(t[p]), int(win[p]), None))
            bursting = False
        pos = p + 1

    # Final deque state: expire through the last UPDATE row's horizon (the
    # last row the per-message path observes), keep surviving carry entries
    # (original tuples, bit-exact) plus surviving in-run appends.
    final_horizon = float(t[upd_idx[-1]]) - window_seconds
    in_window = 0
    entries: List[Tuple[float, int]] = []
    if window:
        j = int(np.searchsorted(ct, final_horizon, side="left"))
        if j < len(window):
            entries.extend(list(window)[j:])
            in_window += int(cpre[-1] - cpre[j])
    surviving = positive_idx[t[positive_idx] >= final_horizon]
    if surviving.size:
        surviving_counts = counts[surviving]
        entries.extend(
            zip(t[surviving].tolist(), surviving_counts.tolist())
        )
        in_window += int(surviving_counts.sum())
    window.clear()
    window.extend(entries)
    return transitions, in_window, bursting


# -- fit-score folds ---------------------------------------------------------

def new_seen_mask(size: int):
    """A per-burst boolean mask over the pool's prefix rows."""
    return np.zeros(size, dtype=np.bool_)


def fresh_candidate_rows(mask, wd_prefix, lo: int, hi: int):
    """Distinct not-yet-marked prefix rows of ``wd_prefix[lo:hi]``.

    One gather + boolean-scatter pass: rows already marked in ``mask``
    (previously folded by this burst) are dropped at array speed, the rest
    are deduplicated through a scratch mask (no sort), marked, and returned
    sorted — as a numpy index array, which stays in array space until the
    caller's deferred fold flattens it (:func:`flatten_rows`).
    """
    sel = np.frombuffer(wd_prefix, _U32)[lo:hi]
    fresh = sel[~mask[sel]]
    if fresh.size == 0:
        return []
    scratch = np.zeros(mask.shape[0], dtype=np.bool_)
    scratch[fresh] = True
    result = np.flatnonzero(scratch)
    mask[result] = True
    return result


def flatten_rows(batches) -> List[int]:
    """Concatenate row-index batches into one plain Python int list.

    The deferred fit-score fold accumulates the per-window results of
    :func:`fresh_candidate_rows` and flattens them only when a query
    actually materialises the burst state; batches are this backend's
    index arrays, so the flatten is one ``concatenate`` + ``tolist``.
    """
    if len(batches) == 1:
        only = batches[0]
        return only.tolist() if isinstance(only, np.ndarray) else list(only)
    return np.concatenate([np.asarray(batch, _I64) for batch in batches]).tolist()


# -- span walking ------------------------------------------------------------

def _increment_mask(wd_end, ann_end, lo: int, hi: int):
    we = np.frombuffer(wd_end, _U32)
    ae = np.frombuffer(ann_end, _U32)
    w = we[lo:hi]
    a = ae[lo:hi]
    if lo:
        return (w > we[lo - 1 : hi - 1]) | (a > ae[lo - 1 : hi - 1])
    mask = np.empty(hi - lo, dtype=np.bool_)
    mask[0] = bool(w[0]) or bool(a[0])
    if hi - lo > 1:
        np.greater(w[1:], w[:-1], out=mask[1:])
        mask[1:] |= a[1:] > a[:-1]
    return mask


def event_rows(kinds, wd_end, ann_end, lo: int, hi: int) -> List[int]:
    """Rows of ``[lo, hi)`` carrying withdrawals or announcements."""
    if hi - lo < _SMALL:
        return _stdlib.event_rows(kinds, wd_end, ann_end, lo, hi)
    mask = _increment_mask(wd_end, ann_end, lo, hi)
    return (np.flatnonzero(mask) + lo).tolist()


def interesting_rows(kinds, wd_end, ann_end, lo: int, hi: int) -> List[int]:
    """Rows of ``[lo, hi)`` that are non-UPDATE or carry prefixes."""
    if hi - lo < _SMALL:
        return _stdlib.interesting_rows(kinds, wd_end, ann_end, lo, hi)
    mask = _increment_mask(wd_end, ann_end, lo, hi)
    mask |= np.frombuffer(kinds, _U8)[lo:hi] != 0
    return (np.flatnonzero(mask) + lo).tolist()


def last_update_row(kinds, lo: int, hi: int) -> Optional[int]:
    """The last row of ``[lo, hi)`` with kind byte 0, or ``None``."""
    if hi <= lo:
        return None
    if kinds[hi - 1] == 0:  # the overwhelmingly common case
        return hi - 1
    if hi - lo < _SMALL:
        return _stdlib.last_update_row(kinds, lo, hi)
    upd = np.flatnonzero(np.frombuffer(kinds, _U8)[lo:hi] == 0)
    if upd.size == 0:
        return None
    return int(upd[-1]) + lo


def find_crossing(cumulative, value: int, lo: int, hi: int) -> int:
    """First row in ``[lo, hi)`` whose cumulative bound reaches ``value``."""
    if hi - lo < _SMALL:
        return _stdlib.find_crossing(cumulative, value, lo, hi)
    view = np.frombuffer(cumulative, _U32)
    return lo + int(np.searchsorted(view[lo:hi], value, side="left"))


def next_positive_row(cumulative, base: int, lo: int, hi: int) -> int:
    """First row in ``[lo, hi)`` whose cumulative bound exceeds ``base``."""
    if hi - lo < _SMALL:
        return _stdlib.next_positive_row(cumulative, base, lo, hi)
    view = np.frombuffer(cumulative, _U32)
    return lo + int(np.searchsorted(view[lo:hi], base, side="right"))


# -- run segmentation --------------------------------------------------------

def run_boundaries(
    peers, total: int, max_run: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Consecutive same-peer windows via one vectorised neighbour compare."""
    if total < _SMALL:
        return _stdlib.run_boundaries(peers, total, max_run)
    view = np.frombuffer(peers, _I64)[:total]
    breaks = (np.flatnonzero(view[1:] != view[:-1]) + 1).tolist()
    edges = [0] + breaks + [total]
    boundaries: List[Tuple[int, int]] = []
    append = boundaries.append
    for seg_start, seg_stop in zip(edges, edges[1:]):
        if max_run is None or seg_stop - seg_start <= max_run:
            append((seg_start, seg_stop))
        else:
            for cut in range(seg_start, seg_stop, max_run):
                append((cut, min(cut + max_run, seg_stop)))
    return boundaries
