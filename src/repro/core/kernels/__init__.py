"""Pluggable vectorised kernels for the column-native hot loops.

Every per-row loop of the column-native inference stack — detector window
scans, fit-score withdrawal folds, quiet-span event walks, trigger location,
same-peer run segmentation — lives behind the narrow module interface
defined here, with two interchangeable backends:

* :mod:`repro.core.kernels.stdlib` — the bisect/Counter logic the stack
  shipped with, extracted verbatim.  Always available; the parity reference
  in the ``reference.py`` tradition.
* :mod:`repro.core.kernels.numpy` — whole-run ``np.cumsum`` /
  ``np.bincount`` / ``np.searchsorted`` / boolean-mask kernels over
  zero-copy ``np.frombuffer`` views of the existing column buffers.  numpy
  stays an **optional** dependency: when it cannot be imported the backend
  is simply absent and selection falls back to stdlib.

Backend selection is one seam — :func:`get_backend` — and a backend is just
a module exposing the kernel functions (see the "kernel contract" section
of ``src/repro/core/README.md``): inputs are immutable column views,
outputs are plain row indices / counts, and no interning table is ever
touched inside a kernel (materialising interned objects stays with the
caller).  Both backends are exercised element-for-element by
``tests/test_kernels.py`` and byte-for-byte on replay signatures by the
parity matrix in ``tests/test_columnar_inference.py``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.kernels import stdlib as stdlib_backend

__all__ = [
    "available_backends",
    "default_backend",
    "get_backend",
    "numpy_version",
]

_numpy_backend = None
_numpy_checked = False


def _load_numpy_backend():
    """Import the numpy backend once; ``None`` when numpy is unavailable."""
    global _numpy_backend, _numpy_checked
    if not _numpy_checked:
        _numpy_checked = True
        try:
            from repro.core.kernels import numpy as backend
        except ImportError:
            backend = None
        else:
            if not backend.AVAILABLE:
                backend = None
        _numpy_backend = backend
    return _numpy_backend


def available_backends() -> List[str]:
    """Names accepted by :func:`get_backend`, best (auto-pick) first."""
    names = []
    if _load_numpy_backend() is not None:
        names.append("numpy")
    names.append("stdlib")
    return names


def default_backend():
    """The auto-selected backend: numpy when importable, stdlib otherwise."""
    backend = _load_numpy_backend()
    return backend if backend is not None else stdlib_backend


def get_backend(name: Optional[str] = None):
    """Resolve a backend by name; ``None`` auto-selects (numpy > stdlib).

    Raises :class:`ValueError` for an unknown name and :class:`RuntimeError`
    when ``"numpy"`` is requested explicitly but numpy cannot be imported —
    auto-selection never raises.
    """
    if name is None or name == "auto":
        return default_backend()
    if name == "stdlib":
        return stdlib_backend
    if name == "numpy":
        backend = _load_numpy_backend()
        if backend is None:
            raise RuntimeError(
                "the numpy kernel backend was requested explicitly but numpy "
                "is not importable; use kernel_backend=None (auto) or 'stdlib'"
            )
        return backend
    raise ValueError(f"unknown kernel backend {name!r}")


def numpy_version() -> str:
    """The numpy version backing the numpy kernels, or ``"absent"``."""
    backend = _load_numpy_backend()
    if backend is None:
        return "absent"
    return backend.np.__version__
