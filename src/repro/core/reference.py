"""Reference (pre-index) fit-score implementation, kept for parity checks.

:class:`ReferenceFitScoreCalculator` is the original full-scan implementation
of the fit-score bookkeeping: it is seeded by scanning the entire RIB at
construction time and answers :meth:`prefixes_via_links` by iterating every
known prefix.  The production path
(:class:`~repro.core.fit_score.FitScoreCalculator` overlaying a
:class:`~repro.core.fit_score.LinkPrefixIndex`) replaced it because both of
those costs are O(RIB) and sit on the inference hot path.

The class is retained — verbatim in behaviour — for two purposes:

* the parity tests plug it into :class:`~repro.core.inference.InferenceEngine`
  via ``calculator_factory`` and assert that the engine emits *identical*
  :class:`~repro.core.inference.InferenceResult` sequences with either
  implementation;
* the hot-path benchmarks measure the speedup of the index-based path
  against it.

Do not use it in production code.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.prefix import Prefix
from repro.core.fit_score import FitScoreConfig, LinkScore

__all__ = ["ReferenceFitScoreCalculator"]

Link = Tuple[int, int]


def _canonical(link: Link) -> Link:
    """Canonical (sorted-endpoint) form of an AS link."""
    return link if link[0] <= link[1] else (link[1], link[0])


class ReferenceFitScoreCalculator:
    """Full-scan W(l, t) / P(l, t) bookkeeping (the seed implementation)."""

    def __init__(
        self,
        rib: Mapping[Prefix, ASPath],
        config: Optional[FitScoreConfig] = None,
        local_as: Optional[int] = None,
        peer_as: Optional[int] = None,
    ) -> None:
        self.config = config or FitScoreConfig()
        self._local_prefix_link: Optional[Link] = None
        if local_as is not None and peer_as is not None:
            self._local_prefix_link = _canonical((local_as, peer_as))

        # Static view of the pre-burst paths.
        self._links_of_prefix: Dict[Prefix, Tuple[Link, ...]] = {}
        # Current counters.
        self._withdrawn_for_link: Dict[Link, int] = {}
        self._routed_for_link: Dict[Link, int] = {}
        self._withdrawn_prefixes: Set[Prefix] = set()
        self._total_withdrawals = 0

        for prefix, path in rib.items():
            links = self._links_for_path(path)
            if not links:
                continue
            self._links_of_prefix[prefix] = links
            for link in links:
                self._routed_for_link[link] = self._routed_for_link.get(link, 0) + 1

    # -- feeding the stream ----------------------------------------------------

    def record_withdrawal(self, prefix: Prefix) -> None:
        """Account for the withdrawal of ``prefix`` (duplicates counted once)."""
        if prefix in self._withdrawn_prefixes:
            return
        self._withdrawn_prefixes.add(prefix)
        self._total_withdrawals += 1
        links = self._links_of_prefix.get(prefix)
        if not links:
            return
        for link in links:
            self._withdrawn_for_link[link] = self._withdrawn_for_link.get(link, 0) + 1
            self._routed_for_link[link] = max(0, self._routed_for_link.get(link, 0) - 1)

    def record_withdrawals(self, prefixes: Iterable[Prefix]) -> int:
        """Batched :meth:`record_withdrawal` (engine compatibility shim)."""
        processed = 0
        for prefix in prefixes:
            processed += 1
            self.record_withdrawal(prefix)
        return processed

    def record_run(self, run, start=None, stop=None) -> int:
        """Columnar-run shim mirroring :meth:`FitScoreCalculator.record_run`.

        Walks the run's row windows in order, feeding :meth:`record_withdrawal`
        and :meth:`record_update` — so the engine's column-native path can be
        parity-tested against this implementation without materialising
        messages either.  Returns the withdrawal entries processed.
        """
        trace = run.trace
        pool = trace.pool
        prefix_at = pool.prefix_at
        path_at = pool.path_at
        attr_path = pool.attr_path
        wd_end = trace.wd_end
        ann_end = trace.ann_end
        lo = run.start if start is None else start
        hi = run.stop if stop is None else stop
        if hi <= lo:
            return 0
        w = wd_end[lo - 1] if lo else 0
        a = ann_end[lo - 1] if lo else 0
        processed = 0
        for row in range(lo, hi):
            w_high = wd_end[row]
            a_high = ann_end[row]
            while w < w_high:
                self.record_withdrawal(prefix_at(trace.wd_prefix[w]))
                w += 1
                processed += 1
            while a < a_high:
                self.record_update(
                    prefix_at(trace.ann_prefix[a]),
                    path_at(attr_path[trace.ann_attr[a]]),
                )
                a += 1
        return processed

    def record_update(self, prefix: Prefix, new_path: ASPath) -> None:
        """Account for a path update (implicit withdrawal of the old path)."""
        old_links = self._links_of_prefix.get(prefix, ())
        if prefix in self._withdrawn_prefixes:
            self._withdrawn_prefixes.discard(prefix)
            self._total_withdrawals = max(0, self._total_withdrawals - 1)
            for link in old_links:
                self._withdrawn_for_link[link] = max(
                    0, self._withdrawn_for_link.get(link, 0) - 1
                )
        else:
            for link in old_links:
                self._routed_for_link[link] = max(0, self._routed_for_link.get(link, 0) - 1)
        new_links = self._links_for_path(new_path)
        self._links_of_prefix[prefix] = new_links
        for link in new_links:
            self._routed_for_link[link] = self._routed_for_link.get(link, 0) + 1

    # -- queries ----------------------------------------------------------------

    @property
    def total_withdrawals(self) -> int:
        """``W(t)``: withdrawals received so far (deduplicated)."""
        return self._total_withdrawals

    @property
    def withdrawn_prefixes(self) -> FrozenSet[Prefix]:
        """The set of currently-withdrawn prefixes."""
        return frozenset(self._withdrawn_prefixes)

    def tracked_links(self) -> List[Link]:
        """Every link appearing in at least one known path."""
        links: Set[Link] = set(self._routed_for_link) | set(self._withdrawn_for_link)
        return sorted(links)

    def withdrawal_count(self, link: Link) -> int:
        """``W(l, t)`` for one link."""
        return self._withdrawn_for_link.get(_canonical(link), 0)

    def still_routed_count(self, link: Link) -> int:
        """``P(l, t)`` for one link."""
        return self._routed_for_link.get(_canonical(link), 0)

    def withdrawal_share(self, link: Link) -> float:
        """``WS(l, t)``; 0 when no withdrawal has been received."""
        if self._total_withdrawals == 0:
            return 0.0
        return self.withdrawal_count(link) / self._total_withdrawals

    def path_share(self, link: Link) -> float:
        """``PS(l, t)``; 0 when the link carries no prefix at all."""
        withdrawn = self.withdrawal_count(link)
        routed = self.still_routed_count(link)
        if withdrawn + routed == 0:
            return 0.0
        return withdrawn / (withdrawn + routed)

    def fit_score(self, link: Link) -> float:
        """``FS(l, t)`` for a single link."""
        return self._combine(self.withdrawal_share(link), self.path_share(link))

    def score(self, link: Link) -> LinkScore:
        """All the metrics of a single link."""
        canonical = _canonical(link)
        ws = self.withdrawal_share(canonical)
        ps = self.path_share(canonical)
        return LinkScore(
            links=(canonical,),
            withdrawal_share=ws,
            path_share=ps,
            fit_score=self._combine(ws, ps),
            withdrawn_count=self.withdrawal_count(canonical),
            still_routed_count=self.still_routed_count(canonical),
        )

    def score_set(self, links: Sequence[Link]) -> LinkScore:
        """Metrics of a set of links, per the multi-link extension of §4.2."""
        canonical = tuple(sorted({_canonical(link) for link in links}))
        withdrawn = sum(self.withdrawal_count(link) for link in canonical)
        routed = sum(self.still_routed_count(link) for link in canonical)
        ws = (
            min(1.0, withdrawn / self._total_withdrawals)
            if self._total_withdrawals
            else 0.0
        )
        ps = withdrawn / (withdrawn + routed) if (withdrawn + routed) else 0.0
        return LinkScore(
            links=canonical,
            withdrawal_share=ws,
            path_share=ps,
            fit_score=self._combine(ws, ps),
            withdrawn_count=withdrawn,
            still_routed_count=routed,
        )

    def all_scores(self, min_withdrawn: int = 1) -> List[LinkScore]:
        """Scores of every link with at least ``min_withdrawn`` withdrawals."""
        scores = [
            self.score(link)
            for link, withdrawn in self._withdrawn_for_link.items()
            if withdrawn >= min_withdrawn
        ]
        scores.sort(key=lambda item: (-item.fit_score, item.links))
        return scores

    def prefixes_via_links(self, links: Iterable[Link]) -> FrozenSet[Prefix]:
        """Prefixes whose current path traverses any of ``links`` (full scan)."""
        wanted = {_canonical(link) for link in links}
        result: Set[Prefix] = set()
        for prefix, prefix_links in self._links_of_prefix.items():
            for link in prefix_links:
                if link in wanted:
                    result.add(prefix)
                    break
        return frozenset(result)

    # -- internals ----------------------------------------------------------------

    def _links_for_path(self, path: ASPath) -> Tuple[Link, ...]:
        links = [_canonical(link) for link in path.links()]
        if self._local_prefix_link is not None and len(path) >= 1:
            links.insert(0, self._local_prefix_link)
        # Deduplicate while keeping order (paths with prepending repeat links).
        seen: Set[Link] = set()
        unique: List[Link] = []
        for link in links:
            if link not in seen:
                seen.add(link)
                unique.append(link)
        return tuple(unique)

    def _combine(self, ws: float, ps: float) -> float:
        if ws <= 0.0 or ps <= 0.0:
            return 0.0
        w_ws, w_ps = self.config.ws_weight, self.config.ps_weight
        return (ws ** w_ws * ps ** w_ps) ** (1.0 / (w_ws + w_ps))
