"""Backup next-hop computation and rerouting policies (§3.2, §5).

Before any outage, a SWIFTED router continuously pre-computes, for every
prefix and for every AS link on the prefix's primary path, the next-hop to
use should that link fail.  A valid backup next-hop for (prefix, link) is a
neighbor offering an alternate route for the prefix whose AS path avoids
*both endpoints* of the link (§4.2, footnote: avoiding both endpoints keeps
the choice safe whichever side of the link turns out to be the failure's
common endpoint, and also when whole ASes rather than single links fail).

The selection among valid candidates honours operator *rerouting policies*
(§3.2): preferences between neighbor classes (customer / peer / provider),
per-neighbor bans, and capacity caps preventing large traffic volumes from
being shifted onto low-bandwidth or nearly-saturated links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.prefix import Prefix
from repro.bgp.rib import RibEntry

__all__ = ["BackupComputer", "BackupSelection", "ReroutingPolicy"]

Link = Tuple[int, int]


def _canonical(link: Link) -> Link:
    return link if link[0] <= link[1] else (link[1], link[0])


_object_new = object.__new__


def _make_selection(
    prefix: Prefix, protected_link: Link, next_hop: int, as_path: ASPath
) -> "BackupSelection":
    """Build a BackupSelection without the frozen-dataclass ``__setattr__`` tax.

    The profile-grouped fan-out constructs one selection per (prefix, link)
    over whole tables; filling the instance ``__dict__`` directly keeps that
    loop cheap while remaining indistinguishable from constructor-built
    instances (same equality, hashing, pickling).
    """
    selection = _object_new(BackupSelection)
    fields = selection.__dict__
    fields["prefix"] = prefix
    fields["protected_link"] = protected_link
    fields["next_hop"] = next_hop
    fields["as_path"] = as_path
    return selection


@dataclass(frozen=True)
class ReroutingPolicy:
    """Operator preferences constraining backup next-hop selection.

    Attributes
    ----------
    forbidden_next_hops:
        Neighbors that must never be used as backups (e.g. expensive transit).
    preferences:
        Mapping neighbor AS -> preference value; *lower is preferred*.  Absent
        neighbors get :attr:`default_preference`.  Operators typically derive
        this from the business relationship (customer 0, peer 1, provider 2).
    capacity_limits:
        Mapping neighbor AS -> maximum number of prefixes that may be
        rerouted onto it in one SWIFT activation.  Stands in for the paper's
        bandwidth/95th-percentile concerns: prefix count is the proxy for
        traffic volume available at the control plane.
    default_preference:
        Preference used for neighbors absent from ``preferences``.
    """

    forbidden_next_hops: FrozenSet[int] = frozenset()
    preferences: Mapping[int, int] = field(default_factory=dict)
    capacity_limits: Mapping[int, int] = field(default_factory=dict)
    default_preference: int = 10

    def preference_of(self, neighbor: int) -> int:
        """Preference value of a neighbor (lower is better)."""
        return self.preferences.get(neighbor, self.default_preference)

    def allows(self, neighbor: int) -> bool:
        """Whether the neighbor may be used as a backup at all."""
        return neighbor not in self.forbidden_next_hops

    def capacity_of(self, neighbor: int) -> Optional[int]:
        """Prefix-count cap for the neighbor, or ``None`` when unlimited."""
        return self.capacity_limits.get(neighbor)


@dataclass(frozen=True)
class BackupSelection:
    """The backup chosen for one (prefix, protected link) pair."""

    prefix: Prefix
    protected_link: Link
    next_hop: int
    as_path: ASPath

    @property
    def depth(self) -> int:
        """Length of the backup AS path."""
        return len(self.as_path)


class BackupComputer:
    """Computes per-prefix, per-link backup next-hops from alternate routes.

    Parameters
    ----------
    policy:
        The operator's rerouting policy; defaults to "anything goes".
    max_depth:
        Only links up to this position in the primary AS path are protected
        (the paper encodes up to depth 4-5; farther links rarely cause large
        bursts because intermediate ASes usually know a backup, §5).
    """

    def __init__(
        self,
        policy: Optional[ReroutingPolicy] = None,
        max_depth: int = 4,
        avoid_both_endpoints: bool = False,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.policy = policy or ReroutingPolicy()
        self.max_depth = max_depth
        self.avoid_both_endpoints = avoid_both_endpoints

    # -- per-prefix computation -------------------------------------------------

    def protected_links(self, primary_path: ASPath, local_as: int) -> List[Link]:
        """The AS links of the primary path to protect, nearest first.

        Includes the link between the local AS and the primary next-hop
        (depth 1) and then the links along the path up to ``max_depth``.
        """
        if len(primary_path) == 0:
            return []
        links: List[Link] = [_canonical((local_as, primary_path.first_hop))]
        for link, position in primary_path.links_with_positions():
            if position + 1 > self.max_depth:
                break
            links.append(link)
        return links

    def candidates_for(
        self,
        prefix: Prefix,
        protected_link: Link,
        alternates: Sequence[RibEntry],
    ) -> List[RibEntry]:
        """Alternate routes usable as backups for ``protected_link``.

        A candidate is valid when its AS path does not traverse the protected
        link (the Fig. 3 / §5 rule: "only AS 3 can be used as a backup
        next-hop, since the AS paths received from AS 4 also use (5, 6)") and
        its next-hop is allowed by the policy.  When the computer was built
        with ``avoid_both_endpoints=True`` the stricter rule of the §4.2
        footnote is applied instead: the candidate must avoid *both* endpoints
        of the link, which keeps rerouting safe even when the inference can
        only localise the failure to a set of links sharing an endpoint.
        """
        a, b = protected_link
        canonical = _canonical(protected_link)
        valid: List[RibEntry] = []
        for entry in alternates:
            if entry.prefix != prefix:
                continue
            if not self.policy.allows(entry.next_hop):
                continue
            if self.avoid_both_endpoints:
                path_asns = set(entry.as_path.asns)
                if a in path_asns or b in path_asns:
                    continue
            elif canonical in entry.as_path.links():
                continue
            valid.append(entry)
        return valid

    def select(
        self,
        prefix: Prefix,
        protected_link: Link,
        alternates: Sequence[RibEntry],
        usage: Optional[Dict[int, int]] = None,
    ) -> Optional[BackupSelection]:
        """Choose the best backup for one (prefix, link) pair.

        ``usage`` tracks how many prefixes have already been assigned to each
        neighbor during this computation; it is consulted (and updated) to
        enforce the policy's capacity limits.
        """
        protected_link = _canonical(protected_link)
        candidates = self.candidates_for(prefix, protected_link, alternates)
        if not candidates:
            return None
        ranked = sorted(
            candidates,
            key=lambda entry: (
                self.policy.preference_of(entry.next_hop),
                len(entry.as_path),
                entry.next_hop,
            ),
        )
        for entry in ranked:
            capacity = self.policy.capacity_of(entry.next_hop)
            if capacity is not None and usage is not None:
                if usage.get(entry.next_hop, 0) >= capacity:
                    continue
            if usage is not None:
                usage[entry.next_hop] = usage.get(entry.next_hop, 0) + 1
            return BackupSelection(
                prefix=prefix,
                protected_link=protected_link,
                next_hop=entry.next_hop,
                as_path=entry.as_path,
            )
        return None

    # -- table-wide computation -------------------------------------------------

    def compute_table(
        self,
        local_as: int,
        best_routes: Mapping[Prefix, RibEntry],
        alternates_of: Callable[[Prefix], Sequence[RibEntry]],
        candidates_of: Optional[Callable[[Prefix], Mapping[int, RibEntry]]] = None,
    ) -> Dict[Prefix, Dict[Link, BackupSelection]]:
        """Backups for every prefix and every protected link of its best path.

        The selection is *profile-grouped*: prefixes whose best route and
        candidates are built from the same attribute objects (the common
        case — table dumps intern attributes, so whole path-sharing prefix
        groups reference one set) rank identically for every protected
        link, because validity and preference read only the candidates' AS
        paths and next hops.  Each distinct (best profile, candidates
        profile) is therefore ranked once — ``alternates_of`` is called for
        one representative prefix per profile when ``candidates_of`` is
        given — and the winning (next hop, backup path) fanned out to all
        member prefixes.  The dominant cost of a cold ``provision()`` drops
        from one ranking per (prefix, link) to one per (profile, link).

        Policies with capacity limits keep the per-prefix
        :meth:`compute_table_reference` path: their global usage accounting
        makes selections order-dependent and inherently ungroupable.

        Parameters
        ----------
        local_as:
            The SWIFTED router's AS number.
        best_routes:
            The Loc-RIB best route of each prefix.
        alternates_of:
            Callable returning the alternate candidate routes of a prefix
            (typically :meth:`repro.bgp.speaker.BGPSpeaker.alternate_routes`).
        candidates_of:
            Optional cheap accessor for the prefix's raw peer -> candidate
            mapping (:meth:`repro.bgp.rib.LocRib.candidate_map`).  When
            given, profile keys are built from it and the (sorting)
            ``alternates_of`` runs once per profile instead of once per
            prefix; selections are unchanged because members of a profile
            share their candidate objects and insertion order.
        """
        if self.policy.capacity_limits:
            return self.compute_table_reference(local_as, best_routes, alternates_of)
        # profile key -> {canonical link: (next_hop, backup path) | None}
        groups: Dict[Tuple, Dict[Link, Optional[Tuple[int, ASPath]]]] = {}
        table: Dict[Prefix, Dict[Link, BackupSelection]] = {}
        for prefix, best in best_routes.items():
            # Identity of the attribute objects (not their values): two
            # profiles sharing attribute objects are exactly the groups the
            # speaker's interned table loads produce, and object identity
            # keys in O(1) where structural comparison would re-walk paths.
            if candidates_of is not None:
                candidates = candidates_of(prefix)
                key = (
                    best.peer_as,
                    id(best.attributes),
                    tuple(
                        (peer, id(entry.attributes))
                        for peer, entry in candidates.items()
                    ),
                )
            else:
                alternates = alternates_of(prefix)
                key = (
                    best.peer_as,
                    id(best.attributes),
                    tuple(
                        (entry.peer_as, id(entry.attributes)) for entry in alternates
                    ),
                )
            winners = groups.get(key)
            if winners is None:
                if candidates_of is not None:
                    alternates = alternates_of(prefix)
                winners = groups[key] = {}
                for link in self.protected_links(best.as_path, local_as):
                    selection = self.select(prefix, link, alternates)
                    winners[link] = (
                        (selection.next_hop, selection.as_path)
                        if selection is not None
                        else None
                    )
            per_link = {
                link: _make_selection(prefix, link, winner[0], winner[1])
                for link, winner in winners.items()
                if winner is not None
            }
            if per_link:
                table[prefix] = per_link
        return table

    def compute_table_reference(
        self,
        local_as: int,
        best_routes: Mapping[Prefix, RibEntry],
        alternates_of: Callable[[Prefix], Sequence[RibEntry]],
    ) -> Dict[Prefix, Dict[Link, BackupSelection]]:
        """Ungrouped per-prefix selection (the pre-grouping reference).

        Kept as the always-correct path: capacity-limited policies require
        it (usage accounting is global and order-dependent), and the parity
        suite asserts :meth:`compute_table` matches it exactly on
        capacity-free policies.
        """
        usage: Dict[int, int] = {}
        table: Dict[Prefix, Dict[Link, BackupSelection]] = {}
        for prefix, best in best_routes.items():
            alternates = alternates_of(prefix)
            per_link: Dict[Link, BackupSelection] = {}
            for link in self.protected_links(best.as_path, local_as):
                selection = self.select(prefix, link, alternates, usage)
                if selection is not None:
                    per_link[link] = selection
            if per_link:
                table[prefix] = per_link
        return table

    def backup_next_hops_by_link(
        self, table: Mapping[Prefix, Mapping[Link, BackupSelection]]
    ) -> Dict[Link, Dict[int, int]]:
        """Summarise a backup table as link -> {next_hop: number of prefixes}."""
        summary: Dict[Link, Dict[int, int]] = {}
        for per_link in table.values():
            for link, selection in per_link.items():
                counts = summary.setdefault(link, {})
                counts[selection.next_hop] = counts.get(selection.next_hop, 0) + 1
        return summary
