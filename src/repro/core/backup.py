"""Backup next-hop computation and rerouting policies (§3.2, §5).

Before any outage, a SWIFTED router continuously pre-computes, for every
prefix and for every AS link on the prefix's primary path, the next-hop to
use should that link fail.  A valid backup next-hop for (prefix, link) is a
neighbor offering an alternate route for the prefix whose AS path avoids
*both endpoints* of the link (§4.2, footnote: avoiding both endpoints keeps
the choice safe whichever side of the link turns out to be the failure's
common endpoint, and also when whole ASes rather than single links fail).

The selection among valid candidates honours operator *rerouting policies*
(§3.2): preferences between neighbor classes (customer / peer / provider),
per-neighbor bans, and capacity caps preventing large traffic volumes from
being shifted onto low-bandwidth or nearly-saturated links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.prefix import Prefix
from repro.bgp.rib import RibEntry
from repro.bgp.trie import PrefixTrie

__all__ = [
    "AggregatedBackupTable",
    "BackupComputer",
    "BackupSelection",
    "ReroutingPolicy",
]

Link = Tuple[int, int]


def _canonical(link: Link) -> Link:
    return link if link[0] <= link[1] else (link[1], link[0])


_object_new = object.__new__


def _make_selection(
    prefix: Prefix, protected_link: Link, next_hop: int, as_path: ASPath
) -> "BackupSelection":
    """Build a BackupSelection without the frozen-dataclass ``__setattr__`` tax.

    The profile-grouped fan-out constructs one selection per (prefix, link)
    over whole tables; filling the instance ``__dict__`` directly keeps that
    loop cheap while remaining indistinguishable from constructor-built
    instances (same equality, hashing, pickling).
    """
    selection = _object_new(BackupSelection)
    fields = selection.__dict__
    fields["prefix"] = prefix
    fields["protected_link"] = protected_link
    fields["next_hop"] = next_hop
    fields["as_path"] = as_path
    return selection


@dataclass(frozen=True)
class ReroutingPolicy:
    """Operator preferences constraining backup next-hop selection.

    Attributes
    ----------
    forbidden_next_hops:
        Neighbors that must never be used as backups (e.g. expensive transit).
    preferences:
        Mapping neighbor AS -> preference value; *lower is preferred*.  Absent
        neighbors get :attr:`default_preference`.  Operators typically derive
        this from the business relationship (customer 0, peer 1, provider 2).
    capacity_limits:
        Mapping neighbor AS -> maximum number of prefixes that may be
        rerouted onto it in one SWIFT activation.  Stands in for the paper's
        bandwidth/95th-percentile concerns: prefix count is the proxy for
        traffic volume available at the control plane.
    default_preference:
        Preference used for neighbors absent from ``preferences``.
    """

    forbidden_next_hops: FrozenSet[int] = frozenset()
    preferences: Mapping[int, int] = field(default_factory=dict)
    capacity_limits: Mapping[int, int] = field(default_factory=dict)
    default_preference: int = 10

    def preference_of(self, neighbor: int) -> int:
        """Preference value of a neighbor (lower is better)."""
        return self.preferences.get(neighbor, self.default_preference)

    def allows(self, neighbor: int) -> bool:
        """Whether the neighbor may be used as a backup at all."""
        return neighbor not in self.forbidden_next_hops

    def capacity_of(self, neighbor: int) -> Optional[int]:
        """Prefix-count cap for the neighbor, or ``None`` when unlimited."""
        return self.capacity_limits.get(neighbor)


@dataclass(frozen=True)
class BackupSelection:
    """The backup chosen for one (prefix, protected link) pair."""

    prefix: Prefix
    protected_link: Link
    next_hop: int
    as_path: ASPath

    @property
    def depth(self) -> int:
        """Length of the backup AS path."""
        return len(self.as_path)


class AggregatedBackupTable:
    """A backup table collapsed onto covering prefixes, queried by LPM.

    Built by :meth:`BackupComputer.compute_table_aggregated`.  Instead of one
    entry per protected prefix, the table keeps an entry only where the
    candidate profile *changes* along the prefix tree: a covering prefix's
    entry protects its whole subtree, and descendants whose profile matches
    their nearest stored ancestor are elided.  Queries resolve through a
    compressed LPM trie, so :meth:`selections_for` on any protected prefix
    returns exactly what the per-prefix table would have held.

    Invariants (what makes LPM resolution exact):

    * stored keys are a subset of the protected prefixes;
    * a protected prefix was elided only when its nearest protected ancestor
      carries the *same* profile, so profile equality chains down to the
      nearest stored ancestor;
    * protected prefixes with no valid backups are stored as *empty* entries
      when their profile differs from their ancestor's — boundary markers
      that stop descendants from matching a farther (wrong-profile)
      ancestor.
    """

    def __init__(
        self,
        entries: Dict[Prefix, Dict[Link, "BackupSelection"]],
        protected_prefix_count: int,
        source_entry_count: int,
    ) -> None:
        self._entries = entries
        #: Number of prefixes the source best-route table protected.
        self.protected_prefix_count = protected_prefix_count
        #: (prefix, link) selections the expanded per-prefix table holds.
        self.source_entry_count = source_entry_count
        #: (prefix, link) selections actually stored after aggregation.
        self.entry_count = sum(len(per_link) for per_link in entries.values())
        self._trie: PrefixTrie[Dict[Link, BackupSelection]] = PrefixTrie()
        self._trie.build_from_sorted(sorted(entries.items()))

    @property
    def aggregated_prefix_count(self) -> int:
        """Number of stored prefixes (including empty boundary markers)."""
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def reduction(self) -> float:
        """How many expanded (prefix, link) entries one stored entry covers."""
        if self.entry_count == 0:
            return 1.0 if self.source_entry_count == 0 else float("inf")
        return self.source_entry_count / self.entry_count

    def items(self) -> Iterable[Tuple[Prefix, Dict[Link, "BackupSelection"]]]:
        """The stored ``(prefix, per-link template)`` pairs, sorted."""
        return self._entries.items()

    def lookup(self, prefix: Prefix) -> Optional[Dict[Link, "BackupSelection"]]:
        """The stored per-link template covering ``prefix`` (do not mutate).

        Selections in the template carry the *stored* (covering) prefix;
        use :meth:`selections_for` to get them rewritten onto the query
        prefix.
        """
        match = self._trie.covering_entry(prefix)
        return match[1] if match is not None else None

    def selections_for(self, prefix: Prefix) -> Dict[Link, "BackupSelection"]:
        """Per-link backup selections for ``prefix`` (empty when unprotected)."""
        template = self.lookup(prefix)
        if not template:
            return {}
        # Fresh link tuples (not the template's, which are shared across the
        # covered subtree): the expanded table must be byte-identical under
        # pickle to the per-prefix reference, whose link objects are built
        # per prefix, so the object-sharing graph has to match too.
        result: Dict[Link, BackupSelection] = {}
        for link, selection in template.items():
            fresh: Link = (link[0], link[1])
            result[fresh] = _make_selection(
                prefix, fresh, selection.next_hop, selection.as_path
            )
        return result

    def backup_for(self, prefix: Prefix, link: Link) -> Optional["BackupSelection"]:
        """The backup selection protecting ``(prefix, link)``, if any."""
        template = self.lookup(prefix)
        if not template:
            return None
        selection = template.get(_canonical(link))
        if selection is None:
            return None
        return _make_selection(prefix, selection.protected_link, selection.next_hop, selection.as_path)

    def expand(
        self, prefixes: Iterable[Prefix]
    ) -> Dict[Prefix, Dict[Link, "BackupSelection"]]:
        """Materialise the per-prefix table for the given prefixes.

        Over the protected prefixes this reproduces
        :meth:`BackupComputer.compute_table_reference` exactly (prefixes
        without selections are omitted, like the reference) — the parity
        suite asserts byte-identical pickles.
        """
        table: Dict[Prefix, Dict[Link, BackupSelection]] = {}
        for prefix in prefixes:
            per_link = self.selections_for(prefix)
            if per_link:
                table[prefix] = per_link
        return table


class BackupComputer:
    """Computes per-prefix, per-link backup next-hops from alternate routes.

    Parameters
    ----------
    policy:
        The operator's rerouting policy; defaults to "anything goes".
    max_depth:
        Only links up to this position in the primary AS path are protected
        (the paper encodes up to depth 4-5; farther links rarely cause large
        bursts because intermediate ASes usually know a backup, §5).
    """

    def __init__(
        self,
        policy: Optional[ReroutingPolicy] = None,
        max_depth: int = 4,
        avoid_both_endpoints: bool = False,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.policy = policy or ReroutingPolicy()
        self.max_depth = max_depth
        self.avoid_both_endpoints = avoid_both_endpoints

    # -- per-prefix computation -------------------------------------------------

    def protected_links(self, primary_path: ASPath, local_as: int) -> List[Link]:
        """The AS links of the primary path to protect, nearest first.

        Includes the link between the local AS and the primary next-hop
        (depth 1) and then the links along the path up to ``max_depth``.
        """
        if len(primary_path) == 0:
            return []
        links: List[Link] = [_canonical((local_as, primary_path.first_hop))]
        for link, position in primary_path.links_with_positions():
            if position + 1 > self.max_depth:
                break
            links.append(link)
        return links

    def candidates_for(
        self,
        prefix: Prefix,
        protected_link: Link,
        alternates: Sequence[RibEntry],
    ) -> List[RibEntry]:
        """Alternate routes usable as backups for ``protected_link``.

        A candidate is valid when its AS path does not traverse the protected
        link (the Fig. 3 / §5 rule: "only AS 3 can be used as a backup
        next-hop, since the AS paths received from AS 4 also use (5, 6)") and
        its next-hop is allowed by the policy.  When the computer was built
        with ``avoid_both_endpoints=True`` the stricter rule of the §4.2
        footnote is applied instead: the candidate must avoid *both* endpoints
        of the link, which keeps rerouting safe even when the inference can
        only localise the failure to a set of links sharing an endpoint.
        """
        a, b = protected_link
        canonical = _canonical(protected_link)
        valid: List[RibEntry] = []
        for entry in alternates:
            if entry.prefix != prefix:
                continue
            if not self.policy.allows(entry.next_hop):
                continue
            if self.avoid_both_endpoints:
                path_asns = set(entry.as_path.asns)
                if a in path_asns or b in path_asns:
                    continue
            elif canonical in entry.as_path.links():
                continue
            valid.append(entry)
        return valid

    def select(
        self,
        prefix: Prefix,
        protected_link: Link,
        alternates: Sequence[RibEntry],
        usage: Optional[Dict[int, int]] = None,
    ) -> Optional[BackupSelection]:
        """Choose the best backup for one (prefix, link) pair.

        ``usage`` tracks how many prefixes have already been assigned to each
        neighbor during this computation; it is consulted (and updated) to
        enforce the policy's capacity limits.
        """
        protected_link = _canonical(protected_link)
        candidates = self.candidates_for(prefix, protected_link, alternates)
        if not candidates:
            return None
        ranked = sorted(
            candidates,
            key=lambda entry: (
                self.policy.preference_of(entry.next_hop),
                len(entry.as_path),
                entry.next_hop,
            ),
        )
        for entry in ranked:
            capacity = self.policy.capacity_of(entry.next_hop)
            if capacity is not None and usage is not None:
                if usage.get(entry.next_hop, 0) >= capacity:
                    continue
            if usage is not None:
                usage[entry.next_hop] = usage.get(entry.next_hop, 0) + 1
            return BackupSelection(
                prefix=prefix,
                protected_link=protected_link,
                next_hop=entry.next_hop,
                as_path=entry.as_path,
            )
        return None

    # -- table-wide computation -------------------------------------------------

    def compute_table(
        self,
        local_as: int,
        best_routes: Mapping[Prefix, RibEntry],
        alternates_of: Callable[[Prefix], Sequence[RibEntry]],
        candidates_of: Optional[Callable[[Prefix], Mapping[int, RibEntry]]] = None,
    ) -> Dict[Prefix, Dict[Link, BackupSelection]]:
        """Backups for every prefix and every protected link of its best path.

        The selection is *profile-grouped*: prefixes whose best route and
        candidates are built from the same attribute objects (the common
        case — table dumps intern attributes, so whole path-sharing prefix
        groups reference one set) rank identically for every protected
        link, because validity and preference read only the candidates' AS
        paths and next hops.  Each distinct (best profile, candidates
        profile) is therefore ranked once — ``alternates_of`` is called for
        one representative prefix per profile when ``candidates_of`` is
        given — and the winning (next hop, backup path) fanned out to all
        member prefixes.  The dominant cost of a cold ``provision()`` drops
        from one ranking per (prefix, link) to one per (profile, link).

        Policies with capacity limits keep the per-prefix
        :meth:`compute_table_reference` path: their global usage accounting
        makes selections order-dependent and inherently ungroupable.

        Parameters
        ----------
        local_as:
            The SWIFTED router's AS number.
        best_routes:
            The Loc-RIB best route of each prefix.
        alternates_of:
            Callable returning the alternate candidate routes of a prefix
            (typically :meth:`repro.bgp.speaker.BGPSpeaker.alternate_routes`).
        candidates_of:
            Optional cheap accessor for the prefix's raw peer -> candidate
            mapping (:meth:`repro.bgp.rib.LocRib.candidate_map`).  When
            given, profile keys are built from it and the (sorting)
            ``alternates_of`` runs once per profile instead of once per
            prefix; selections are unchanged because members of a profile
            share their candidate objects and insertion order.
        """
        if self.policy.capacity_limits:
            return self.compute_table_reference(local_as, best_routes, alternates_of)
        # profile key -> {canonical link: (next_hop, backup path) | None}
        groups: Dict[Tuple, Dict[Link, Optional[Tuple[int, ASPath]]]] = {}
        table: Dict[Prefix, Dict[Link, BackupSelection]] = {}
        for prefix, best in best_routes.items():
            # Identity of the attribute objects (not their values): two
            # profiles sharing attribute objects are exactly the groups the
            # speaker's interned table loads produce, and object identity
            # keys in O(1) where structural comparison would re-walk paths.
            if candidates_of is not None:
                candidates = candidates_of(prefix)
                key = (
                    best.peer_as,
                    id(best.attributes),
                    tuple(
                        (peer, id(entry.attributes))
                        for peer, entry in candidates.items()
                    ),
                )
            else:
                alternates = alternates_of(prefix)
                key = (
                    best.peer_as,
                    id(best.attributes),
                    tuple(
                        (entry.peer_as, id(entry.attributes)) for entry in alternates
                    ),
                )
            winners = groups.get(key)
            if winners is None:
                if candidates_of is not None:
                    alternates = alternates_of(prefix)
                winners = groups[key] = {}
                for link in self.protected_links(best.as_path, local_as):
                    selection = self.select(prefix, link, alternates)
                    winners[link] = (
                        (selection.next_hop, selection.as_path)
                        if selection is not None
                        else None
                    )
            per_link = {
                link: _make_selection(prefix, link, winner[0], winner[1])
                for link, winner in winners.items()
                if winner is not None
            }
            if per_link:
                table[prefix] = per_link
        return table

    def compute_table_aggregated(
        self,
        local_as: int,
        best_routes: Mapping[Prefix, RibEntry],
        alternates_of: Callable[[Prefix], Sequence[RibEntry]],
        candidates_of: Optional[Callable[[Prefix], Mapping[int, RibEntry]]] = None,
    ) -> AggregatedBackupTable:
        """Covering-prefix aggregated backup table (queried by LPM).

        Runs the same profile-grouped ranking as :meth:`compute_table`, then
        collapses the per-prefix fan-out instead of materialising it: a
        prefix is stored only when its candidate profile differs from its
        nearest stored ancestor's, so one entry protects a whole subtree of
        same-profile descendants.  On a DFZ-shaped table — where nested
        more-specifics overwhelmingly inherit the covering block's paths —
        this shrinks the table by an order of magnitude while
        :meth:`AggregatedBackupTable.selections_for` answers every protected
        prefix exactly as the per-prefix table would (see the invariants on
        :class:`AggregatedBackupTable`).

        Capacity-limited policies fall back to storing the (inherently
        ungroupable) :meth:`compute_table_reference` result per prefix —
        every protected prefix becomes its own exact key, so LPM never
        crosses prefixes and the order-dependent usage accounting is
        preserved verbatim.
        """
        if self.policy.capacity_limits:
            reference = self.compute_table_reference(local_as, best_routes, alternates_of)
            entries: Dict[Prefix, Dict[Link, BackupSelection]] = {}
            source = 0
            for prefix in sorted(best_routes):
                per_link = reference.get(prefix)
                if per_link is None:
                    entries[prefix] = {}
                else:
                    entries[prefix] = per_link
                    source += len(per_link)
            return AggregatedBackupTable(entries, len(best_routes), source)
        # Pass 1: profile-grouped ranking, identical to compute_table, but
        # record each prefix's profile id instead of fanning selections out.
        pid_of_key: Dict[Tuple, int] = {}
        winners_of: List[Dict[Link, Optional[Tuple[int, ASPath]]]] = []
        live_of: List[int] = []
        profile_of: Dict[Prefix, int] = {}
        for prefix, best in best_routes.items():
            if candidates_of is not None:
                candidates = candidates_of(prefix)
                key = (
                    best.peer_as,
                    id(best.attributes),
                    tuple(
                        (peer, id(entry.attributes))
                        for peer, entry in candidates.items()
                    ),
                )
            else:
                alternates = alternates_of(prefix)
                key = (
                    best.peer_as,
                    id(best.attributes),
                    tuple(
                        (entry.peer_as, id(entry.attributes)) for entry in alternates
                    ),
                )
            pid = pid_of_key.get(key)
            if pid is None:
                if candidates_of is not None:
                    alternates = alternates_of(prefix)
                winners: Dict[Link, Optional[Tuple[int, ASPath]]] = {}
                for link in self.protected_links(best.as_path, local_as):
                    selection = self.select(prefix, link, alternates)
                    winners[link] = (
                        (selection.next_hop, selection.as_path)
                        if selection is not None
                        else None
                    )
                pid = len(winners_of)
                pid_of_key[key] = pid
                winners_of.append(winners)
                live_of.append(sum(1 for winner in winners.values() if winner is not None))
            profile_of[prefix] = pid
        # Pass 2: subtree collapse.  Walking the prefixes in sorted order
        # means every ancestor is seen before its descendants, so a stack of
        # not-yet-closed ancestors gives the nearest protected ancestor in
        # O(1) amortised; a prefix whose profile matches it is elided
        # (profile equality chains down through elided intermediates).
        entries = {}
        source = 0
        stack: List[Tuple[Prefix, int]] = []
        for prefix in sorted(profile_of):
            pid = profile_of[prefix]
            while stack and not stack[-1][0].contains(prefix):
                stack.pop()
            source += live_of[pid]
            if not (stack and stack[-1][1] == pid):
                winners = winners_of[pid]
                entries[prefix] = {
                    link: _make_selection(prefix, link, winner[0], winner[1])
                    for link, winner in winners.items()
                    if winner is not None
                }
            stack.append((prefix, pid))
        return AggregatedBackupTable(entries, len(best_routes), source)

    def compute_table_reference(
        self,
        local_as: int,
        best_routes: Mapping[Prefix, RibEntry],
        alternates_of: Callable[[Prefix], Sequence[RibEntry]],
    ) -> Dict[Prefix, Dict[Link, BackupSelection]]:
        """Ungrouped per-prefix selection (the pre-grouping reference).

        Kept as the always-correct path: capacity-limited policies require
        it (usage accounting is global and order-dependent), and the parity
        suite asserts :meth:`compute_table` matches it exactly on
        capacity-free policies.
        """
        usage: Dict[int, int] = {}
        table: Dict[Prefix, Dict[Link, BackupSelection]] = {}
        for prefix, best in best_routes.items():
            alternates = alternates_of(prefix)
            per_link: Dict[Link, BackupSelection] = {}
            for link in self.protected_links(best.as_path, local_as):
                selection = self.select(prefix, link, alternates, usage)
                if selection is not None:
                    per_link[link] = selection
            if per_link:
                table[prefix] = per_link
        return table

    def backup_next_hops_by_link(
        self, table: Mapping[Prefix, Mapping[Link, BackupSelection]]
    ) -> Dict[Link, Dict[int, int]]:
        """Summarise a backup table as link -> {next_hop: number of prefixes}."""
        summary: Dict[Link, Dict[int, int]] = {}
        for per_link in table.values():
            for link, selection in per_link.items():
                counts = summary.setdefault(link, {})
                counts[selection.next_hop] = counts.get(selection.next_hop, 0) + 1
        return summary
