"""The SWIFT data-plane tag encoding algorithm (§5).

Every packet entering a SWIFTED router receives a fixed-width tag (48 bits by
default, carried in the destination MAC).  The tag has two parts:

* **Part 1 — AS links traversed.**  For each AS-path *position* (position 1
  is the link between the primary next-hop and the following AS; the link
  between the router and its neighbor needs no encoding since it is implied
  by the primary next-hop), a dedicated group of bits identifies which AS
  link the packet's current best path crosses at that position.  Only links
  carrying at least ``prefix_threshold`` prefixes (1,500 in the paper) and
  appearing within ``max_path_depth`` positions are encoded; the encoder
  allocates identifiers greedily, heaviest links first, until the part-1 bit
  budget is exhausted.

* **Part 2 — next-hops.**  One group identifies the primary next-hop and one
  group per protected depth identifies the backup next-hop to use if the
  link at that depth fails.  With 48-bit tags, 18 bits of part 1 and depth 4
  this yields 30 / 5 = 6 bits per group, i.e. 64 distinct next-hops (§5,
  "Partitioning bits").

Upon an inference "link ``l`` failed at position ``d``", the router installs
a single wildcard rule per backup next-hop: match packets whose position-``d``
group equals the identifier of ``l`` *and* whose depth-``d`` backup group
equals that next-hop, and forward them to it — rerouting every affected
prefix at once, regardless of how many there are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.prefix import Prefix
from repro.core.backup import BackupSelection

__all__ = ["EncodedTags", "EncoderConfig", "TagEncoder", "TagLayout", "WildcardRule"]

Link = Tuple[int, int]


def _canonical(link: Link) -> Link:
    return link if link[0] <= link[1] else (link[1], link[0])


@dataclass(frozen=True)
class EncoderConfig:
    """Bit budget and thresholds of the encoding (paper defaults)."""

    total_bits: int = 48
    path_bits: int = 18
    max_path_depth: int = 5
    backup_depth: int = 4
    prefix_threshold: int = 1500

    def __post_init__(self) -> None:
        if self.total_bits <= 0:
            raise ValueError("total_bits must be positive")
        if not 0 < self.path_bits < self.total_bits:
            raise ValueError("path_bits must be positive and below total_bits")
        if self.max_path_depth < 1:
            raise ValueError("max_path_depth must be at least 1")
        if self.backup_depth < 1:
            raise ValueError("backup_depth must be at least 1")
        if self.prefix_threshold < 0:
            raise ValueError("prefix_threshold must be non-negative")

    @property
    def nexthop_bits(self) -> int:
        """Bits left for part 2 (primary + backups)."""
        return self.total_bits - self.path_bits

    @property
    def nexthop_groups(self) -> int:
        """Number of next-hop groups: one primary plus one per protected depth."""
        return 1 + self.backup_depth

    @property
    def bits_per_nexthop(self) -> int:
        """Bits per next-hop group (identifier 0 is reserved for "none")."""
        return self.nexthop_bits // self.nexthop_groups

    @property
    def max_next_hops(self) -> int:
        """How many distinct next-hops each group can name (0 is reserved)."""
        return (1 << self.bits_per_nexthop) - 1


@dataclass(frozen=True)
class WildcardRule:
    """A ternary match on the tag: ``(tag & mask) == value``."""

    value: int
    mask: int
    next_hop: int
    description: str = ""

    def matches(self, tag: int) -> bool:
        """Whether a concrete tag matches this rule."""
        return (tag & self.mask) == self.value


@dataclass
class TagLayout:
    """Where each bit group lives inside the tag.

    Groups are described as ``(shift, width)`` pairs: the group's value is
    ``(tag >> shift) & ((1 << width) - 1)``.  Part 1 occupies the high bits
    (position 1 first), part 2 the low bits (primary group first, then backup
    groups by increasing depth).
    """

    total_bits: int
    position_groups: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    primary_group: Tuple[int, int] = (0, 0)
    backup_groups: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    def extract(self, tag: int, shift: int, width: int) -> int:
        """Extract a group's value from a concrete tag."""
        return (tag >> shift) & ((1 << width) - 1)


@dataclass
class EncodedTags:
    """The result of running the encoder over a RIB snapshot.

    ``link_loads``, ``next_hop_counts`` and ``fully_encoded`` carry the
    encoder's working state forward so that a later
    :meth:`TagEncoder.encode_delta` can re-encode only the prefixes whose
    routes changed; they are implementation details of that incremental path.
    """

    config: EncoderConfig
    layout: TagLayout
    tags: Dict[Prefix, int]
    link_ids: Dict[int, Dict[Link, int]]
    next_hop_ids: Dict[int, int]
    encoded_prefix_count: int
    skipped_links: List[Tuple[Link, int, int]] = field(default_factory=list)
    link_loads: Dict[Tuple[Link, int], int] = field(default_factory=dict)
    next_hop_counts: Dict[int, int] = field(default_factory=dict)
    fully_encoded: Set[Prefix] = field(default_factory=set)

    @property
    def encoded_links(self) -> FrozenSet[Tuple[Link, int]]:
        """Every (link, position) pair that received an identifier."""
        pairs: Set[Tuple[Link, int]] = set()
        for position, mapping in self.link_ids.items():
            for link in mapping:
                pairs.add((link, position))
        return frozenset(pairs)

    def is_encoded(self, link: Link, position: int) -> bool:
        """Whether ``link`` at ``position`` can be matched by a tag rule."""
        return _canonical(link) in self.link_ids.get(position, {})

    def tag_of(self, prefix: Prefix) -> Optional[int]:
        """The tag assigned to ``prefix`` (None when the prefix has no tag)."""
        return self.tags.get(prefix)


class TagEncoder:
    """Builds SWIFT tags from a RIB snapshot and a backup table."""

    def __init__(self, config: Optional[EncoderConfig] = None) -> None:
        self.config = config or EncoderConfig()

    # -- public API ----------------------------------------------------------

    def encode(
        self,
        best_paths: Mapping[Prefix, ASPath],
        backups: Optional[Mapping[Prefix, Mapping[Link, BackupSelection]]] = None,
        neighbors: Optional[Sequence[int]] = None,
    ) -> EncodedTags:
        """Compute the tag of every prefix.

        Parameters
        ----------
        best_paths:
            The Loc-RIB: prefix -> best AS path (neighbor first, origin last).
        backups:
            Optional backup table (prefix -> protected link -> selection),
            typically produced by :class:`repro.core.backup.BackupComputer`.
            When omitted, part 2 only carries the primary next-hop.
        neighbors:
            Optional explicit next-hop universe; defaults to every next-hop
            seen in ``best_paths`` and ``backups``.
        """
        config = self.config
        backups = backups or {}

        link_loads = self._link_loads(best_paths)
        link_ids = self._allocate_link_ids(link_loads)
        layout = self._build_layout(link_ids)
        next_hop_counts = self._next_hop_counts(best_paths, backups, neighbors)
        next_hop_ids = self._ids_from_counts(next_hop_counts)

        tags: Dict[Prefix, int] = {}
        fully: Set[Prefix] = set()
        for prefix, path in best_paths.items():
            tag, fully_encoded = self._tag_for(
                prefix, path, backups.get(prefix, {}), link_ids, next_hop_ids, layout
            )
            tags[prefix] = tag
            if fully_encoded:
                fully.add(prefix)

        return EncodedTags(
            config=config,
            layout=layout,
            tags=tags,
            link_ids=link_ids,
            next_hop_ids=next_hop_ids,
            encoded_prefix_count=len(fully),
            skipped_links=self._skipped_links(link_loads, link_ids),
            link_loads=link_loads,
            next_hop_counts=next_hop_counts,
            fully_encoded=fully,
        )

    def encode_delta(
        self,
        previous: EncodedTags,
        changes: Sequence[
            Tuple[
                Prefix,
                Optional[ASPath],
                Optional[ASPath],
                Sequence[int],
                Mapping[Link, "BackupSelection"],
            ]
        ],
        neighbors: Optional[Sequence[int]] = None,
    ) -> Optional[Tuple[EncodedTags, Dict[Prefix, Optional[int]]]]:
        """Re-encode only the changed prefixes on top of a previous encoding.

        ``changes`` carries one entry per prefix whose best route or backups
        changed since ``previous`` was produced: ``(prefix, old_path,
        new_path, old_backup_next_hops, new_backups)`` with ``None`` paths
        meaning absent.  The link loads and next-hop counts are patched by
        the route deltas and the identifier allocations recomputed (cheap —
        proportional to the number of distinct links, not prefixes).  When
        both allocations land exactly where they were, only the changed
        prefixes' tags are rebuilt and the result is ``(new EncodedTags,
        {prefix: new tag or None})`` — the second element being the stage-1
        patch for the forwarding table.  When an allocation shifted, returns
        ``None`` and the caller must run a full :meth:`encode`.
        """
        config = self.config
        link_loads = dict(previous.link_loads)
        next_hop_counts = dict(previous.next_hop_counts)
        neighbor_set = set(neighbors or ())

        for prefix, old_path, new_path, old_backup_hops, new_backups in changes:
            if old_path is not None:
                for link, position in old_path.links_with_positions():
                    if position > config.max_path_depth:
                        break
                    key = (link, position)
                    load = link_loads.get(key, 0) - 1
                    if load > 0:
                        link_loads[key] = load
                    else:
                        link_loads.pop(key, None)
                first = old_path.first_hop
                if first is not None:
                    next_hop_counts[first] = next_hop_counts.get(first, 0) - 1
            for hop in old_backup_hops:
                next_hop_counts[hop] = next_hop_counts.get(hop, 0) - 1
            if new_path is not None:
                for link, position in new_path.links_with_positions():
                    if position > config.max_path_depth:
                        break
                    key = (link, position)
                    link_loads[key] = link_loads.get(key, 0) + 1
                first = new_path.first_hop
                if first is not None:
                    next_hop_counts[first] = next_hop_counts.get(first, 0) + 1
            for selection in new_backups.values():
                hop = selection.next_hop
                next_hop_counts[hop] = next_hop_counts.get(hop, 0) + 1
        for hop in [h for h, count in next_hop_counts.items() if count <= 0]:
            if hop in neighbor_set:
                next_hop_counts[hop] = max(0, next_hop_counts[hop])
            else:
                del next_hop_counts[hop]

        link_ids = self._allocate_link_ids(link_loads)
        next_hop_ids = self._ids_from_counts(next_hop_counts)
        if link_ids != previous.link_ids or next_hop_ids != previous.next_hop_ids:
            return None

        layout = previous.layout
        tags = dict(previous.tags)
        fully = set(previous.fully_encoded)
        tag_patch: Dict[Prefix, Optional[int]] = {}
        for prefix, _, new_path, _, new_backups in changes:
            if new_path is None:
                if tags.pop(prefix, None) is not None:
                    tag_patch[prefix] = None
                fully.discard(prefix)
                continue
            tag, fully_encoded = self._tag_for(
                prefix, new_path, new_backups, link_ids, next_hop_ids, layout
            )
            if tags.get(prefix) != tag:
                tag_patch[prefix] = tag
            tags[prefix] = tag
            if fully_encoded:
                fully.add(prefix)
            else:
                fully.discard(prefix)

        encoded = EncodedTags(
            config=config,
            layout=layout,
            tags=tags,
            link_ids=link_ids,
            next_hop_ids=next_hop_ids,
            encoded_prefix_count=len(fully),
            skipped_links=self._skipped_links(link_loads, link_ids),
            link_loads=link_loads,
            next_hop_counts=next_hop_counts,
            fully_encoded=fully,
        )
        return encoded, tag_patch

    def reroute_rules(
        self,
        encoded: EncodedTags,
        link: Link,
        backups_by_next_hop: Mapping[int, int],
    ) -> List[WildcardRule]:
        """Wildcard rules rerouting all traffic crossing ``link``.

        ``backups_by_next_hop`` maps backup next-hop AS -> number of prefixes
        expected to move there (only used for rule descriptions).  One rule is
        emitted per (position where the link is encoded, backup next-hop), as
        in §6.5.
        """
        link = _canonical(link)
        rules: List[WildcardRule] = []
        for position, mapping in sorted(encoded.link_ids.items()):
            identifier = mapping.get(link)
            if identifier is None:
                continue
            shift, width = encoded.layout.position_groups[position]
            depth = min(position, self.config.backup_depth)
            backup_shift, backup_width = encoded.layout.backup_groups[depth]
            for next_hop, count in sorted(backups_by_next_hop.items()):
                next_hop_id = encoded.next_hop_ids.get(next_hop)
                if next_hop_id is None:
                    continue
                value = (identifier << shift) | (next_hop_id << backup_shift)
                mask = (((1 << width) - 1) << shift) | (
                    ((1 << backup_width) - 1) << backup_shift
                )
                rules.append(
                    WildcardRule(
                        value=value,
                        mask=mask,
                        next_hop=next_hop,
                        description=(
                            f"link {link} at position {position} -> AS {next_hop}"
                            f" ({count} prefixes)"
                        ),
                    )
                )
        return rules

    def coverage(
        self,
        encoded: EncodedTags,
        best_paths: Mapping[Prefix, ASPath],
        prefixes: Iterable[Prefix],
        links: Iterable[Link],
    ) -> float:
        """Fraction of ``prefixes`` reroutable by tag rules for ``links``.

        This is the paper's *encoding performance* (Fig. 7): among the
        prefixes predicted by the inference, how many cross one of the
        inferred links at an encoded position.
        """
        wanted = {_canonical(link) for link in links}
        prefixes = list(prefixes)
        if not prefixes:
            return 1.0
        covered = 0
        for prefix in prefixes:
            path = best_paths.get(prefix)
            if path is None:
                continue
            for link, position in path.links_with_positions():
                if link in wanted and encoded.is_encoded(link, position):
                    covered += 1
                    break
        return covered / len(prefixes)

    # -- internals ---------------------------------------------------------------

    def _link_loads(
        self, best_paths: Mapping[Prefix, ASPath]
    ) -> Dict[Tuple[Link, int], int]:
        """Number of prefixes crossing each (link, position) pair."""
        loads: Dict[Tuple[Link, int], int] = {}
        for path in best_paths.values():
            for link, position in path.links_with_positions():
                if position > self.config.max_path_depth:
                    break
                key = (link, position)
                loads[key] = loads.get(key, 0) + 1
        return loads

    def _allocate_link_ids(
        self, link_loads: Mapping[Tuple[Link, int], int]
    ) -> Dict[int, Dict[Link, int]]:
        """Greedy identifier allocation under the part-1 bit budget.

        Links are considered heaviest first; a link is accepted if, after
        (possibly) widening its position's bit group to fit one more
        identifier, the total width of all groups still fits ``path_bits``.
        Identifier 0 of every group is reserved to mean "nothing encoded".
        """
        config = self.config
        eligible = sorted(
            (
                (load, link, position)
                for (link, position), load in link_loads.items()
                if load >= config.prefix_threshold
            ),
            key=lambda item: (-item[0], item[2], item[1]),
        )
        counts: Dict[int, int] = {}
        accepted: Dict[int, Dict[Link, int]] = {}

        def total_width(position_counts: Mapping[int, int]) -> int:
            return sum(
                _bits_needed(count + 1) for count in position_counts.values()
            )

        for load, link, position in eligible:
            trial = dict(counts)
            trial[position] = trial.get(position, 0) + 1
            if total_width(trial) > config.path_bits:
                continue
            counts = trial
            accepted.setdefault(position, {})[link] = counts[position]
        return accepted

    def _build_layout(self, link_ids: Mapping[int, Mapping[Link, int]]) -> TagLayout:
        config = self.config
        layout = TagLayout(total_bits=config.total_bits)
        # Part 1: position groups, packed from the top of the tag downwards.
        cursor = config.total_bits
        for position in sorted(link_ids):
            width = _bits_needed(len(link_ids[position]) + 1)
            cursor -= width
            layout.position_groups[position] = (cursor, width)
        # Part 2: primary group then backup groups, packed from bit 0 upwards.
        width = config.bits_per_nexthop
        layout.primary_group = (0, width)
        for depth in range(1, config.backup_depth + 1):
            layout.backup_groups[depth] = (depth * width, width)
        return layout

    def _next_hop_counts(
        self,
        best_paths: Mapping[Prefix, ASPath],
        backups: Mapping[Prefix, Mapping[Link, BackupSelection]],
        neighbors: Optional[Sequence[int]],
    ) -> Dict[int, int]:
        """Usage count of every next-hop neighbor (the allocation input)."""
        counts: Dict[int, int] = {}
        if neighbors:
            for neighbor in neighbors:
                counts[neighbor] = counts.get(neighbor, 0)
        for path in best_paths.values():
            first = path.first_hop
            if first is not None:
                counts[first] = counts.get(first, 0) + 1
        for per_link in backups.values():
            for selection in per_link.values():
                counts[selection.next_hop] = counts.get(selection.next_hop, 0) + 1
        return counts

    def _ids_from_counts(self, counts: Mapping[int, int]) -> Dict[int, int]:
        """Assign identifiers (1..max) to next-hop neighbors, busiest first."""
        ordered = sorted(counts, key=lambda asn: (-counts[asn], asn))
        limit = self.config.max_next_hops
        return {asn: index + 1 for index, asn in enumerate(ordered[:limit])}

    def _skipped_links(
        self,
        link_loads: Mapping[Tuple[Link, int], int],
        link_ids: Mapping[int, Mapping[Link, int]],
    ) -> List[Tuple[Link, int, int]]:
        """Threshold-eligible (link, position) pairs the bit budget rejected."""
        return [
            (link, position, load)
            for (link, position), load in sorted(
                link_loads.items(), key=lambda item: -item[1]
            )
            if link not in link_ids.get(position, {})
            and load >= self.config.prefix_threshold
        ]

    def _tag_for(
        self,
        prefix: Prefix,
        path: ASPath,
        prefix_backups: Mapping[Link, BackupSelection],
        link_ids: Mapping[int, Mapping[Link, int]],
        next_hop_ids: Mapping[int, int],
        layout: TagLayout,
    ) -> Tuple[int, bool]:
        config = self.config
        tag = 0
        fully_encoded = True

        # Part 1: the link identifier of every encoded position of the path.
        for link, position in path.links_with_positions():
            if position > config.max_path_depth:
                break
            group = layout.position_groups.get(position)
            if group is None:
                fully_encoded = False
                continue
            identifier = link_ids.get(position, {}).get(link)
            if identifier is None:
                fully_encoded = False
                continue
            shift, _ = group
            tag |= identifier << shift

        # Part 2: primary next-hop and per-depth backup next-hops.
        primary = path.first_hop
        if primary is not None:
            primary_id = next_hop_ids.get(primary)
            if primary_id is not None:
                shift, _ = layout.primary_group
                tag |= primary_id << shift
            else:
                fully_encoded = False

        by_depth = self._backups_by_depth(path, prefix_backups)
        for depth, selection in by_depth.items():
            if depth > config.backup_depth:
                continue
            group = layout.backup_groups.get(depth)
            if group is None:
                continue
            backup_id = next_hop_ids.get(selection.next_hop)
            if backup_id is None:
                fully_encoded = False
                continue
            shift, _ = group
            tag |= backup_id << shift
        return tag, fully_encoded

    def _backups_by_depth(
        self, path: ASPath, prefix_backups: Mapping[Link, BackupSelection]
    ) -> Dict[int, BackupSelection]:
        """Map protected depth -> backup, from the per-link backup table.

        Depth 1 protects the first link of the path (router <-> neighbor or
        neighbor <-> next AS); deeper depths protect links farther along the
        path.  The backup table is keyed by link, so we look the path's links
        up in order.
        """
        result: Dict[int, BackupSelection] = {}
        links = path.links_with_positions()
        for link, position in links:
            selection = prefix_backups.get(_canonical(link))
            if selection is not None and position not in result:
                result[position] = selection
        # The depth-1 slot may also protect the (local, neighbor) session link
        # when the backup table contains it (its position is 1 as well).
        for link, selection in prefix_backups.items():
            if path.first_hop is not None and path.first_hop in link:
                result.setdefault(1, selection)
        return result


def _bits_needed(distinct_values: int) -> int:
    """Bits needed to represent ``distinct_values`` distinct values."""
    if distinct_values <= 1:
        return 0
    return math.ceil(math.log2(distinct_values))
