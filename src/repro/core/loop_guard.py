"""Run-time safety monitor for fast-rerouted traffic (§3.3, Assumption 1).

SWIFT's safety argument assumes that, during an outage, other routers only
change the forwarding paths actually affected by the outage.  If the backup
next-hop a SWIFTED router reroutes to later switches away from the path it
had been offering (for unrelated reasons), a transient inter-domain loop can
form.  The paper notes that "SWIFT can quickly detect and mitigate such a
loop: s can monitor whether n stops offering the BGP path to which it has
fast-rerouted, and select another backup next-hop."

:class:`LoopGuard` implements that monitor: it remembers, per reroute action,
the backup next-hop and the AS path it was offering, watches the subsequent
BGP updates from that next-hop, and reports (or automatically repairs)
reroutes whose backup path disappeared or changed onto the failed region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.messages import BGPMessage, Update
from repro.bgp.prefix import Prefix

__all__ = ["GuardedReroute", "LoopGuard", "LoopAlert"]

Link = Tuple[int, int]


def _canonical(link: Link) -> Link:
    return link if link[0] <= link[1] else (link[1], link[0])


@dataclass(frozen=True)
class GuardedReroute:
    """One reroute decision being monitored."""

    prefix: Prefix
    backup_next_hop: int
    backup_path: ASPath
    avoided_links: Tuple[Link, ...]


@dataclass(frozen=True)
class LoopAlert:
    """Raised (returned) when a monitored backup stops being safe."""

    prefix: Prefix
    backup_next_hop: int
    reason: str
    timestamp: float


class LoopGuard:
    """Watches the backup next-hops used by active SWIFT reroutes.

    Parameters
    ----------
    on_alert:
        Optional callback invoked with each :class:`LoopAlert`; a SWIFTED
        router wires this to "pick another backup next-hop / fall back to
        per-prefix BGP" logic.
    """

    def __init__(self, on_alert: Optional[Callable[[LoopAlert], None]] = None) -> None:
        self._guards: Dict[Prefix, GuardedReroute] = {}
        self._on_alert = on_alert
        self.alerts: List[LoopAlert] = []

    # -- registration ---------------------------------------------------------

    def watch(
        self,
        prefix: Prefix,
        backup_next_hop: int,
        backup_path: ASPath,
        avoided_links: Sequence[Link],
    ) -> None:
        """Start monitoring one rerouted prefix."""
        self._guards[prefix] = GuardedReroute(
            prefix=prefix,
            backup_next_hop=backup_next_hop,
            backup_path=backup_path,
            avoided_links=tuple(_canonical(link) for link in avoided_links),
        )

    def watch_reroute(
        self,
        rerouted_prefixes: Sequence[Prefix],
        backup_next_hop: int,
        backup_path_of: Callable[[Prefix], Optional[ASPath]],
        avoided_links: Sequence[Link],
    ) -> int:
        """Monitor a whole reroute action; returns how many prefixes are watched."""
        count = 0
        for prefix in rerouted_prefixes:
            path = backup_path_of(prefix)
            if path is None:
                continue
            self.watch(prefix, backup_next_hop, path, avoided_links)
            count += 1
        return count

    def release(self, prefix: Prefix) -> None:
        """Stop monitoring one prefix (e.g. BGP re-converged for it)."""
        self._guards.pop(prefix, None)

    def release_all(self) -> None:
        """Stop monitoring everything (SWIFT rules removed)."""
        self._guards.clear()

    @property
    def watched_count(self) -> int:
        """Number of prefixes currently monitored."""
        return len(self._guards)

    # -- monitoring --------------------------------------------------------------

    def observe(self, message: BGPMessage) -> List[LoopAlert]:
        """Inspect one BGP message from any peer; return any alerts it causes.

        Two conditions raise an alert for a monitored prefix when the message
        comes from its backup next-hop:

        * the next-hop withdraws the prefix — the backup path is gone;
        * the next-hop announces a new path that traverses one of the links
          the reroute was meant to avoid — following it would re-enter the
          failed region (and can create the loop described in §3.3).
        """
        if not isinstance(message, Update):
            return []
        alerts: List[LoopAlert] = []
        for prefix in message.withdrawals:
            guard = self._guards.get(prefix)
            if guard is not None and guard.backup_next_hop == message.peer_as:
                alerts.append(
                    LoopAlert(
                        prefix=prefix,
                        backup_next_hop=guard.backup_next_hop,
                        reason="backup next-hop withdrew the prefix",
                        timestamp=message.timestamp,
                    )
                )
        for announcement in message.announcements:
            guard = self._guards.get(announcement.prefix)
            if guard is None or guard.backup_next_hop != message.peer_as:
                continue
            new_links = {
                _canonical(link) for link in announcement.attributes.as_path.links()
            }
            crossed = new_links & set(guard.avoided_links)
            if crossed:
                alerts.append(
                    LoopAlert(
                        prefix=announcement.prefix,
                        backup_next_hop=guard.backup_next_hop,
                        reason=(
                            "backup next-hop switched onto an avoided link "
                            f"{sorted(crossed)[0]}"
                        ),
                        timestamp=message.timestamp,
                    )
                )
        for alert in alerts:
            self._guards.pop(alert.prefix, None)
            self.alerts.append(alert)
            if self._on_alert is not None:
                self._on_alert(alert)
        return alerts

    def observe_stream(self, messages: Sequence[BGPMessage]) -> List[LoopAlert]:
        """Inspect a sequence of messages; returns all raised alerts."""
        alerts: List[LoopAlert] = []
        for message in messages:
            alerts.extend(self.observe(message))
        return alerts
