"""On-line burst detection (§4.1).

"SWIFT monitors the received input stream of BGP messages, looking for
significant increases in the frequency of withdrawals.  It classifies a set
of messages as the beginning of a burst when such frequency (say, number of
withdrawals per 10 seconds) in the input stream is higher than the 99.99th
percentile recorded in the recent history (e.g., during the previous month)."

:class:`BurstDetector` keeps a sliding window of recent withdrawals, compares
the in-window count against a threshold (either given explicitly or learnt
from history), and tracks burst start / end transitions.  The end of a burst
uses the lower stop threshold of §2.2.1 so that the two detection paths
(measurement and run-time) share one definition.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Deque, List, Optional, Sequence, Tuple

from repro.core import kernels

__all__ = ["BurstDetector", "BurstDetectorConfig", "BurstEvent", "BurstState"]


class BurstState(Enum):
    """Whether the detector currently believes a burst is in progress."""

    QUIET = "quiet"
    BURSTING = "bursting"


@dataclass(frozen=True)
class BurstEvent:
    """A state transition reported by the detector."""

    kind: str  # "start" or "end"
    timestamp: float
    withdrawals_in_window: int


@dataclass(frozen=True)
class BurstDetectorConfig:
    """Detection thresholds.

    ``start_threshold`` is the number of withdrawals per window above which a
    burst starts; the paper uses the 99.99th percentile of the recent history,
    which over its dataset equals 1,500 withdrawals per 10 s.  ``stop_threshold``
    (9, the 90th percentile) ends the burst.
    """

    window_seconds: float = 10.0
    start_threshold: int = 1500
    stop_threshold: int = 9

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.start_threshold <= 0:
            raise ValueError("start_threshold must be positive")
        if self.stop_threshold < 0:
            raise ValueError("stop_threshold must be non-negative")
        if self.stop_threshold >= self.start_threshold:
            raise ValueError("stop_threshold must be below start_threshold")


class BurstDetector:
    """Sliding-window withdrawal-rate detector."""

    def __init__(
        self,
        config: Optional[BurstDetectorConfig] = None,
        kernel=None,
    ) -> None:
        self.config = config or BurstDetectorConfig()
        self._kernel = kernel if kernel is not None else kernels.default_backend()
        self._window: Deque[Tuple[float, int]] = deque()
        self._in_window = 0
        self.state = BurstState.QUIET
        self.current_burst_start: Optional[float] = None
        self.events: List[BurstEvent] = []

    # -- feeding ------------------------------------------------------------

    def observe_withdrawals(self, timestamp: float, count: int = 1) -> Optional[BurstEvent]:
        """Record ``count`` withdrawals at ``timestamp``; return a transition if any."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._window.append((timestamp, count))
        self._in_window += count
        self._expire(timestamp)
        return self._transition(timestamp)

    def observe_time(self, timestamp: float) -> Optional[BurstEvent]:
        """Advance time without new withdrawals (lets quiet periods end bursts)."""
        self._expire(timestamp)
        return self._transition(timestamp)

    def observe_run(self, run, kernel=None) -> List[Tuple[int, BurstEvent]]:
        """Feed a columnar run; return ``(message index, event)`` transitions.

        Equivalent to calling :meth:`observe_withdrawals` for every UPDATE
        row of the run that carries withdrawals and :meth:`observe_time` for
        every other UPDATE row, in row order — the contract the inference
        engine's per-message path lives by — but driven by window arithmetic
        over the run's raw columns: a quiet detector cannot transition on a
        zero-count observation, so quiet stretches are skipped with one
        bisect over the cumulative withdrawal-bound column instead of a call
        per row.  Non-UPDATE rows are ignored, exactly as
        :meth:`~repro.core.inference.InferenceEngine.process_message`
        ignores non-UPDATE messages.

        ``run`` is duck-typed (no import of the traces layer): it must carry
        ``trace``/``start``/``stop``, the interface documented in
        :mod:`repro.traces.columnar`.  The detector's state (sliding window,
        ``events`` log, ``current_burst_start``) ends up exactly as after
        the per-message calls.

        The scan itself is a kernel
        (:func:`repro.core.kernels.stdlib.detector_scan` and its vectorised
        numpy twin): the kernel walks the raw columns and reports the
        transitions plus the final window state; this method folds them
        back into detector state and :class:`BurstEvent` objects.  An
        explicit ``kernel`` overrides the backend picked at construction.
        """
        trace = run.trace
        config = self.config
        backend = kernel if kernel is not None else self._kernel
        transitions, self._in_window, bursting = backend.detector_scan(
            trace.msg_time,
            trace.msg_kind,
            trace.wd_end,
            run.start,
            run.stop,
            self._window,
            self._in_window,
            self.state is BurstState.BURSTING,
            config.window_seconds,
            config.start_threshold,
            config.stop_threshold,
        )
        events: List[Tuple[int, BurstEvent]] = []
        for row, kind, timestamp, count, burst_start in transitions:
            event = BurstEvent(kind, timestamp, count)
            self.events.append(event)
            events.append((row, event))
            self.current_burst_start = burst_start if kind == "start" else None
        self.state = BurstState.BURSTING if bursting else BurstState.QUIET
        return events

    # -- queries ------------------------------------------------------------

    @property
    def withdrawals_in_window(self) -> int:
        """Withdrawals currently inside the sliding window."""
        return self._in_window

    @property
    def is_bursting(self) -> bool:
        """True while a burst is in progress."""
        return self.state == BurstState.BURSTING

    def reset(self) -> None:
        """Forget all state (used when a session resets)."""
        self._window.clear()
        self._in_window = 0
        self.state = BurstState.QUIET
        self.current_burst_start = None

    # -- internals ------------------------------------------------------------

    def _expire(self, now: float) -> None:
        horizon = now - self.config.window_seconds
        while self._window and self._window[0][0] < horizon:
            _, count = self._window.popleft()
            self._in_window -= count

    def _transition(self, timestamp: float) -> Optional[BurstEvent]:
        if self.state == BurstState.QUIET and self._in_window >= self.config.start_threshold:
            self.state = BurstState.BURSTING
            start = self._window[0][0] if self._window else timestamp
            self.current_burst_start = start
            event = BurstEvent("start", timestamp, self._in_window)
            self.events.append(event)
            return event
        if self.state == BurstState.BURSTING and self._in_window <= self.config.stop_threshold:
            self.state = BurstState.QUIET
            self.current_burst_start = None
            event = BurstEvent("end", timestamp, self._in_window)
            self.events.append(event)
            return event
        return None


def percentile_threshold(
    window_counts: Sequence[int], percentile: float
) -> int:
    """Compute a detection threshold as a percentile of historical window counts.

    The paper derives its 1,500-withdrawal start threshold as the 99.99th
    percentile of the number of withdrawals observed over any 10 s period in
    the previous month; this helper lets a deployment recompute the threshold
    from its own history.
    """
    if not window_counts:
        raise ValueError("need at least one historical window count")
    if not 0.0 <= percentile <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(window_counts)
    rank = (percentile / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return int(round(ordered[lower] * (1 - fraction) + ordered[upper] * fraction))
