"""A SWIFTED border router (§3).

:class:`SwiftedRouter` composes the pieces built elsewhere in this package:

* a :class:`~repro.bgp.speaker.BGPSpeaker` holding the per-peer Adj-RIB-Ins
  and the Loc-RIB,
* a :class:`~repro.core.backup.BackupComputer` pre-computing policy-compliant
  backup next-hops for every prefix and protected link,
* a :class:`~repro.core.encoding.TagEncoder` producing the two-part tags and
  the wildcard reroute rules,
* a :class:`~repro.dataplane.fib.TwoStageForwardingTable` holding the tags
  (stage 1) and the forwarding rules (stage 2),
* one :class:`~repro.core.inference.InferenceEngine` per peering session,
  watching the incoming streams for bursts.

Upon an accepted inference the router installs one high-priority rule per
(inferred link position, backup next-hop) — rerouting every affected prefix
at once — and records a :class:`RerouteAction` with the modelled data-plane
update latency.  When BGP has re-converged (the burst ends), the SWIFT rules
are withdrawn and forwarding falls back to the BGP-derived state (§3).

Message streams should be fed through :meth:`SwiftedRouter.receive_batch`
where possible: consecutive same-peer runs are handed to the session's
inference engine in bulk, keeping per-message Python overhead off the burst
hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.messages import BGPMessage, Update
from repro.bgp.prefix import Prefix
from repro.bgp.rib import RibEntry
from repro.bgp.speaker import BGPSpeaker
from repro.core.backup import BackupComputer, BackupSelection, ReroutingPolicy
from repro.core.encoding import EncodedTags, EncoderConfig, TagEncoder, WildcardRule
from repro.core.history import HistoryModel
from repro.core.inference import InferenceConfig, InferenceEngine, InferenceResult
from repro.dataplane.fib import TwoStageForwardingTable
from repro.dataplane.timing import FibUpdateTimingModel

__all__ = ["RerouteAction", "SwiftConfig", "SwiftedRouter"]

Link = Tuple[int, int]

#: Priority used for the rules SWIFT installs upon an inference; the BGP
#: default rules sit at priority 0.
SWIFT_RULE_PRIORITY = 100


@dataclass(frozen=True)
class SwiftConfig:
    """Configuration of a SWIFTED router."""

    inference: InferenceConfig = field(default_factory=InferenceConfig)
    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    policy: ReroutingPolicy = field(default_factory=ReroutingPolicy)
    timing: FibUpdateTimingModel = field(default_factory=FibUpdateTimingModel)
    max_backup_depth: int = 4


@dataclass(frozen=True)
class RerouteAction:
    """One SWIFT fast-reroute activation."""

    timestamp: float
    peer_as: int
    inferred_links: Tuple[Link, ...]
    rules: Tuple[WildcardRule, ...]
    rerouted_prefixes: FrozenSet[Prefix]
    dataplane_update_seconds: float

    @property
    def rule_count(self) -> int:
        """Number of wildcard rules installed by this activation."""
        return len(self.rules)

    @property
    def completion_time(self) -> float:
        """Wall-clock time at which the reroute is fully installed."""
        return self.timestamp + self.dataplane_update_seconds


class SwiftedRouter:
    """A border router running SWIFT."""

    def __init__(
        self,
        local_as: int,
        config: Optional[SwiftConfig] = None,
        history: Optional[HistoryModel] = None,
    ) -> None:
        self.local_as = local_as
        self.config = config or SwiftConfig()
        self.speaker = BGPSpeaker(local_as)
        self.forwarding = TwoStageForwardingTable()
        self.backup_computer = BackupComputer(
            policy=self.config.policy, max_depth=self.config.max_backup_depth
        )
        self.encoder = TagEncoder(self.config.encoder)
        self._history = history
        self._engines: Dict[int, InferenceEngine] = {}
        self._encoded: Optional[EncodedTags] = None
        self._backup_table: Dict[Prefix, Dict[Link, BackupSelection]] = {}
        self.reroutes: List[RerouteAction] = []
        self._provisioned = False

    # -- session management --------------------------------------------------

    def add_peer(self, peer_as: int, name: Optional[str] = None) -> None:
        """Create a peering session with ``peer_as``."""
        self.speaker.add_peer(peer_as, name=name)

    def load_initial_routes(
        self,
        peer_as: int,
        routes: Mapping[Prefix, "ASPath"],
        timestamp: float = 0.0,
        local_pref: int = 100,
    ) -> None:
        """Install an initial Adj-RIB-In for ``peer_as`` (e.g. a table dump).

        ``local_pref`` lets the caller express the operator's preference
        between neighbors (e.g. the paper's Fig. 1 router prefers its path
        through AS 2 even though AS 3 offers a shorter one).
        """
        from repro.bgp.attributes import PathAttributes  # local import to avoid cycle

        for prefix in sorted(routes):
            attributes = PathAttributes(
                as_path=routes[prefix], next_hop=peer_as, local_pref=local_pref
            )
            self.speaker.receive(
                Update.announce(timestamp, peer_as, prefix, attributes)
            )

    # -- provisioning -----------------------------------------------------------

    def provision(self) -> EncodedTags:
        """Pre-compute backups, tags and the default forwarding rules (§3.2).

        Must be called after the initial routes are loaded and before the
        burst arrives; a real deployment re-runs it periodically / upon
        significant RIB changes.
        """
        best_routes: Dict[Prefix, RibEntry] = {
            entry.prefix: entry for entry in self.speaker.loc_rib.best_entries()
        }
        self._backup_table = self.backup_computer.compute_table(
            self.local_as, best_routes, self.speaker.alternate_routes
        )
        best_paths = {prefix: entry.as_path for prefix, entry in best_routes.items()}
        self._encoded = self.encoder.encode(
            best_paths, self._backup_table, neighbors=self.speaker.peer_ases
        )

        self.forwarding.clear_rules()
        self.forwarding.load_tags(self._encoded.tags)
        self._install_default_rules()

        # (Re-)create one inference engine per session from its Adj-RIB-In.
        self._engines = {}
        for session in self.speaker.sessions():
            rib = {
                entry.prefix: entry.as_path for entry in session.rib_in.entries()
            }
            self._engines[session.peer_as] = InferenceEngine(
                rib,
                config=self.config.inference,
                history=self._history,
                local_as=self.local_as,
                peer_as=session.peer_as,
            )
        self._provisioned = True
        return self._encoded

    def _install_default_rules(self) -> None:
        """Default stage-2 rules: forward on the primary next-hop of the tag."""
        assert self._encoded is not None
        shift, width = self._encoded.layout.primary_group
        for neighbor, identifier in self._encoded.next_hop_ids.items():
            rule = WildcardRule(
                value=identifier << shift,
                mask=((1 << width) - 1) << shift,
                next_hop=neighbor,
                description=f"default: primary next-hop AS {neighbor}",
            )
            self.forwarding.install_rule(rule, priority=0)

    # -- message processing --------------------------------------------------------

    def receive(self, message: BGPMessage) -> Optional[RerouteAction]:
        """Process one BGP message; returns a reroute action if SWIFT fires."""
        if not self._provisioned:
            raise RuntimeError("provision() must be called before receiving updates")
        self.speaker.receive(message)
        engine = self._engines.get(message.peer_as)
        if engine is None:
            return None
        result = engine.process_message(message)
        if result is None:
            return None
        return self._apply_inference(message.peer_as, result)

    def receive_batch(self, messages: Iterable[BGPMessage]) -> List[RerouteAction]:
        """Process a batch of messages; returns every reroute action.

        Messages are fed to the speaker one by one (its RIB state is
        order-sensitive) but handed to each session's inference engine in
        consecutive same-peer runs via
        :meth:`~repro.core.inference.InferenceEngine.process_batch`, avoiding
        per-message engine dispatch on the hot path.  Reroute application only
        reads the provision-time tables, so batching does not change the
        resulting actions.
        """
        if not self._provisioned:
            raise RuntimeError("provision() must be called before receiving updates")
        actions: List[RerouteAction] = []
        run: List[BGPMessage] = []
        run_peer: Optional[int] = None

        def flush() -> None:
            if not run:
                return
            engine = self._engines.get(run_peer)
            if engine is not None:
                for result in engine.process_batch(run):
                    action = self._apply_inference(run_peer, result)
                    if action is not None:
                        actions.append(action)
            run.clear()

        for message in messages:
            self.speaker.receive(message)
            if message.peer_as != run_peer:
                flush()
                run_peer = message.peer_as
            run.append(message)
        flush()
        return actions

    def receive_all(self, messages: Iterable[BGPMessage]) -> List[RerouteAction]:
        """Process a stream of messages; returns every reroute action."""
        return self.receive_batch(messages)

    # -- rerouting ---------------------------------------------------------------

    def _apply_inference(
        self, peer_as: int, result: InferenceResult
    ) -> Optional[RerouteAction]:
        assert self._encoded is not None
        rules: List[WildcardRule] = []
        shared_endpoints = result.shared_endpoints
        for link in result.inferred_links:
            backups = self._backups_for_link(
                link, result.prediction.predicted_prefixes, shared_endpoints
            )
            if not backups:
                continue
            rules.extend(self.encoder.reroute_rules(self._encoded, link, backups))
        if not rules:
            return None
        self.forwarding.install_rules(rules, priority=SWIFT_RULE_PRIORITY)
        duration = self.config.timing.rule_update_time(len(rules))
        action = RerouteAction(
            timestamp=result.timestamp,
            peer_as=peer_as,
            inferred_links=result.inferred_links,
            rules=tuple(rules),
            rerouted_prefixes=result.prediction.predicted_prefixes,
            dataplane_update_seconds=duration,
        )
        self.reroutes.append(action)
        return action

    def _backups_for_link(
        self,
        link: Link,
        prefixes: FrozenSet[Prefix],
        shared_endpoints: FrozenSet[int] = frozenset(),
    ) -> Dict[int, int]:
        """Backup next-hops (and prefix counts) for traffic crossing ``link``.

        When the inference aggregated several links, ``shared_endpoints`` are
        the ASes common to all of them; backups whose path traverses one of
        those endpoints are avoided when possible (§4.2 safety rule), falling
        back to the pre-computed selection otherwise.
        """
        link = link if link[0] <= link[1] else (link[1], link[0])
        counts: Dict[int, int] = {}
        for prefix in prefixes:
            per_link = self._backup_table.get(prefix)
            if not per_link:
                continue
            selection = per_link.get(link)
            if selection is None:
                # Fall back to any backup of the prefix avoiding the inferred
                # link (e.g. the link was not individually protected).
                selection = next(
                    (
                        candidate
                        for candidate in per_link.values()
                        if link not in candidate.as_path.links()
                    ),
                    None,
                )
            if selection is not None and shared_endpoints:
                safer = next(
                    (
                        candidate
                        for candidate in per_link.values()
                        if not (shared_endpoints & set(candidate.as_path.asns))
                    ),
                    None,
                )
                if safer is not None:
                    selection = safer
            if selection is None:
                continue
            counts[selection.next_hop] = counts.get(selection.next_hop, 0) + 1
        return counts

    def clear_reroutes(self) -> int:
        """Remove the SWIFT rules (BGP has re-converged, §3 "fall back")."""
        return self.forwarding.clear_rules(min_priority=SWIFT_RULE_PRIORITY)

    # -- forwarding & introspection ---------------------------------------------------

    def forward(self, destination: int) -> Optional[int]:
        """Next-hop the data plane currently uses for ``destination``."""
        return self.forwarding.forward_address(destination)

    @property
    def encoded_tags(self) -> Optional[EncodedTags]:
        """The tag encoding produced by the last :meth:`provision` call."""
        return self._encoded

    @property
    def backup_table(self) -> Dict[Prefix, Dict[Link, BackupSelection]]:
        """The per-prefix, per-link backup table."""
        return self._backup_table

    def engine_for(self, peer_as: int) -> InferenceEngine:
        """The inference engine watching the session with ``peer_as``."""
        return self._engines[peer_as]

    @property
    def last_reroute(self) -> Optional[RerouteAction]:
        """The most recent reroute action, if any."""
        return self.reroutes[-1] if self.reroutes else None
