"""A SWIFTED border router (§3).

:class:`SwiftedRouter` composes the pieces built elsewhere in this package:

* a :class:`~repro.bgp.speaker.BGPSpeaker` holding the per-peer Adj-RIB-Ins
  and the Loc-RIB,
* a :class:`~repro.core.backup.BackupComputer` pre-computing policy-compliant
  backup next-hops for every prefix and protected link,
* a :class:`~repro.core.encoding.TagEncoder` producing the two-part tags and
  the wildcard reroute rules,
* a :class:`~repro.dataplane.fib.TwoStageForwardingTable` holding the tags
  (stage 1) and the forwarding rules (stage 2),
* one :class:`~repro.core.inference.InferenceEngine` per peering session,
  watching the incoming streams for bursts.

Upon an accepted inference the router installs one high-priority rule per
(inferred link position, backup next-hop) — rerouting every affected prefix
at once — and records a :class:`RerouteAction` with the modelled data-plane
update latency.  When BGP has re-converged (the burst ends), the SWIFT rules
are withdrawn and forwarding falls back to the BGP-derived state (§3).

Message streams should be fed through :meth:`SwiftedRouter.receive_batch`
where possible: the speaker applies the whole batch before running best-path
selection once per touched prefix, and consecutive same-peer runs are handed
to the session's inference engine in bulk, keeping per-message Python
overhead off the burst hot path.

Re-provisioning is *incremental*: :meth:`SwiftedRouter.provision` keeps the
per-session :class:`~repro.core.inference.InferenceEngine`\\ s (and their
link/prefix indexes) alive, patching them from the speaker's route-change
stream, and only recomputes backup selections for prefixes whose best route
actually changed since the last call.  A warm re-provision therefore costs
O(changes), not O(RIB) — the paper's "re-runs it periodically / upon
significant RIB changes" loop becomes cheap enough to run after every quiet
period.  Pass ``full_rebuild=True`` to force the from-scratch path (also
taken automatically when the rerouting policy carries capacity limits, whose
global usage accounting is inherently non-incremental).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.messages import BGPMessage, Update
from repro.bgp.prefix import Prefix
from repro.bgp.rib import RibEntry, RouteChange, RouteChangeKind
from repro.bgp.speaker import BestRouteChange, BGPSpeaker
from repro.core import kernels
from repro.core.backup import BackupComputer, BackupSelection, ReroutingPolicy
from repro.core.encoding import EncodedTags, EncoderConfig, TagEncoder, WildcardRule
from repro.core.history import HistoryModel
from repro.core.inference import InferenceConfig, InferenceEngine, InferenceResult
from repro.dataplane.fib import TwoStageForwardingTable
from repro.dataplane.timing import FibUpdateTimingModel

__all__ = ["RerouteAction", "SwiftConfig", "SwiftedRouter"]

Link = Tuple[int, int]

#: Priority used for the rules SWIFT installs upon an inference; the BGP
#: default rules sit at priority 0.
SWIFT_RULE_PRIORITY = 100


@dataclass(frozen=True)
class SwiftConfig:
    """Configuration of a SWIFTED router."""

    inference: InferenceConfig = field(default_factory=InferenceConfig)
    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    policy: ReroutingPolicy = field(default_factory=ReroutingPolicy)
    timing: FibUpdateTimingModel = field(default_factory=FibUpdateTimingModel)
    max_backup_depth: int = 4


@dataclass(frozen=True)
class RerouteAction:
    """One SWIFT fast-reroute activation."""

    timestamp: float
    peer_as: int
    inferred_links: Tuple[Link, ...]
    rules: Tuple[WildcardRule, ...]
    rerouted_prefixes: FrozenSet[Prefix]
    dataplane_update_seconds: float

    @property
    def rule_count(self) -> int:
        """Number of wildcard rules installed by this activation."""
        return len(self.rules)

    @property
    def completion_time(self) -> float:
        """Wall-clock time at which the reroute is fully installed."""
        return self.timestamp + self.dataplane_update_seconds


class SwiftedRouter:
    """A border router running SWIFT."""

    def __init__(
        self,
        local_as: int,
        config: Optional[SwiftConfig] = None,
        history: Optional[HistoryModel] = None,
    ) -> None:
        self.local_as = local_as
        self.config = config or SwiftConfig()
        self.speaker = BGPSpeaker(local_as)
        self.forwarding = TwoStageForwardingTable()
        self.backup_computer = BackupComputer(
            policy=self.config.policy, max_depth=self.config.max_backup_depth
        )
        self.encoder = TagEncoder(self.config.encoder)
        self._history = history
        self._engines: Dict[int, InferenceEngine] = {}
        self._encoded: Optional[EncodedTags] = None
        self._backup_table: Dict[Prefix, Dict[Link, BackupSelection]] = {}
        # Per-prefix metadata mirroring the backup table: for every selection,
        # (next_hop, links of its path, ASes of its path) — precomputed once
        # per provision so inference-time fallback scans avoid re-deriving
        # path links per prefix (see _backups_for_link).
        self._backup_aux: Dict[Prefix, Tuple[Tuple[int, FrozenSet[Link], FrozenSet[int]], ...]] = {}
        # Best-path snapshot at the last encode, for per-prefix delta
        # re-encoding on warm provisions.
        self._encoded_paths: Dict[Prefix, ASPath] = {}
        self.reroutes: List[RerouteAction] = []
        self._provisioned = False
        # Incremental-provision bookkeeping: prefixes whose candidate routes
        # changed since the last provision (a superset of best-route changes —
        # an alternate appearing or vanishing also invalidates the prefix's
        # backup selections), and per-peer Adj-RIB-In deltas the inference
        # engines have not seen (routes loaded out-of-band, i.e. not through
        # receive()/receive_batch()).
        self._provision_dirty: Set[Prefix] = set()
        self._engine_dirty: Dict[int, Dict[Prefix, Optional[ASPath]]] = {}
        self._provisioned_peers: FrozenSet[int] = frozenset()
        self._feeding_engines = False
        self.last_provision_stats: Dict[str, int] = {}

    # -- session management --------------------------------------------------

    def add_peer(self, peer_as: int, name: Optional[str] = None) -> None:
        """Create a peering session with ``peer_as``."""
        session = self.speaker.add_peer(peer_as, name=name)
        session.add_change_observer(self._note_session_changes)

    def load_initial_routes(
        self,
        peer_as: int,
        routes: Mapping[Prefix, "ASPath"],
        timestamp: float = 0.0,
        local_pref: int = 100,
    ) -> None:
        """Install an initial Adj-RIB-In for ``peer_as`` (e.g. a table dump).

        ``local_pref`` lets the caller express the operator's preference
        between neighbors (e.g. the paper's Fig. 1 router prefers its path
        through AS 2 even though AS 3 offers a shorter one).  The routes are
        fed through the speaker's batched path, so best-path selection runs
        once per prefix regardless of the table size; path attributes are
        interned per distinct (AS path, LOCAL_PREF) so path-sharing prefix
        groups share one attribute object — real tables repeat a few
        thousand attribute sets across hundreds of thousands of prefixes,
        and the sharing is what lets the batched decision path collapse a
        group into a single selection.
        """
        from repro.bgp.attributes import PathAttributes  # local import to avoid cycle

        interned: Dict[Tuple[Tuple[int, ...], int], PathAttributes] = {}

        def attributes_for(prefix: Prefix) -> PathAttributes:
            path = routes[prefix]
            key = (path.asns, local_pref)
            attributes = interned.get(key)
            if attributes is None:
                attributes = interned[key] = PathAttributes(
                    as_path=path, next_hop=peer_as, local_pref=local_pref
                )
            return attributes

        self.speaker.receive_batch(
            Update.announce(timestamp, peer_as, prefix, attributes_for(prefix))
            for prefix in sorted(routes)
        )

    # -- change tracking ------------------------------------------------------

    def _note_session_changes(
        self, session, changes: List[RouteChange]
    ) -> None:
        """Session change observer feeding incremental-provision bookkeeping.

        Registered via
        :meth:`~repro.bgp.session.PeeringSession.add_change_observer` — it
        consumes only :class:`RouteChange` lists, never message objects, so
        the session's columnar fast path stays armed on SWIFTED routers.
        Every candidate-route change marks its prefix dirty for the next
        :meth:`provision`.  Messages flowing through :meth:`receive` /
        :meth:`receive_batch` / :meth:`receive_columnar` reach the session's
        inference engine directly (which maintains its own RIB view with
        burst-aware semantics); everything else — initial table loads,
        direct speaker use — also accumulates an Adj-RIB-In delta replayed
        into the engine at the next :meth:`provision`.
        """
        dirty = self._provision_dirty
        delta: Optional[Dict[Prefix, Optional[ASPath]]] = None
        if not self._feeding_engines:
            delta = self._engine_dirty.setdefault(session.peer_as, {})
        for change in changes:
            if change.kind == RouteChangeKind.UNCHANGED:
                continue
            dirty.add(change.prefix)
            if delta is not None:
                delta[change.prefix] = (
                    change.new.as_path if change.new is not None else None
                )

    # -- provisioning -----------------------------------------------------------

    def provision(self, full_rebuild: bool = False) -> EncodedTags:
        """Pre-compute backups, tags and the default forwarding rules (§3.2).

        Must be called after the initial routes are loaded and before the
        burst arrives; a real deployment re-runs it periodically / upon
        significant RIB changes.  Re-runs are incremental: engines stay alive
        and are patched from the recorded route-change stream, and backup /
        tag computation only re-runs for prefixes whose best route changed.
        ``full_rebuild=True`` forces the from-scratch path; rerouting
        policies with capacity limits always take it, because their global
        usage accounting cannot be patched per prefix.
        """
        peers = frozenset(self.speaker.peer_ases)
        incremental = (
            self._provisioned
            and not full_rebuild
            and peers == self._provisioned_peers
            and not self.config.policy.capacity_limits
        )
        best_routes: Dict[Prefix, RibEntry] = {
            entry.prefix: entry for entry in self.speaker.loc_rib.best_entries()
        }
        if incremental:
            dirty = self._provision_dirty
            self.last_provision_stats = {
                "mode": 1,
                "dirty_prefixes": len(dirty),
                "engine_deltas": sum(len(d) for d in self._engine_dirty.values()),
            }
            # Provisioning restores BGP-derived forwarding: any SWIFT rules
            # still installed are dropped, exactly as the full rebuild's
            # clear_rules() does.
            self.forwarding.clear_rules(min_priority=SWIFT_RULE_PRIORITY)
            if dirty:
                # Recompute backups only for the dirty prefixes, collecting
                # the per-prefix encoding deltas as we go.
                changes: List[
                    Tuple[Prefix, Optional[ASPath], Optional[ASPath], Tuple[int, ...], Dict[Link, BackupSelection]]
                ] = []
                for prefix in dirty:
                    old_path = self._encoded_paths.get(prefix)
                    old_hops = tuple(
                        item[0] for item in self._backup_aux.get(prefix, ())
                    )
                    best = best_routes.get(prefix)
                    if best is None:
                        self._backup_table.pop(prefix, None)
                        self._backup_aux.pop(prefix, None)
                        self._encoded_paths.pop(prefix, None)
                        changes.append((prefix, old_path, None, old_hops, {}))
                        continue
                    per_link = self._compute_prefix_backups(prefix, best)
                    if per_link:
                        self._backup_table[prefix] = per_link
                        self._backup_aux[prefix] = self._aux_of(per_link)
                    else:
                        self._backup_table.pop(prefix, None)
                        self._backup_aux.pop(prefix, None)
                    self._encoded_paths[prefix] = best.as_path
                    changes.append(
                        (prefix, old_path, best.as_path, old_hops, per_link)
                    )
                assert self._encoded is not None
                delta = self.encoder.encode_delta(
                    self._encoded, changes, neighbors=self.speaker.peer_ases
                )
                if delta is None:
                    # The identifier allocation moved: fall back to a full
                    # re-encode (backups above are already patched).
                    self._reencode(best_routes)
                    self.last_provision_stats["full_reencode"] = 1
                else:
                    self._encoded, tag_patch = delta
                    self.forwarding.update_tags(tag_patch)
                    self.last_provision_stats["tag_patch"] = len(tag_patch)
        else:
            self.last_provision_stats = {"mode": 0, "dirty_prefixes": len(best_routes)}
            self._backup_table = self.backup_computer.compute_table(
                self.local_as,
                best_routes,
                self.speaker.alternate_routes,
                candidates_of=self.speaker.loc_rib.candidate_map,
            )
            self._backup_aux = {
                prefix: self._aux_of(per_link)
                for prefix, per_link in self._backup_table.items()
            }
            self._reencode(best_routes)

        self._refresh_engines(rebuild=not incremental)
        self._provision_dirty.clear()
        self._engine_dirty.clear()
        self._provisioned_peers = peers
        self._provisioned = True
        assert self._encoded is not None
        return self._encoded

    def _reencode(self, best_routes: Mapping[Prefix, RibEntry]) -> None:
        """Re-run the full tag encoding and reload the forwarding state."""
        best_paths = {prefix: entry.as_path for prefix, entry in best_routes.items()}
        self._encoded = self.encoder.encode(
            best_paths, self._backup_table, neighbors=self.speaker.peer_ases
        )
        self._encoded_paths = best_paths
        self.forwarding.clear_rules()
        self.forwarding.load_tags(self._encoded.tags)
        self._install_default_rules()

    def _refresh_engines(self, rebuild: bool) -> None:
        """Create, patch or drop the per-session inference engines."""
        live_peers = set()
        for session in self.speaker.sessions():
            live_peers.add(session.peer_as)
            engine = self._engines.get(session.peer_as)
            if engine is None or rebuild:
                rib = {
                    entry.prefix: entry.as_path for entry in session.rib_in.entries()
                }
                self._engines[session.peer_as] = InferenceEngine(
                    rib,
                    config=self.config.inference,
                    history=self._history,
                    local_as=self.local_as,
                    peer_as=session.peer_as,
                )
            else:
                engine.flush_quiet_state()
                delta = self._engine_dirty.get(session.peer_as)
                if delta:
                    engine.apply_rib_delta(delta)
        for peer_as in list(self._engines):
            if peer_as not in live_peers:
                del self._engines[peer_as]

    def _compute_prefix_backups(
        self, prefix: Prefix, best: RibEntry
    ) -> Dict[Link, BackupSelection]:
        """Backup selections for one prefix (capacity-free incremental path)."""
        alternates = self.speaker.alternate_routes(prefix)
        per_link: Dict[Link, BackupSelection] = {}
        for link in self.backup_computer.protected_links(best.as_path, self.local_as):
            selection = self.backup_computer.select(prefix, link, alternates)
            if selection is not None:
                per_link[link] = selection
        return per_link

    @staticmethod
    def _aux_of(
        per_link: Mapping[Link, BackupSelection]
    ) -> Tuple[Tuple[int, FrozenSet[Link], FrozenSet[int]], ...]:
        """Per-selection (next_hop, path links, path ASes) in table order."""
        return tuple(
            (
                selection.next_hop,
                frozenset(selection.as_path.links()),
                frozenset(selection.as_path.asns),
            )
            for selection in per_link.values()
        )

    def _install_default_rules(self) -> None:
        """Default stage-2 rules: forward on the primary next-hop of the tag."""
        assert self._encoded is not None
        shift, width = self._encoded.layout.primary_group
        for neighbor, identifier in self._encoded.next_hop_ids.items():
            rule = WildcardRule(
                value=identifier << shift,
                mask=((1 << width) - 1) << shift,
                next_hop=neighbor,
                description=f"default: primary next-hop AS {neighbor}",
            )
            self.forwarding.install_rule(rule, priority=0)

    # -- message processing --------------------------------------------------------

    def receive(self, message: BGPMessage) -> Optional[RerouteAction]:
        """Process one BGP message; returns a reroute action if SWIFT fires."""
        if not self._provisioned:
            raise RuntimeError("provision() must be called before receiving updates")
        self._feeding_engines = True
        try:
            self.speaker.receive(message)
            engine = self._engines.get(message.peer_as)
            if engine is None:
                return None
            result = engine.process_message(message)
        finally:
            self._feeding_engines = False
        if result is None:
            return None
        return self._apply_inference(message.peer_as, result)

    def receive_batch(self, messages: Iterable[BGPMessage]) -> List[RerouteAction]:
        """Process a batch of messages; returns every reroute action.

        The speaker applies the whole batch's Adj-RIB-In / candidate changes
        as messages stream in and runs best-path selection once per touched
        prefix at the end (:class:`~repro.bgp.speaker.SpeakerBatch`), while
        each session's inference engine receives consecutive same-peer runs
        via :meth:`~repro.core.inference.InferenceEngine.process_batch` —
        per-message Python overhead stays off the burst hot path on both
        sides.  Reroute application only reads the provision-time tables, so
        batching does not change the resulting actions.
        """
        if not self._provisioned:
            raise RuntimeError("provision() must be called before receiving updates")
        actions: List[RerouteAction] = []
        run: List[BGPMessage] = []
        run_peer: Optional[int] = None
        batch = self.speaker.begin_batch()

        def flush() -> None:
            if not run:
                return
            batch.add_run(run_peer, run)
            engine = self._engines.get(run_peer)
            if engine is not None:
                for result in engine.process_batch(run):
                    action = self._apply_inference(run_peer, result)
                    if action is not None:
                        actions.append(action)
            run.clear()

        self._feeding_engines = True
        try:
            for message in messages:
                if message.peer_as != run_peer:
                    flush()
                    run_peer = message.peer_as
                run.append(message)
            flush()
            batch.commit()
        finally:
            self._feeding_engines = False
        return actions

    def receive_all(self, messages: Iterable[BGPMessage]) -> List[RerouteAction]:
        """Process a stream of messages; returns every reroute action."""
        return self.receive_batch(messages)

    def receive_columnar(self, source, kernel=None) -> List[RerouteAction]:
        """Process a columnar trace (or iterable of columnar runs).

        Mirrors :meth:`receive_batch` over the materialised stream — same
        reroute actions, same inference results — but consumes the trace in
        its native run-grouped shape *end to end*: the speaker applies each
        run straight from the columns
        (:meth:`~repro.bgp.session.PeeringSession.process_columnar_run`;
        the router's dirty-prefix tracking is a change observer, so it does
        not force materialisation) and the watching inference engine reads
        the same column window through
        :meth:`~repro.core.inference.InferenceEngine.process_columnar_run`.
        With stream recording off — the replay default — no
        :class:`~repro.bgp.messages.BGPMessage` is constructed anywhere on
        this path.

        ``kernel`` overrides the column-kernel backend for run segmentation
        and the speaker-side column walks; ``None`` defers to the engines'
        configured backend (:attr:`InferenceConfig.kernel_backend`), so the
        whole path honours one selection.
        """
        if not self._provisioned:
            raise RuntimeError("provision() must be called before receiving updates")
        if kernel is None:
            kernel = kernels.get_backend(self.config.inference.kernel_backend)
        iter_batches = getattr(source, "iter_batches", None)
        runs = iter_batches(kernel=kernel) if iter_batches is not None else source
        actions: List[RerouteAction] = []
        batch = self.speaker.begin_batch()
        self._feeding_engines = True
        try:
            for run in runs:
                batch.add_columnar_run(run, kernel=kernel)
                engine = self._engines.get(run.peer_as)
                if engine is None:
                    continue
                for result in engine.process_columnar_run(run):
                    action = self._apply_inference(run.peer_as, result)
                    if action is not None:
                        actions.append(action)
            batch.commit()
        finally:
            self._feeding_engines = False
        return actions

    # -- rerouting ---------------------------------------------------------------

    def _apply_inference(
        self, peer_as: int, result: InferenceResult
    ) -> Optional[RerouteAction]:
        assert self._encoded is not None
        rules: List[WildcardRule] = []
        shared_endpoints = result.shared_endpoints
        for link in result.inferred_links:
            backups = self._backups_for_link(
                link, result.prediction.predicted_prefixes, shared_endpoints
            )
            if not backups:
                continue
            rules.extend(self.encoder.reroute_rules(self._encoded, link, backups))
        if not rules:
            return None
        self.forwarding.install_rules(rules, priority=SWIFT_RULE_PRIORITY)
        duration = self.config.timing.rule_update_time(len(rules))
        action = RerouteAction(
            timestamp=result.timestamp,
            peer_as=peer_as,
            inferred_links=result.inferred_links,
            rules=tuple(rules),
            rerouted_prefixes=result.prediction.predicted_prefixes,
            dataplane_update_seconds=duration,
        )
        self.reroutes.append(action)
        return action

    def _backups_for_link(
        self,
        link: Link,
        prefixes: FrozenSet[Prefix],
        shared_endpoints: FrozenSet[int] = frozenset(),
    ) -> Dict[int, int]:
        """Backup next-hops (and prefix counts) for traffic crossing ``link``.

        When the inference aggregated several links, ``shared_endpoints`` are
        the ASes common to all of them; backups whose path traverses one of
        those endpoints are avoided when possible (§4.2 safety rule), falling
        back to the pre-computed selection otherwise.
        """
        link = link if link[0] <= link[1] else (link[1], link[0])
        counts: Dict[int, int] = {}
        backup_table = self._backup_table
        backup_aux = self._backup_aux
        for prefix in prefixes:
            per_link = backup_table.get(prefix)
            if not per_link:
                continue
            # The provision-time aux table mirrors per_link.values(): one
            # (next_hop, path links, path ASes) triple per selection, so the
            # fallback scans below are set lookups instead of re-deriving
            # every backup path's links per prefix per inference.
            aux = backup_aux.get(prefix)
            if aux is None:
                aux = backup_aux[prefix] = self._aux_of(per_link)
            selection = per_link.get(link)
            next_hop = selection.next_hop if selection is not None else None
            if next_hop is None:
                # Fall back to any backup of the prefix avoiding the inferred
                # link (e.g. the link was not individually protected).
                for candidate_hop, path_links, _ in aux:
                    if link not in path_links:
                        next_hop = candidate_hop
                        break
            if next_hop is not None and shared_endpoints:
                for candidate_hop, _, path_asns in aux:
                    if not (shared_endpoints & path_asns):
                        next_hop = candidate_hop
                        break
            if next_hop is None:
                continue
            counts[next_hop] = counts.get(next_hop, 0) + 1
        return counts

    def clear_reroutes(self) -> int:
        """Remove the SWIFT rules (BGP has re-converged, §3 "fall back")."""
        return self.forwarding.clear_rules(min_priority=SWIFT_RULE_PRIORITY)

    # -- forwarding & introspection ---------------------------------------------------

    def forward(self, destination: int) -> Optional[int]:
        """Next-hop the data plane currently uses for ``destination``."""
        return self.forwarding.forward_address(destination)

    @property
    def encoded_tags(self) -> Optional[EncodedTags]:
        """The tag encoding produced by the last :meth:`provision` call."""
        return self._encoded

    @property
    def backup_table(self) -> Dict[Prefix, Dict[Link, BackupSelection]]:
        """The per-prefix, per-link backup table."""
        return self._backup_table

    def engine_for(self, peer_as: int) -> InferenceEngine:
        """The inference engine watching the session with ``peer_as``."""
        return self._engines[peer_as]

    @property
    def last_reroute(self) -> Optional[RerouteAction]:
        """The most recent reroute action, if any."""
        return self.reroutes[-1] if self.reroutes else None
