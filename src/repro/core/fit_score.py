"""Withdrawal Share, Path Share and the Fit Score (§4.1, §4.2).

For a link ``l`` at time ``t``:

* ``W(l, t)`` — number of prefixes whose (pre-burst) path includes ``l`` and
  that have been withdrawn by ``t``;
* ``W(t)`` — total number of withdrawals received by ``t``;
* ``P(l, t)`` — number of prefixes whose path *still* traverses ``l`` at ``t``
  (i.e. not withdrawn nor re-routed away from ``l``);
* ``WS(l, t) = W(l, t) / W(t)`` — Withdrawal Share;
* ``PS(l, t) = W(l, t) / (W(l, t) + P(l, t))`` — Path Share;
* ``FS(l, t) = (WS^wWS * PS^wPS)^(1/(wWS + wPS))`` — weighted geometric mean.

The paper calibrates ``wWS = 3 * wPS`` (§4.2).  For sets of links sharing an
endpoint (concurrent failures), WS and PS generalise by summing the
individual ``W(l, t)`` and ``P(l, t)`` terms (§4.2).

Two classes implement the bookkeeping:

* :class:`LinkPrefixIndex` is a *persistent*, incrementally-maintained view
  of one session RIB: prefix -> AS links, link -> routed-prefix count and —
  crucially — the **link -> prefix reverse index** that lets SWIFT expand an
  inferred link into its affected prefixes without scanning the RIB.  The
  :class:`~repro.core.inference.InferenceEngine` keeps one index alive across
  bursts and feeds every announcement / expired withdrawal into it.
* :class:`FitScoreCalculator` holds the *burst-local* state (withdrawn
  prefixes, per-link withdrawal counts, routed-count deltas) as an overlay on
  top of an index.  Built via :meth:`FitScoreCalculator.from_index` it costs
  O(1) — no RIB scan — and every query it answers is proportional to the
  burst footprint (links with at least one withdrawal), not to the RIB size.

Constructing ``FitScoreCalculator(rib)`` directly still works for standalone
use (e.g. the simulation-validation harness): it simply builds a private
index from the RIB first.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.prefix import Prefix

__all__ = ["FitScoreCalculator", "FitScoreConfig", "LinkPrefixIndex", "LinkScore"]

Link = Tuple[int, int]


def _canonical(link: Link) -> Link:
    """Canonical (sorted-endpoint) form of an AS link."""
    return link if link[0] <= link[1] else (link[1], link[0])


@dataclass(frozen=True)
class FitScoreConfig:
    """Weights of the Fit Score geometric mean.

    The paper's calibration sets the Withdrawal Share weight three times
    higher than the Path Share weight (§4.2): early in a burst many affected
    prefixes have not been withdrawn yet, which depresses PS for the failed
    link, while its WS is maximal from the start.
    """

    ws_weight: float = 3.0
    ps_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.ws_weight <= 0 or self.ps_weight <= 0:
            raise ValueError("fit-score weights must be positive")


@dataclass(frozen=True)
class LinkScore:
    """The metrics of one link (or one set of aggregated links) at a time t."""

    links: Tuple[Link, ...]
    withdrawal_share: float
    path_share: float
    fit_score: float
    withdrawn_count: int
    still_routed_count: int

    @property
    def link(self) -> Link:
        """The single link when the score refers to exactly one link."""
        if len(self.links) != 1:
            raise ValueError("score aggregates several links")
        return self.links[0]


class LinkPrefixIndex:
    """Persistent link <-> prefix view of one session's Adj-RIB-In.

    Maintains, under streaming announcements and withdrawals:

    * ``links_of_prefix``: prefix -> canonical AS links of its current path;
    * ``routed_for_link``: link -> number of prefixes currently routed over it
      (the ``P(l)`` baseline before any burst-local withdrawals);
    * ``prefixes_of_link``: link -> set of prefixes whose current path crosses
      it (the reverse index behind :meth:`prefixes_via`).

    The index is built once per session — O(RIB) — and every mutation after
    that costs O(path length).  ``local_as`` / ``peer_as`` add the implicit
    first link between the local router and the session peer to every path,
    matching the paper's Fig. 4 which scores link (1, 2).
    """

    __slots__ = ("_local_prefix_link", "links_of_prefix", "routed_for_link", "prefixes_of_link")

    def __init__(
        self,
        rib: Optional[Mapping[Prefix, ASPath]] = None,
        local_as: Optional[int] = None,
        peer_as: Optional[int] = None,
    ) -> None:
        self._local_prefix_link: Optional[Link] = None
        if local_as is not None and peer_as is not None:
            self._local_prefix_link = _canonical((local_as, peer_as))
        self.links_of_prefix: Dict[Prefix, Tuple[Link, ...]] = {}
        self.routed_for_link: Dict[Link, int] = {}
        self.prefixes_of_link: Dict[Link, Set[Prefix]] = {}
        if rib:
            for prefix, path in rib.items():
                self.set_path(prefix, path)

    # -- mutation -----------------------------------------------------------

    def set_path(self, prefix: Prefix, path: ASPath) -> Tuple[Link, ...]:
        """Record that ``prefix`` is now routed over ``path``.

        Returns the links of the *previous* path (empty tuple when the prefix
        was unknown), which callers overlaying burst state need to fix their
        deltas.
        """
        return self._set_links(prefix, self.links_for_path(path))

    def remove_prefix(self, prefix: Prefix) -> Tuple[Link, ...]:
        """Drop ``prefix`` from the index (withdrawn outside any burst)."""
        return self._set_links(prefix, ())

    def _set_links(self, prefix: Prefix, new_links: Tuple[Link, ...]) -> Tuple[Link, ...]:
        routed = self.routed_for_link
        by_link = self.prefixes_of_link
        old_links = self.links_of_prefix.get(prefix, ())
        for link in old_links:
            # Prune dead links so a long-lived index stays proportional to
            # the live RIB rather than to every link ever seen.
            count = routed.get(link, 0) - 1
            if count > 0:
                routed[link] = count
            else:
                routed.pop(link, None)
            members = by_link.get(link)
            if members is not None:
                members.discard(prefix)
                if not members:
                    del by_link[link]
        if new_links:
            self.links_of_prefix[prefix] = new_links
            for link in new_links:
                routed[link] = routed.get(link, 0) + 1
                members = by_link.get(link)
                if members is None:
                    by_link[link] = {prefix}
                else:
                    members.add(prefix)
        else:
            self.links_of_prefix.pop(prefix, None)
        return old_links

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.links_of_prefix)

    def prefixes_via(self, links: Iterable[Link]) -> FrozenSet[Prefix]:
        """Union of the per-link prefix sets — O(result), not O(RIB)."""
        result: Set[Prefix] = set()
        by_link = self.prefixes_of_link
        for link in links:
            members = by_link.get(_canonical(link))
            if members:
                result |= members
        return frozenset(result)

    def links_for_path(self, path: ASPath) -> Tuple[Link, ...]:
        """Canonical, deduplicated links of ``path`` (plus the local link)."""
        links = [_canonical(link) for link in path.links()]
        if self._local_prefix_link is not None and len(path) >= 1:
            links.insert(0, self._local_prefix_link)
        # Deduplicate while keeping order (paths with prepending repeat links).
        seen: Set[Link] = set()
        unique: List[Link] = []
        for link in links:
            if link not in seen:
                seen.add(link)
                unique.append(link)
        return tuple(unique)


class FitScoreCalculator:
    """Burst-local W/P bookkeeping on top of a :class:`LinkPrefixIndex`.

    Parameters
    ----------
    rib:
        The pre-burst Adj-RIB-In of the session: prefix -> AS path.  Paths
        must include the peer AS as first hop; the link between the SWIFTED
        router and the peer itself is not part of the path and therefore not
        scored (its failure would be a *local* failure, handled by existing
        fast-reroute techniques, not by SWIFT).  Ignored when ``index`` is
        given.
    config:
        Fit-score weights.
    local_as:
        Optional AS number of the local router; when provided, the implicit
        first link (local_as, peer_as) is also tracked, matching the paper's
        Fig. 4 which scores link (1, 2).
    peer_as:
        The peer AS of the session (needed only when ``local_as`` is given).
    index:
        An existing :class:`LinkPrefixIndex` to overlay instead of building
        one from ``rib``.  The calculator *shares* (and, on announcements,
        mutates) the index; burst-local withdrawal state lives in overlay
        dictionaries that are simply dropped when the burst ends.
    """

    def __init__(
        self,
        rib: Optional[Mapping[Prefix, ASPath]] = None,
        config: Optional[FitScoreConfig] = None,
        local_as: Optional[int] = None,
        peer_as: Optional[int] = None,
        index: Optional[LinkPrefixIndex] = None,
    ) -> None:
        self.config = config or FitScoreConfig()
        if index is None:
            index = LinkPrefixIndex(rib or {}, local_as=local_as, peer_as=peer_as)
        self._index = index
        # Burst-local overlays: withdrawal counters plus the adjustment the
        # burst's withdrawals make to the index's routed counts.
        self._withdrawn_for_link: Dict[Link, int] = {}
        self._routed_delta: Dict[Link, int] = {}
        self._withdrawn_prefixes: Set[Prefix] = set()
        self._total_withdrawals = 0

    @classmethod
    def from_index(
        cls, index: LinkPrefixIndex, config: Optional[FitScoreConfig] = None
    ) -> "FitScoreCalculator":
        """O(1) construction over an already-maintained index (no RIB scan)."""
        return cls(config=config, index=index)

    @property
    def index(self) -> LinkPrefixIndex:
        """The (possibly shared) link/prefix index backing this calculator."""
        return self._index

    # -- feeding the stream ----------------------------------------------------

    def record_withdrawal(self, prefix: Prefix) -> None:
        """Account for the withdrawal of ``prefix``.

        Withdrawals of prefixes unknown to the pre-burst RIB (noise, or
        prefixes announced after the snapshot) still increase the total
        withdrawal count ``W(t)`` — they dilute every WS equally, which is
        exactly how unrelated noise degrades the metric in the paper.
        Duplicate withdrawals of the same prefix are counted once.
        """
        self.record_withdrawals((prefix,))

    def record_withdrawals(self, prefixes: Iterable[Prefix]) -> int:
        """Batched :meth:`record_withdrawal`; returns the prefixes processed.

        One call per UPDATE message (rather than one per prefix) keeps the
        per-prefix Python overhead of the hot path down to a few dictionary
        operations.
        """
        seen = self._withdrawn_prefixes
        links_of_prefix = self._index.links_of_prefix
        withdrawn = self._withdrawn_for_link
        delta = self._routed_delta
        processed = 0
        for prefix in prefixes:
            processed += 1
            if prefix in seen:
                continue
            seen.add(prefix)
            self._total_withdrawals += 1
            links = links_of_prefix.get(prefix)
            if not links:
                continue
            for link in links:
                withdrawn[link] = withdrawn.get(link, 0) + 1
                delta[link] = delta.get(link, 0) - 1
        return processed

    def record_run(self, run, start: Optional[int] = None, stop: Optional[int] = None) -> int:
        """Record a columnar run (or a row window of one) straight from columns.

        The column-native equivalent of feeding every materialised message of
        ``run[start:stop]`` through :meth:`record_withdrawals` /
        :meth:`record_update` in row order: per row, the withdrawal window of
        the flat ``wd_prefix`` column is folded into the burst overlays, then
        each announcement's (prefix, AS path) pair — resolved through the
        pool's interning tables, so the objects handled here are the *same*
        objects the engine's :class:`LinkPrefixIndex` keys by — is recorded
        as an implicit withdrawal.  No :class:`~repro.bgp.messages.BGPMessage`
        (nor any ``PathAttributes``) is ever constructed.

        ``run`` is duck-typed (``trace``/``start``/``stop``, the interface
        documented in :mod:`repro.traces.columnar`); ``start``/``stop``
        default to the whole run.  Returns the number of withdrawal entries
        processed (duplicates included), matching
        :meth:`record_withdrawals`'s return-value contract.
        """
        trace = run.trace
        pool = trace.pool
        prefix_at = pool.prefix_at
        path_at = pool.path_at
        attr_path = pool.attr_path
        wd_end = trace.wd_end
        ann_end = trace.ann_end
        wd_prefix = trace.wd_prefix
        ann_prefix = trace.ann_prefix
        ann_attr = trace.ann_attr
        lo = run.start if start is None else start
        hi = run.stop if stop is None else stop
        if hi <= lo:
            return 0
        w = wd_end[lo - 1] if lo else 0
        a = ann_end[lo - 1] if lo else 0
        processed = 0
        record_update = self.record_update
        seen = self._withdrawn_prefixes
        links_of_prefix = self._index.links_of_prefix
        withdrawn = self._withdrawn_for_link
        delta = self._routed_delta
        seen_add = seen.add
        links_get = links_of_prefix.get
        withdrawn_get = withdrawn.get
        delta_get = delta.get
        # Burst withdrawals concentrate on a handful of distinct links (the
        # failed link's prefixes share their paths), so the per-link counter
        # arithmetic is deferred: the links of every fresh withdrawal pile
        # into a flat list and one C-speed Counter pass folds them into the
        # overlays per distinct link — flushed before any announcement (which
        # reads the overlays through record_update) and at the end.
        pending: List[Link] = []
        pending_extend = pending.extend

        def flush() -> None:
            if len(pending) > 16:
                # One C-speed counting pass, then one merge per distinct link.
                for link, count in Counter(pending).items():
                    withdrawn[link] = withdrawn_get(link, 0) + count
                    delta[link] = delta_get(link, 0) - count
            else:
                for link in pending:
                    withdrawn[link] = withdrawn_get(link, 0) + 1
                    delta[link] = delta_get(link, 0) - 1
            del pending[:]

        # Decoded-once prefix row cache: an InternPool detail, probed rather
        # than required — a contract-honoring pool without it simply takes
        # the generic row loop below (pool.prefix_at is the contract API).
        prefix_rows = getattr(pool, "_prefix_cache", None)
        if prefix_rows is not None and ann_end[hi - 1] == a:
            # No announcements anywhere in the span — the canonical failure
            # burst.  Row boundaries are then irrelevant to the calculator
            # (nothing reads the overlays mid-span), so the whole withdrawal
            # window streams straight off the flat column: one array slice,
            # C-level iteration over interned-prefix indices, one flush.
            window = wd_prefix[w : wd_end[hi - 1]]
            processed = len(window)
            fresh = 0
            for index in window:
                prefix = prefix_rows[index]
                if prefix is None:
                    prefix = prefix_at(index)
                if prefix in seen:
                    continue
                seen_add(prefix)
                fresh += 1
                links = links_get(prefix)
                if links:
                    pending_extend(links)
            if fresh:
                self._total_withdrawals += fresh
            flush()
            return processed

        for row in range(lo, hi):
            w_high = wd_end[row]
            a_high = ann_end[row]
            if w < w_high:
                fresh = 0
                while w < w_high:
                    prefix = prefix_at(wd_prefix[w])
                    w += 1
                    processed += 1
                    if prefix in seen:
                        continue
                    seen_add(prefix)
                    fresh += 1
                    links = links_get(prefix)
                    if links:
                        pending_extend(links)
                if fresh:
                    # record_update below reads (and may decrement) the
                    # total, so it is synced per row, not per span.
                    self._total_withdrawals += fresh
            if a < a_high:
                if pending:
                    flush()
                while a < a_high:
                    record_update(
                        prefix_at(ann_prefix[a]), path_at(attr_path[ann_attr[a]])
                    )
                    a += 1
        if pending:
            flush()
        return processed

    def record_update(self, prefix: Prefix, new_path: ASPath) -> None:
        """Account for a path update (implicit withdrawal of the old path).

        The prefix stops counting towards ``P(l, t)`` for the links of its old
        path and starts counting for the links of its new path.  If the prefix
        had been withdrawn earlier in the burst, the re-announcement clears
        the withdrawal (it no longer counts in ``W``).  The underlying index
        is updated in place, so an engine sharing it sees the new path too.
        """
        if prefix in self._withdrawn_prefixes:
            old_links = self._index.links_of_prefix.get(prefix, ())
            self._withdrawn_prefixes.discard(prefix)
            self._total_withdrawals = max(0, self._total_withdrawals - 1)
            withdrawn = self._withdrawn_for_link
            delta = self._routed_delta
            for link in old_links:
                withdrawn[link] = max(0, withdrawn.get(link, 0) - 1)
                # The index is about to move the prefix off its old links;
                # cancel the withdrawal's decrement so the two do not stack.
                delta[link] = delta.get(link, 0) + 1
        self._index.set_path(prefix, new_path)

    # -- queries ----------------------------------------------------------------

    @property
    def total_withdrawals(self) -> int:
        """``W(t)``: withdrawals received so far (deduplicated)."""
        return self._total_withdrawals

    @property
    def withdrawn_prefixes(self) -> FrozenSet[Prefix]:
        """The set of currently-withdrawn prefixes."""
        return frozenset(self._withdrawn_prefixes)

    def tracked_links(self) -> List[Link]:
        """Every link appearing in at least one known path."""
        links: Set[Link] = set(self._index.routed_for_link) | set(self._withdrawn_for_link)
        return sorted(links)

    def withdrawal_count(self, link: Link) -> int:
        """``W(l, t)`` for one link."""
        return self._withdrawn_for_link.get(_canonical(link), 0)

    def still_routed_count(self, link: Link) -> int:
        """``P(l, t)`` for one link: the index baseline plus the burst delta."""
        canonical = _canonical(link)
        return max(
            0,
            self._index.routed_for_link.get(canonical, 0)
            + self._routed_delta.get(canonical, 0),
        )

    def withdrawal_share(self, link: Link) -> float:
        """``WS(l, t)``; 0 when no withdrawal has been received."""
        if self._total_withdrawals == 0:
            return 0.0
        return self.withdrawal_count(link) / self._total_withdrawals

    def path_share(self, link: Link) -> float:
        """``PS(l, t)``; 0 when the link carries no prefix at all."""
        withdrawn = self.withdrawal_count(link)
        routed = self.still_routed_count(link)
        if withdrawn + routed == 0:
            return 0.0
        return withdrawn / (withdrawn + routed)

    def fit_score(self, link: Link) -> float:
        """``FS(l, t)`` for a single link."""
        return self._combine(self.withdrawal_share(link), self.path_share(link))

    def score(self, link: Link) -> LinkScore:
        """All the metrics of a single link."""
        canonical = _canonical(link)
        ws = self.withdrawal_share(canonical)
        ps = self.path_share(canonical)
        return LinkScore(
            links=(canonical,),
            withdrawal_share=ws,
            path_share=ps,
            fit_score=self._combine(ws, ps),
            withdrawn_count=self.withdrawal_count(canonical),
            still_routed_count=self.still_routed_count(canonical),
        )

    def score_set(self, links: Sequence[Link]) -> LinkScore:
        """Metrics of a set of links, per the multi-link extension of §4.2.

        ``WS(S, t) = sum_l W(l, t) / W(t)`` and
        ``PS(S, t) = sum_l W(l, t) / sum_l (W(l, t) + P(l, t))``.

        The withdrawal share is capped at 1.0: when aggregated links overlap
        (they are crossed by the same prefixes, e.g. consecutive links of one
        path) the plain sum double-counts withdrawals, which would make any
        serial aggregation look better than the failed link itself.  Capping
        keeps the metric a share and preserves the intended behaviour for the
        genuinely parallel links of a router failure (disjoint prefix sets).
        """
        canonical = tuple(sorted({_canonical(link) for link in links}))
        withdrawn = sum(self.withdrawal_count(link) for link in canonical)
        routed = sum(self.still_routed_count(link) for link in canonical)
        return self.score_from_counts(canonical, withdrawn, routed)

    def score_from_counts(
        self, links: Sequence[Link], withdrawn: int, routed: int
    ) -> LinkScore:
        """Multi-link score from already-summed W/P counts.

        The incremental-aggregation path of the inference engine maintains
        running ``sum W(l, t)`` / ``sum P(l, t)`` totals while it grows a
        link aggregate; this constructor turns those running sums into a
        :class:`LinkScore` without re-querying every member link.  For
        distinct canonical ``links`` it is arithmetically identical to
        :meth:`score_set`.
        """
        ws = (
            min(1.0, withdrawn / self._total_withdrawals)
            if self._total_withdrawals
            else 0.0
        )
        ps = withdrawn / (withdrawn + routed) if (withdrawn + routed) else 0.0
        return LinkScore(
            links=tuple(sorted(links)),
            withdrawal_share=ws,
            path_share=ps,
            fit_score=self._combine(ws, ps),
            withdrawn_count=withdrawn,
            still_routed_count=routed,
        )

    def all_scores(self, min_withdrawn: int = 1) -> List[LinkScore]:
        """Scores of every link with at least ``min_withdrawn`` withdrawals.

        Sorted by decreasing fit score (ties broken by link endpoints for
        determinism).  Links with no withdrawn prefix cannot be the failure
        and are skipped, which keeps the inference cost proportional to the
        burst's footprint rather than to the RIB size.
        """
        scores = [
            self.score(link)
            for link, withdrawn in self._withdrawn_for_link.items()
            if withdrawn >= min_withdrawn
        ]
        scores.sort(key=lambda item: (-item.fit_score, item.links))
        return scores

    def prefixes_via_links(self, links: Iterable[Link]) -> FrozenSet[Prefix]:
        """Prefixes whose *current* path traverses any of ``links``.

        This is the set SWIFT reroutes when those links are inferred as
        failed; it includes both already-withdrawn and not-yet-withdrawn
        prefixes whose pre-burst path crossed the links.  Answered from the
        reverse index as a union of per-link prefix sets — O(result size).
        """
        return self._index.prefixes_via(links)

    # -- internals ----------------------------------------------------------------

    def _combine(self, ws: float, ps: float) -> float:
        if ws <= 0.0 or ps <= 0.0:
            return 0.0
        w_ws, w_ps = self.config.ws_weight, self.config.ps_weight
        return (ws ** w_ws * ps ** w_ps) ** (1.0 / (w_ws + w_ps))
