"""Withdrawal Share, Path Share and the Fit Score (§4.1, §4.2).

For a link ``l`` at time ``t``:

* ``W(l, t)`` — number of prefixes whose (pre-burst) path includes ``l`` and
  that have been withdrawn by ``t``;
* ``W(t)`` — total number of withdrawals received by ``t``;
* ``P(l, t)`` — number of prefixes whose path *still* traverses ``l`` at ``t``
  (i.e. not withdrawn nor re-routed away from ``l``);
* ``WS(l, t) = W(l, t) / W(t)`` — Withdrawal Share;
* ``PS(l, t) = W(l, t) / (W(l, t) + P(l, t))`` — Path Share;
* ``FS(l, t) = (WS^wWS * PS^wPS)^(1/(wWS + wPS))`` — weighted geometric mean.

The paper calibrates ``wWS = 3 * wPS`` (§4.2).  For sets of links sharing an
endpoint (concurrent failures), WS and PS generalise by summing the
individual ``W(l, t)`` and ``P(l, t)`` terms (§4.2).

Two classes implement the bookkeeping:

* :class:`LinkPrefixIndex` is a *persistent*, incrementally-maintained view
  of one session RIB: prefix -> AS links, link -> routed-prefix count and —
  crucially — the **link -> prefix reverse index** that lets SWIFT expand an
  inferred link into its affected prefixes without scanning the RIB.  The
  :class:`~repro.core.inference.InferenceEngine` keeps one index alive across
  bursts and feeds every announcement / expired withdrawal into it.
* :class:`FitScoreCalculator` holds the *burst-local* state (withdrawn
  prefixes, per-link withdrawal counts, routed-count deltas) as an overlay on
  top of an index.  Built via :meth:`FitScoreCalculator.from_index` it costs
  O(1) — no RIB scan — and every query it answers is proportional to the
  burst footprint (links with at least one withdrawal), not to the RIB size.

Constructing ``FitScoreCalculator(rib)`` directly still works for standalone
use (e.g. the simulation-validation harness): it simply builds a private
index from the RIB first.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.prefix import Prefix
from repro.core import kernels

__all__ = ["FitScoreCalculator", "FitScoreConfig", "LinkPrefixIndex", "LinkScore"]

Link = Tuple[int, int]


def _canonical(link: Link) -> Link:
    """Canonical (sorted-endpoint) form of an AS link."""
    return link if link[0] <= link[1] else (link[1], link[0])


@dataclass(frozen=True)
class FitScoreConfig:
    """Weights of the Fit Score geometric mean.

    The paper's calibration sets the Withdrawal Share weight three times
    higher than the Path Share weight (§4.2): early in a burst many affected
    prefixes have not been withdrawn yet, which depresses PS for the failed
    link, while its WS is maximal from the start.
    """

    ws_weight: float = 3.0
    ps_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.ws_weight <= 0 or self.ps_weight <= 0:
            raise ValueError("fit-score weights must be positive")


@dataclass(frozen=True)
class LinkScore:
    """The metrics of one link (or one set of aggregated links) at a time t."""

    links: Tuple[Link, ...]
    withdrawal_share: float
    path_share: float
    fit_score: float
    withdrawn_count: int
    still_routed_count: int

    @property
    def link(self) -> Link:
        """The single link when the score refers to exactly one link."""
        if len(self.links) != 1:
            raise ValueError("score aggregates several links")
        return self.links[0]


class LinkPrefixIndex:
    """Persistent link <-> prefix view of one session's Adj-RIB-In.

    Maintains, under streaming announcements and withdrawals:

    * ``links_of_prefix``: prefix -> canonical AS links of its current path;
    * ``routed_for_link``: link -> number of prefixes currently routed over it
      (the ``P(l)`` baseline before any burst-local withdrawals);
    * ``prefixes_of_link``: link -> set of prefixes whose current path crosses
      it (the reverse index behind :meth:`prefixes_via`).

    The index is built once per session — O(RIB) — and every mutation after
    that costs O(path length).  ``local_as`` / ``peer_as`` add the implicit
    first link between the local router and the session peer to every path,
    matching the paper's Fig. 4 which scores link (1, 2).
    """

    __slots__ = (
        "_local_prefix_link",
        "links_of_prefix",
        "routed_for_link",
        "prefixes_of_link",
        "_links_table",
        "_links_table_pool",
        "_link_ids",
        "link_objects",
        "_id_tuple_memo",
        "_path_links_memo",
    )

    def __init__(
        self,
        rib: Optional[Mapping[Prefix, ASPath]] = None,
        local_as: Optional[int] = None,
        peer_as: Optional[int] = None,
    ) -> None:
        self._local_prefix_link: Optional[Link] = None
        if local_as is not None and peer_as is not None:
            self._local_prefix_link = _canonical((local_as, peer_as))
        self.links_of_prefix: Dict[Prefix, Tuple[Link, ...]] = {}
        self.routed_for_link: Dict[Link, int] = {}
        self.prefixes_of_link: Dict[Link, Set[Prefix]] = {}
        self._links_table: Optional[List[Optional[Tuple[int, ...]]]] = None
        self._links_table_pool = None
        # Small-int link ids for the vectorised fold: hashing and counting
        # ints is markedly cheaper than tuples, so the pool-row table stores
        # id tuples and ``link_objects`` maps them back.
        self._link_ids: Dict[Link, int] = {}
        self.link_objects: List[Link] = []
        self._id_tuple_memo: Dict[Tuple[Link, ...], Tuple[int, ...]] = {}
        self._path_links_memo: Dict[Tuple[int, ...], Tuple[Link, ...]] = {}
        if rib:
            for prefix, path in rib.items():
                self.set_path(prefix, path)

    # -- mutation -----------------------------------------------------------

    def set_path(self, prefix: Prefix, path: ASPath) -> Tuple[Link, ...]:
        """Record that ``prefix`` is now routed over ``path``.

        Returns the links of the *previous* path (empty tuple when the prefix
        was unknown), which callers overlaying burst state need to fix their
        deltas.
        """
        return self._set_links(prefix, self.links_for_path(path))

    def remove_prefix(self, prefix: Prefix) -> Tuple[Link, ...]:
        """Drop ``prefix`` from the index (withdrawn outside any burst)."""
        return self._set_links(prefix, ())

    def _set_links(self, prefix: Prefix, new_links: Tuple[Link, ...]) -> Tuple[Link, ...]:
        old_links = self.links_of_prefix.get(prefix, ())
        if new_links is old_links:
            # Same interned tuple (links_for_path memo): a re-announcement
            # over the unchanged path moves nothing.
            return old_links
        table = self._links_table
        if table is not None:
            # Keep the pool-row view in lockstep with links_of_prefix (this
            # method is the sole mutator).  A prefix the pool never interned
            # cannot appear in a withdrawal column, so it is safe to skip;
            # a pool that grew past the table forces a rebuild instead.
            row = self._links_table_pool.prefix_id(prefix)
            if row is not None:
                if row < len(table):
                    table[row] = self._link_id_tuple(new_links) if new_links else None
                else:
                    self._links_table = None
                    self._links_table_pool = None
        routed = self.routed_for_link
        by_link = self.prefixes_of_link
        for link in old_links:
            # Prune dead links so a long-lived index stays proportional to
            # the live RIB rather than to every link ever seen.
            count = routed.get(link, 0) - 1
            if count > 0:
                routed[link] = count
            else:
                routed.pop(link, None)
            members = by_link.get(link)
            if members is not None:
                members.discard(prefix)
                if not members:
                    del by_link[link]
        if new_links:
            self.links_of_prefix[prefix] = new_links
            for link in new_links:
                routed[link] = routed.get(link, 0) + 1
                members = by_link.get(link)
                if members is None:
                    by_link[link] = {prefix}
                else:
                    members.add(prefix)
        else:
            self.links_of_prefix.pop(prefix, None)
        return old_links

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.links_of_prefix)

    def prefixes_via(self, links: Iterable[Link]) -> FrozenSet[Prefix]:
        """Union of the per-link prefix sets — O(result), not O(RIB)."""
        by_link = self.prefixes_of_link
        members = [by_link[c] for c in map(_canonical, links) if c in by_link]
        if not members:
            return frozenset()
        # One frozenset built in a single union pass (no mutable staging set).
        return frozenset(members[0]) if len(members) == 1 else frozenset().union(*members)

    def links_for_path(self, path: ASPath) -> Tuple[Link, ...]:
        """Canonical, deduplicated links of ``path`` (plus the local link).

        Memoised by the path's AS tuple: a burst re-announces many prefixes
        over the same handful of backup paths, and the result is a pure
        function of the AS sequence and the (fixed) local link.
        """
        memo = self._path_links_memo
        key = path.asns
        cached = memo.get(key)
        if cached is not None:
            return cached
        links = [_canonical(link) for link in path.links()]
        if self._local_prefix_link is not None and len(path) >= 1:
            links.insert(0, self._local_prefix_link)
        # Deduplicate while keeping order (paths with prepending repeat links).
        seen: Set[Link] = set()
        unique: List[Link] = []
        for link in links:
            if link not in seen:
                seen.add(link)
                unique.append(link)
        result = memo[key] = tuple(unique)
        return result

    def _link_id_tuple(self, links: Tuple[Link, ...]) -> Tuple[int, ...]:
        """Intern a links tuple as a tuple of small link ids (memoised)."""
        memo = self._id_tuple_memo
        ids = memo.get(links)
        if ids is None:
            link_ids = self._link_ids
            objects = self.link_objects
            row: List[int] = []
            for link in links:
                lid = link_ids.get(link)
                if lid is None:
                    lid = link_ids[link] = len(objects)
                    objects.append(link)
                row.append(lid)
            ids = memo[links] = tuple(row)
        return ids

    def links_table(self, pool) -> Optional[List[Optional[Tuple[int, ...]]]]:
        """Pool-row view of ``links_of_prefix``: pool prefix id -> link ids.

        Built once per (index, pool) pair and then maintained in place by
        :meth:`_set_links`, this lets the vectorised fit-score fold turn a
        batch of deduplicated withdrawal rows into per-link counts with a
        C-speed list gather instead of one Prefix-keyed dict lookup per
        prefix.  Rows hold tuples of small integer ids (``link_objects``
        maps them back to links) so the counting pass hashes ints, not
        tuples.  ``None`` when the pool offers no reverse lookup (a
        contract-honoring pool without ``prefix_id`` takes the generic
        per-prefix path).
        """
        if self._links_table_pool is not pool:
            prefix_id = getattr(pool, "prefix_id", None)
            if prefix_id is None:
                return None
            id_tuple = self._link_id_tuple
            table: List[Optional[Tuple[int, ...]]] = [None] * pool.prefix_count
            for prefix, links in self.links_of_prefix.items():
                row = prefix_id(prefix)
                if row is not None:
                    table[row] = id_tuple(links)
            self._links_table = table
            self._links_table_pool = pool
        return self._links_table


class FitScoreCalculator:
    """Burst-local W/P bookkeeping on top of a :class:`LinkPrefixIndex`.

    Parameters
    ----------
    rib:
        The pre-burst Adj-RIB-In of the session: prefix -> AS path.  Paths
        must include the peer AS as first hop; the link between the SWIFTED
        router and the peer itself is not part of the path and therefore not
        scored (its failure would be a *local* failure, handled by existing
        fast-reroute techniques, not by SWIFT).  Ignored when ``index`` is
        given.
    config:
        Fit-score weights.
    local_as:
        Optional AS number of the local router; when provided, the implicit
        first link (local_as, peer_as) is also tracked, matching the paper's
        Fig. 4 which scores link (1, 2).
    peer_as:
        The peer AS of the session (needed only when ``local_as`` is given).
    index:
        An existing :class:`LinkPrefixIndex` to overlay instead of building
        one from ``rib``.  The calculator *shares* (and, on announcements,
        mutates) the index; burst-local withdrawal state lives in overlay
        dictionaries that are simply dropped when the burst ends.
    """

    def __init__(
        self,
        rib: Optional[Mapping[Prefix, ASPath]] = None,
        config: Optional[FitScoreConfig] = None,
        local_as: Optional[int] = None,
        peer_as: Optional[int] = None,
        index: Optional[LinkPrefixIndex] = None,
        kernel=None,
    ) -> None:
        self.config = config or FitScoreConfig()
        if index is None:
            index = LinkPrefixIndex(rib or {}, local_as=local_as, peer_as=peer_as)
        self._index = index
        self._kernel = kernel if kernel is not None else kernels.default_backend()
        # Burst-local overlays: withdrawal counters plus the adjustment the
        # burst's withdrawals make to the index's routed counts.
        self._withdrawn_for_link: Dict[Link, int] = {}
        self._routed_delta: Dict[Link, int] = {}
        self._withdrawn_prefixes: Set[Prefix] = set()
        self._total_withdrawals = 0
        # Seen-row mask for the vectorised fold.  While ``_mask_exact`` holds,
        # the mask's set bits are *exactly* the withdrawn prefix rows, so a
        # whole candidate batch counts as fresh with no per-prefix set
        # membership at all, and the seen set itself materialises lazily
        # (``_unsynced_rows`` -> :meth:`_sync_seen`).  Any dedup decision that
        # bypasses the mask — an object-path withdrawal, a mixed span, a
        # record_update un-withdrawal — degrades it to a plain negative
        # cache: candidates are then re-checked against the authoritative
        # seen set, which an all-clear mask always forces.
        self._seen_mask = None
        self._seen_mask_pool = None
        self._mask_exact = False
        self._unsynced_rows: List[Sequence[int]] = []
        self._synced_rows: List[int] = []

    @classmethod
    def from_index(
        cls,
        index: LinkPrefixIndex,
        config: Optional[FitScoreConfig] = None,
        kernel=None,
    ) -> "FitScoreCalculator":
        """O(1) construction over an already-maintained index (no RIB scan)."""
        return cls(config=config, index=index, kernel=kernel)

    @property
    def index(self) -> LinkPrefixIndex:
        """The (possibly shared) link/prefix index backing this calculator."""
        return self._index

    # -- feeding the stream ----------------------------------------------------

    def _sync_counts(self) -> None:
        """Fold deferred exact-fold rows into the per-link counters.

        While the mask is exact, :meth:`_record_rows` only appends fresh row
        batches and bumps the total: the per-link counters materialise here,
        on the first counter query that actually reads them, and the counted
        rows move to ``_synced_rows`` (still row-space — the withdrawn *set*
        itself materialises even later, see :meth:`_sync_seen`).  Rows
        recorded after an accepted inference are typically never queried
        again, so their link counting never happens at all.
        """
        rows = self._unsynced_rows
        if not rows:
            return
        self._unsynced_rows = []
        pool = self._seen_mask_pool
        flat = self._kernel.flatten_rows(rows)
        self._synced_rows.extend(flat)
        table = self._index.links_table(pool)
        link_objects = self._index.link_objects
        withdrawn = self._withdrawn_for_link
        delta = self._routed_delta
        withdrawn_get = withdrawn.get
        delta_get = delta.get
        # The rows are distinct (mask-deduplicated) and their id tuples are
        # interned, so counting the (few) distinct tuples first and expanding
        # afterwards hashes each row once instead of once per link.
        counts: Dict[int, int] = {}
        for ids, repeats in Counter(map(table.__getitem__, flat)).items():
            if ids is None:
                continue
            for lid in ids:
                counts[lid] = counts.get(lid, 0) + repeats
        for lid, count in counts.items():
            link = link_objects[lid]
            withdrawn[link] = withdrawn_get(link, 0) + count
            delta[link] = delta_get(link, 0) - count

    def _sync_seen(self) -> None:
        """Materialise every deferred row into the withdrawn prefix *set*.

        The full catch-up: counters first (:meth:`_sync_counts`), then the
        interned prefixes of all counted rows join ``_withdrawn_prefixes``.
        Only mask-degrading events and whole-set readers need this; counter
        queries and :meth:`withdrawn_within` stay in row space, so a burst
        served end-to-end by the vectorised fold never builds the set.
        """
        self._sync_counts()
        rows = self._synced_rows
        if rows:
            self._synced_rows = []
            self._withdrawn_prefixes.update(self._seen_mask_pool.prefixes_at(rows))

    def record_withdrawal_rows(self, pool, wd_prefix, lo: int, hi: int) -> int:
        """Record ``wd_prefix[lo:hi]`` straight from the column.

        The row-index twin of :meth:`record_withdrawals` — same overlay
        mutations, same return value (entries processed, duplicates
        included) — but fed pool prefix rows instead of materialised
        prefixes, so a vectorised backend can dedup and count the whole
        window without per-prefix Python.  With a non-vectorised kernel it
        simply materialises the window and delegates.
        """
        if hi <= lo:
            return 0
        if not self._kernel.VECTORISED:
            return self.record_withdrawals(pool.prefixes_at(wd_prefix[lo:hi]))
        return self._record_rows(pool, wd_prefix, lo, hi)

    def _record_rows(self, pool, wd_prefix, lo: int, hi: int) -> int:
        """Vectorised fold of one withdrawal window (VECTORISED kernels only).

        Deduplicates the window against the seen-row mask at array speed,
        then — while the mask is exact — counts the fresh rows' links with
        one gather over the index's pool-row links table and defers the
        seen-set materialisation entirely.  Once exactness is lost (or the
        index cannot build a table for this pool) the candidates fall back
        to the authoritative per-prefix path.
        """
        kernel = self._kernel
        mask = self._seen_mask
        if mask is None or self._seen_mask_pool is not pool or len(
            mask
        ) < pool.prefix_count:
            # Rebuilding loses the set bits, so first materialise anything
            # deferred, then re-seed the fresh mask from the seen set: if
            # every seen prefix has a pool row the mask is exact again.
            self._sync_seen()
            mask = self._seen_mask = kernel.new_seen_mask(pool.prefix_count)
            self._seen_mask_pool = pool
            exact = True
            if self._withdrawn_prefixes:
                prefix_id = getattr(pool, "prefix_id", None)
                if prefix_id is None:
                    exact = False
                else:
                    for prefix in self._withdrawn_prefixes:
                        row = prefix_id(prefix)
                        if row is None:
                            exact = False
                            break
                        mask[row] = True
            self._mask_exact = exact
        candidates = kernel.fresh_candidate_rows(mask, wd_prefix, lo, hi)
        if len(candidates) == 0:
            return hi - lo
        if self._mask_exact:
            table = self._index.links_table(pool)
            if table is not None:
                # Fully deferred: the seen set *and* the per-link counters
                # materialise together in _sync_seen on the next query.
                self._unsynced_rows.append(candidates)
                self._total_withdrawals += len(candidates)
                return hi - lo
            self._mask_exact = False
        self._sync_seen()
        withdrawn = self._withdrawn_for_link
        delta = self._routed_delta
        withdrawn_get = withdrawn.get
        delta_get = delta.get
        seen = self._withdrawn_prefixes
        seen_add = seen.add
        links_get = self._index.links_of_prefix.get
        fresh = 0
        pending: List[Link] = []
        pending_extend = pending.extend
        for prefix in pool.prefixes_at(candidates):
            if prefix in seen:
                continue
            seen_add(prefix)
            fresh += 1
            links = links_get(prefix)
            if links:
                pending_extend(links)
        if fresh:
            self._total_withdrawals += fresh
        for link, count in Counter(pending).items():
            withdrawn[link] = withdrawn_get(link, 0) + count
            delta[link] = delta_get(link, 0) - count
        return hi - lo

    def record_withdrawal(self, prefix: Prefix) -> None:
        """Account for the withdrawal of ``prefix``.

        Withdrawals of prefixes unknown to the pre-burst RIB (noise, or
        prefixes announced after the snapshot) still increase the total
        withdrawal count ``W(t)`` — they dilute every WS equally, which is
        exactly how unrelated noise degrades the metric in the paper.
        Duplicate withdrawals of the same prefix are counted once.
        """
        self.record_withdrawals((prefix,))

    def record_withdrawals(self, prefixes: Iterable[Prefix]) -> int:
        """Batched :meth:`record_withdrawal`; returns the prefixes processed.

        One call per UPDATE message (rather than one per prefix) keeps the
        per-prefix Python overhead of the hot path down to a few dictionary
        operations.
        """
        # Object-path entries bypass the seen-row mask: catch up any deferred
        # rows (the dedup below needs the full set) and drop exactness.
        self._sync_seen()
        self._mask_exact = False
        seen = self._withdrawn_prefixes
        links_of_prefix = self._index.links_of_prefix
        withdrawn = self._withdrawn_for_link
        delta = self._routed_delta
        processed = 0
        for prefix in prefixes:
            processed += 1
            if prefix in seen:
                continue
            seen.add(prefix)
            self._total_withdrawals += 1
            links = links_of_prefix.get(prefix)
            if not links:
                continue
            for link in links:
                withdrawn[link] = withdrawn.get(link, 0) + 1
                delta[link] = delta.get(link, 0) - 1
        return processed

    def record_run(self, run, start: Optional[int] = None, stop: Optional[int] = None) -> int:
        """Record a columnar run (or a row window of one) straight from columns.

        The column-native equivalent of feeding every materialised message of
        ``run[start:stop]`` through :meth:`record_withdrawals` /
        :meth:`record_update` in row order: per row, the withdrawal window of
        the flat ``wd_prefix`` column is folded into the burst overlays, then
        each announcement's (prefix, AS path) pair — resolved through the
        pool's interning tables, so the objects handled here are the *same*
        objects the engine's :class:`LinkPrefixIndex` keys by — is recorded
        as an implicit withdrawal.  No :class:`~repro.bgp.messages.BGPMessage`
        (nor any ``PathAttributes``) is ever constructed.

        ``run`` is duck-typed (``trace``/``start``/``stop``, the interface
        documented in :mod:`repro.traces.columnar`); ``start``/``stop``
        default to the whole run.  Returns the number of withdrawal entries
        processed (duplicates included), matching
        :meth:`record_withdrawals`'s return-value contract.
        """
        trace = run.trace
        pool = trace.pool
        prefix_at = pool.prefix_at
        path_at = pool.path_at
        attr_path = pool.attr_path
        wd_end = trace.wd_end
        ann_end = trace.ann_end
        wd_prefix = trace.wd_prefix
        ann_prefix = trace.ann_prefix
        ann_attr = trace.ann_attr
        lo = run.start if start is None else start
        hi = run.stop if stop is None else stop
        if hi <= lo:
            return 0
        w = wd_end[lo - 1] if lo else 0
        a = ann_end[lo - 1] if lo else 0
        processed = 0
        record_update = self.record_update
        seen = self._withdrawn_prefixes
        links_of_prefix = self._index.links_of_prefix
        withdrawn = self._withdrawn_for_link
        delta = self._routed_delta
        seen_add = seen.add
        links_get = links_of_prefix.get
        withdrawn_get = withdrawn.get
        delta_get = delta.get
        # Burst withdrawals concentrate on a handful of distinct links (the
        # failed link's prefixes share their paths), so the per-link counter
        # arithmetic is deferred: the links of every fresh withdrawal pile
        # into a flat list and one C-speed Counter pass folds them into the
        # overlays per distinct link — flushed before any announcement (which
        # reads the overlays through record_update) and at the end.
        pending: List[Link] = []
        pending_extend = pending.extend

        def flush() -> None:
            if len(pending) > 16:
                # One C-speed counting pass, then one merge per distinct link.
                for link, count in Counter(pending).items():
                    withdrawn[link] = withdrawn_get(link, 0) + count
                    delta[link] = delta_get(link, 0) - count
            else:
                for link in pending:
                    withdrawn[link] = withdrawn_get(link, 0) + 1
                    delta[link] = delta_get(link, 0) - 1
            del pending[:]

        kernel = self._kernel
        if kernel.VECTORISED and ann_end[hi - 1] == a:
            # No announcements anywhere in the span, so nothing reads the
            # overlays mid-span and the whole withdrawal window folds in one
            # kernel pass (see _record_rows): mask dedup at array speed and,
            # while the mask is exact, link counting through the index's
            # pool-row table with the seen set materialised lazily.
            return self._record_rows(pool, wd_prefix, w, wd_end[hi - 1])

        # The per-prefix branches below bypass the seen-row mask: materialise
        # any deferred rows first (their dedup reads the seen set in full)
        # and degrade the mask to a plain negative cache.
        self._sync_seen()
        self._mask_exact = False

        # Decoded-once prefix row cache: an InternPool detail, probed rather
        # than required — a contract-honoring pool without it simply takes
        # the generic row loop below (pool.prefix_at is the contract API).
        prefix_rows = getattr(pool, "_prefix_cache", None)
        if prefix_rows is not None and ann_end[hi - 1] == a:
            # No announcements anywhere in the span — the canonical failure
            # burst.  Row boundaries are then irrelevant to the calculator
            # (nothing reads the overlays mid-span), so the whole withdrawal
            # window streams straight off the flat column: one array slice,
            # C-level iteration over interned-prefix indices, one flush.
            window = wd_prefix[w : wd_end[hi - 1]]
            processed = len(window)
            fresh = 0
            for index in window:
                prefix = prefix_rows[index]
                if prefix is None:
                    prefix = prefix_at(index)
                if prefix in seen:
                    continue
                seen_add(prefix)
                fresh += 1
                links = links_get(prefix)
                if links:
                    pending_extend(links)
            if fresh:
                self._total_withdrawals += fresh
            flush()
            return processed

        for row in range(lo, hi):
            w_high = wd_end[row]
            a_high = ann_end[row]
            if w < w_high:
                fresh = 0
                while w < w_high:
                    prefix = prefix_at(wd_prefix[w])
                    w += 1
                    processed += 1
                    if prefix in seen:
                        continue
                    seen_add(prefix)
                    fresh += 1
                    links = links_get(prefix)
                    if links:
                        pending_extend(links)
                if fresh:
                    # record_update below reads (and may decrement) the
                    # total, so it is synced per row, not per span.
                    self._total_withdrawals += fresh
            if a < a_high:
                if pending:
                    flush()
                while a < a_high:
                    record_update(
                        prefix_at(ann_prefix[a]), path_at(attr_path[ann_attr[a]])
                    )
                    a += 1
        if pending:
            flush()
        return processed

    def record_update(self, prefix: Prefix, new_path: ASPath) -> None:
        """Account for a path update (implicit withdrawal of the old path).

        The prefix stops counting towards ``P(l, t)`` for the links of its old
        path and starts counting for the links of its new path.  If the prefix
        had been withdrawn earlier in the burst, the re-announcement clears
        the withdrawal (it no longer counts in ``W``).  The underlying index
        is updated in place, so an engine sharing it sees the new path too.
        """
        self._sync_seen()
        if prefix in self._withdrawn_prefixes:
            old_links = self._index.links_of_prefix.get(prefix, ())
            self._withdrawn_prefixes.discard(prefix)
            # The prefix may be withdrawn again later in the burst; drop the
            # negative cache so the vectorised fold re-checks its row.
            self._seen_mask = None
            self._mask_exact = False
            self._total_withdrawals = max(0, self._total_withdrawals - 1)
            withdrawn = self._withdrawn_for_link
            delta = self._routed_delta
            for link in old_links:
                withdrawn[link] = max(0, withdrawn.get(link, 0) - 1)
                # The index is about to move the prefix off its old links;
                # cancel the withdrawal's decrement so the two do not stack.
                delta[link] = delta.get(link, 0) + 1
        self._index.set_path(prefix, new_path)

    # -- queries ----------------------------------------------------------------

    @property
    def total_withdrawals(self) -> int:
        """``W(t)``: withdrawals received so far (deduplicated)."""
        return self._total_withdrawals

    @property
    def withdrawn_prefixes(self) -> FrozenSet[Prefix]:
        """The set of currently-withdrawn prefixes."""
        self._sync_seen()
        return frozenset(self._withdrawn_prefixes)

    def withdrawn_within(self, prefixes) -> FrozenSet[Prefix]:
        """``withdrawn_prefixes & prefixes`` for a set-like ``prefixes``.

        Deliberately avoids :meth:`_sync_seen`: the materialised part is
        intersected set-to-set (iterating the smaller side) and deferred
        rows are resolved straight off the pool's decode cache and checked
        against ``prefixes``, so the full withdrawn set is never built.
        """
        self._sync_counts()
        base = self._withdrawn_prefixes
        result: Set[Prefix] = set(base.intersection(prefixes)) if base else set()
        rows = self._synced_rows
        if rows:
            result.update(
                filter(prefixes.__contains__, self._seen_mask_pool.prefixes_at(rows))
            )
        return frozenset(result)

    def tracked_links(self) -> List[Link]:
        """Every link appearing in at least one known path."""
        self._sync_counts()
        links: Set[Link] = set(self._index.routed_for_link) | set(self._withdrawn_for_link)
        return sorted(links)

    def withdrawal_count(self, link: Link) -> int:
        """``W(l, t)`` for one link."""
        self._sync_counts()
        return self._withdrawn_for_link.get(_canonical(link), 0)

    def still_routed_count(self, link: Link) -> int:
        """``P(l, t)`` for one link: the index baseline plus the burst delta."""
        self._sync_counts()
        canonical = _canonical(link)
        return max(
            0,
            self._index.routed_for_link.get(canonical, 0)
            + self._routed_delta.get(canonical, 0),
        )

    def withdrawal_share(self, link: Link) -> float:
        """``WS(l, t)``; 0 when no withdrawal has been received."""
        if self._total_withdrawals == 0:
            return 0.0
        return self.withdrawal_count(link) / self._total_withdrawals

    def path_share(self, link: Link) -> float:
        """``PS(l, t)``; 0 when the link carries no prefix at all."""
        withdrawn = self.withdrawal_count(link)
        routed = self.still_routed_count(link)
        if withdrawn + routed == 0:
            return 0.0
        return withdrawn / (withdrawn + routed)

    def fit_score(self, link: Link) -> float:
        """``FS(l, t)`` for a single link."""
        return self._combine(self.withdrawal_share(link), self.path_share(link))

    def score(self, link: Link) -> LinkScore:
        """All the metrics of a single link."""
        canonical = _canonical(link)
        ws = self.withdrawal_share(canonical)
        ps = self.path_share(canonical)
        return LinkScore(
            links=(canonical,),
            withdrawal_share=ws,
            path_share=ps,
            fit_score=self._combine(ws, ps),
            withdrawn_count=self.withdrawal_count(canonical),
            still_routed_count=self.still_routed_count(canonical),
        )

    def score_set(self, links: Sequence[Link]) -> LinkScore:
        """Metrics of a set of links, per the multi-link extension of §4.2.

        ``WS(S, t) = sum_l W(l, t) / W(t)`` and
        ``PS(S, t) = sum_l W(l, t) / sum_l (W(l, t) + P(l, t))``.

        The withdrawal share is capped at 1.0: when aggregated links overlap
        (they are crossed by the same prefixes, e.g. consecutive links of one
        path) the plain sum double-counts withdrawals, which would make any
        serial aggregation look better than the failed link itself.  Capping
        keeps the metric a share and preserves the intended behaviour for the
        genuinely parallel links of a router failure (disjoint prefix sets).
        """
        canonical = tuple(sorted({_canonical(link) for link in links}))
        withdrawn = sum(self.withdrawal_count(link) for link in canonical)
        routed = sum(self.still_routed_count(link) for link in canonical)
        return self.score_from_counts(canonical, withdrawn, routed)

    def score_from_counts(
        self, links: Sequence[Link], withdrawn: int, routed: int
    ) -> LinkScore:
        """Multi-link score from already-summed W/P counts.

        The incremental-aggregation path of the inference engine maintains
        running ``sum W(l, t)`` / ``sum P(l, t)`` totals while it grows a
        link aggregate; this constructor turns those running sums into a
        :class:`LinkScore` without re-querying every member link.  For
        distinct canonical ``links`` it is arithmetically identical to
        :meth:`score_set`.
        """
        ws = (
            min(1.0, withdrawn / self._total_withdrawals)
            if self._total_withdrawals
            else 0.0
        )
        ps = withdrawn / (withdrawn + routed) if (withdrawn + routed) else 0.0
        return LinkScore(
            links=tuple(sorted(links)),
            withdrawal_share=ws,
            path_share=ps,
            fit_score=self._combine(ws, ps),
            withdrawn_count=withdrawn,
            still_routed_count=routed,
        )

    def all_scores(self, min_withdrawn: int = 1) -> List[LinkScore]:
        """Scores of every link with at least ``min_withdrawn`` withdrawals.

        Sorted by decreasing fit score (ties broken by link endpoints for
        determinism).  Links with no withdrawn prefix cannot be the failure
        and are skipped, which keeps the inference cost proportional to the
        burst's footprint rather than to the RIB size.

        Computed inline rather than via :meth:`score` per link: the keys of
        the withdrawal overlay are already canonical and one inference walks
        hundreds of links, so the per-link re-canonicalisation and repeated
        dictionary lookups of the method chain would dominate the query.
        The arithmetic is identical.
        """
        self._sync_counts()
        total = self._total_withdrawals
        routed_base = self._index.routed_for_link.get
        delta_get = self._routed_delta.get
        combine = self._combine
        scores = []
        append = scores.append
        for link, withdrawn in self._withdrawn_for_link.items():
            if withdrawn < min_withdrawn:
                continue
            ws = withdrawn / total if total else 0.0
            routed = routed_base(link, 0) + delta_get(link, 0)
            if routed < 0:
                routed = 0
            denominator = withdrawn + routed
            ps = withdrawn / denominator if denominator else 0.0
            append(
                LinkScore(
                    links=(link,),
                    withdrawal_share=ws,
                    path_share=ps,
                    fit_score=combine(ws, ps),
                    withdrawn_count=withdrawn,
                    still_routed_count=routed,
                )
            )
        scores.sort(key=lambda item: (-item.fit_score, item.links))
        return scores

    def prefixes_via_links(self, links: Iterable[Link]) -> FrozenSet[Prefix]:
        """Prefixes whose *current* path traverses any of ``links``.

        This is the set SWIFT reroutes when those links are inferred as
        failed; it includes both already-withdrawn and not-yet-withdrawn
        prefixes whose pre-burst path crossed the links.  Answered from the
        reverse index as a union of per-link prefix sets — O(result size).
        """
        return self._index.prefixes_via(links)

    # -- internals ----------------------------------------------------------------

    def _combine(self, ws: float, ps: float) -> float:
        if ws <= 0.0 or ps <= 0.0:
            return 0.0
        w_ws, w_ps = self.config.ws_weight, self.config.ps_weight
        return (ws ** w_ws * ps ** w_ps) ** (1.0 / (w_ws + w_ps))
