"""Withdrawal Share, Path Share and the Fit Score (§4.1, §4.2).

For a link ``l`` at time ``t``:

* ``W(l, t)`` — number of prefixes whose (pre-burst) path includes ``l`` and
  that have been withdrawn by ``t``;
* ``W(t)`` — total number of withdrawals received by ``t``;
* ``P(l, t)`` — number of prefixes whose path *still* traverses ``l`` at ``t``
  (i.e. not withdrawn nor re-routed away from ``l``);
* ``WS(l, t) = W(l, t) / W(t)`` — Withdrawal Share;
* ``PS(l, t) = W(l, t) / (W(l, t) + P(l, t))`` — Path Share;
* ``FS(l, t) = (WS^wWS * PS^wPS)^(1/(wWS + wPS))`` — weighted geometric mean.

The paper calibrates ``wWS = 3 * wPS`` (§4.2).  For sets of links sharing an
endpoint (concurrent failures), WS and PS generalise by summing the
individual ``W(l, t)`` and ``P(l, t)`` terms (§4.2).

:class:`FitScoreCalculator` maintains these quantities incrementally as
withdrawals and updates are fed in, so that computing the scores at any point
of the burst costs O(number of tracked links).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.prefix import Prefix

__all__ = ["FitScoreCalculator", "FitScoreConfig", "LinkScore"]

Link = Tuple[int, int]


def _canonical(link: Link) -> Link:
    """Canonical (sorted-endpoint) form of an AS link."""
    return link if link[0] <= link[1] else (link[1], link[0])


@dataclass(frozen=True)
class FitScoreConfig:
    """Weights of the Fit Score geometric mean.

    The paper's calibration sets the Withdrawal Share weight three times
    higher than the Path Share weight (§4.2): early in a burst many affected
    prefixes have not been withdrawn yet, which depresses PS for the failed
    link, while its WS is maximal from the start.
    """

    ws_weight: float = 3.0
    ps_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.ws_weight <= 0 or self.ps_weight <= 0:
            raise ValueError("fit-score weights must be positive")


@dataclass(frozen=True)
class LinkScore:
    """The metrics of one link (or one set of aggregated links) at a time t."""

    links: Tuple[Link, ...]
    withdrawal_share: float
    path_share: float
    fit_score: float
    withdrawn_count: int
    still_routed_count: int

    @property
    def link(self) -> Link:
        """The single link when the score refers to exactly one link."""
        if len(self.links) != 1:
            raise ValueError("score aggregates several links")
        return self.links[0]


class FitScoreCalculator:
    """Incrementally maintains W(l, t), P(l, t) and the derived scores.

    Parameters
    ----------
    rib:
        The pre-burst Adj-RIB-In of the session: prefix -> AS path.  Paths
        must include the peer AS as first hop; the link between the SWIFTED
        router and the peer itself is not part of the path and therefore not
        scored (its failure would be a *local* failure, handled by existing
        fast-reroute techniques, not by SWIFT).
    config:
        Fit-score weights.
    local_as:
        Optional AS number of the local router; when provided, the implicit
        first link (local_as, peer_as) is also tracked, matching the paper's
        Fig. 4 which scores link (1, 2).
    peer_as:
        The peer AS of the session (needed only when ``local_as`` is given).
    """

    def __init__(
        self,
        rib: Mapping[Prefix, ASPath],
        config: Optional[FitScoreConfig] = None,
        local_as: Optional[int] = None,
        peer_as: Optional[int] = None,
    ) -> None:
        self.config = config or FitScoreConfig()
        self._local_prefix_link: Optional[Link] = None
        if local_as is not None and peer_as is not None:
            self._local_prefix_link = _canonical((local_as, peer_as))

        # Static view of the pre-burst paths.
        self._links_of_prefix: Dict[Prefix, Tuple[Link, ...]] = {}
        # Current counters.
        self._withdrawn_for_link: Dict[Link, int] = {}
        self._routed_for_link: Dict[Link, int] = {}
        self._withdrawn_prefixes: Set[Prefix] = set()
        self._total_withdrawals = 0

        for prefix, path in rib.items():
            links = self._links_for_path(path)
            if not links:
                continue
            self._links_of_prefix[prefix] = links
            for link in links:
                self._routed_for_link[link] = self._routed_for_link.get(link, 0) + 1

    # -- feeding the stream ----------------------------------------------------

    def record_withdrawal(self, prefix: Prefix) -> None:
        """Account for the withdrawal of ``prefix``.

        Withdrawals of prefixes unknown to the pre-burst RIB (noise, or
        prefixes announced after the snapshot) still increase the total
        withdrawal count ``W(t)`` — they dilute every WS equally, which is
        exactly how unrelated noise degrades the metric in the paper.
        Duplicate withdrawals of the same prefix are counted once.
        """
        if prefix in self._withdrawn_prefixes:
            return
        self._withdrawn_prefixes.add(prefix)
        self._total_withdrawals += 1
        links = self._links_of_prefix.get(prefix)
        if not links:
            return
        for link in links:
            self._withdrawn_for_link[link] = self._withdrawn_for_link.get(link, 0) + 1
            self._routed_for_link[link] = max(0, self._routed_for_link.get(link, 0) - 1)

    def record_update(self, prefix: Prefix, new_path: ASPath) -> None:
        """Account for a path update (implicit withdrawal of the old path).

        The prefix stops counting towards ``P(l, t)`` for the links of its old
        path and starts counting for the links of its new path.  If the prefix
        had been withdrawn earlier in the burst, the re-announcement clears
        the withdrawal (it no longer counts in ``W``).
        """
        old_links = self._links_of_prefix.get(prefix, ())
        if prefix in self._withdrawn_prefixes:
            self._withdrawn_prefixes.discard(prefix)
            self._total_withdrawals = max(0, self._total_withdrawals - 1)
            for link in old_links:
                self._withdrawn_for_link[link] = max(
                    0, self._withdrawn_for_link.get(link, 0) - 1
                )
        else:
            for link in old_links:
                self._routed_for_link[link] = max(0, self._routed_for_link.get(link, 0) - 1)
        new_links = self._links_for_path(new_path)
        self._links_of_prefix[prefix] = new_links
        for link in new_links:
            self._routed_for_link[link] = self._routed_for_link.get(link, 0) + 1

    # -- queries ----------------------------------------------------------------

    @property
    def total_withdrawals(self) -> int:
        """``W(t)``: withdrawals received so far (deduplicated)."""
        return self._total_withdrawals

    @property
    def withdrawn_prefixes(self) -> FrozenSet[Prefix]:
        """The set of currently-withdrawn prefixes."""
        return frozenset(self._withdrawn_prefixes)

    def tracked_links(self) -> List[Link]:
        """Every link appearing in at least one known path."""
        links: Set[Link] = set(self._routed_for_link) | set(self._withdrawn_for_link)
        return sorted(links)

    def withdrawal_count(self, link: Link) -> int:
        """``W(l, t)`` for one link."""
        return self._withdrawn_for_link.get(_canonical(link), 0)

    def still_routed_count(self, link: Link) -> int:
        """``P(l, t)`` for one link."""
        return self._routed_for_link.get(_canonical(link), 0)

    def withdrawal_share(self, link: Link) -> float:
        """``WS(l, t)``; 0 when no withdrawal has been received."""
        if self._total_withdrawals == 0:
            return 0.0
        return self.withdrawal_count(link) / self._total_withdrawals

    def path_share(self, link: Link) -> float:
        """``PS(l, t)``; 0 when the link carries no prefix at all."""
        withdrawn = self.withdrawal_count(link)
        routed = self.still_routed_count(link)
        if withdrawn + routed == 0:
            return 0.0
        return withdrawn / (withdrawn + routed)

    def fit_score(self, link: Link) -> float:
        """``FS(l, t)`` for a single link."""
        return self._combine(self.withdrawal_share(link), self.path_share(link))

    def score(self, link: Link) -> LinkScore:
        """All the metrics of a single link."""
        canonical = _canonical(link)
        ws = self.withdrawal_share(canonical)
        ps = self.path_share(canonical)
        return LinkScore(
            links=(canonical,),
            withdrawal_share=ws,
            path_share=ps,
            fit_score=self._combine(ws, ps),
            withdrawn_count=self.withdrawal_count(canonical),
            still_routed_count=self.still_routed_count(canonical),
        )

    def score_set(self, links: Sequence[Link]) -> LinkScore:
        """Metrics of a set of links, per the multi-link extension of §4.2.

        ``WS(S, t) = sum_l W(l, t) / W(t)`` and
        ``PS(S, t) = sum_l W(l, t) / sum_l (W(l, t) + P(l, t))``.

        The withdrawal share is capped at 1.0: when aggregated links overlap
        (they are crossed by the same prefixes, e.g. consecutive links of one
        path) the plain sum double-counts withdrawals, which would make any
        serial aggregation look better than the failed link itself.  Capping
        keeps the metric a share and preserves the intended behaviour for the
        genuinely parallel links of a router failure (disjoint prefix sets).
        """
        canonical = tuple(sorted({_canonical(link) for link in links}))
        withdrawn = sum(self.withdrawal_count(link) for link in canonical)
        routed = sum(self.still_routed_count(link) for link in canonical)
        ws = (
            min(1.0, withdrawn / self._total_withdrawals)
            if self._total_withdrawals
            else 0.0
        )
        ps = withdrawn / (withdrawn + routed) if (withdrawn + routed) else 0.0
        return LinkScore(
            links=canonical,
            withdrawal_share=ws,
            path_share=ps,
            fit_score=self._combine(ws, ps),
            withdrawn_count=withdrawn,
            still_routed_count=routed,
        )

    def all_scores(self, min_withdrawn: int = 1) -> List[LinkScore]:
        """Scores of every link with at least ``min_withdrawn`` withdrawals.

        Sorted by decreasing fit score (ties broken by link endpoints for
        determinism).  Links with no withdrawn prefix cannot be the failure
        and are skipped, which keeps the inference cost proportional to the
        burst's footprint rather than to the RIB size.
        """
        scores = [
            self.score(link)
            for link, withdrawn in self._withdrawn_for_link.items()
            if withdrawn >= min_withdrawn
        ]
        scores.sort(key=lambda item: (-item.fit_score, item.links))
        return scores

    def prefixes_via_links(self, links: Iterable[Link]) -> FrozenSet[Prefix]:
        """Prefixes whose *current* path traverses any of ``links``.

        This is the set SWIFT reroutes when those links are inferred as
        failed; it includes both already-withdrawn and not-yet-withdrawn
        prefixes whose pre-burst path crossed the links.
        """
        wanted = {_canonical(link) for link in links}
        result: Set[Prefix] = set()
        for prefix, prefix_links in self._links_of_prefix.items():
            for link in prefix_links:
                if link in wanted:
                    result.add(prefix)
                    break
        return frozenset(result)

    # -- internals ----------------------------------------------------------------

    def _links_for_path(self, path: ASPath) -> Tuple[Link, ...]:
        links = [ _canonical(link) for link in path.links() ]
        if self._local_prefix_link is not None and len(path) >= 1:
            links.insert(0, self._local_prefix_link)
        # Deduplicate while keeping order (paths with prepending repeat links).
        seen: Set[Link] = set()
        unique: List[Link] = []
        for link in links:
            if link not in seen:
                seen.add(link)
                unique.append(link)
        return tuple(unique)

    def _combine(self, ws: float, ps: float) -> float:
        if ws <= 0.0 or ps <= 0.0:
            return 0.0
        w_ws, w_ps = self.config.ws_weight, self.config.ps_weight
        return (ws ** w_ws * ps ** w_ps) ** (1.0 / (w_ws + w_ps))
