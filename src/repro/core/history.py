"""Historical burst model and adaptive triggering thresholds (§4.2).

SWIFT trades a little speed for accuracy: it launches a first inference after
a *triggering threshold* of withdrawals (2,500 by default) and accepts the
inference only if predicting that many prefixes is plausible given the bursts
seen in the past.  Concretely (§4.2):

* after 2.5k received withdrawals, accept if the prediction is < 10k prefixes;
* after 5k, accept if < 20k;
* after 7.5k, accept if < 50k;
* after 10k, accept if < 100k;
* after 20k, accept unconditionally.

:class:`TriggeringSchedule` encodes that step function (and lets ablations
swap in other schedules).  :class:`HistoryModel` additionally records the
sizes of past bursts so a deployment can re-derive a schedule from its own
history — "SWIFT evaluates the likelihood that its inferences are realistic
(e.g., using historical data)" (§3.1).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["HistoryModel", "TriggeringSchedule"]


@dataclass(frozen=True)
class TriggeringSchedule:
    """The adaptive acceptance schedule of §4.2.

    ``steps`` maps a number of received withdrawals to the maximum number of
    predicted prefixes acceptable at that point; ``unconditional_after`` is
    the withdrawal count after which the inference is always accepted.
    """

    steps: Tuple[Tuple[int, int], ...] = (
        (2500, 10000),
        (5000, 20000),
        (7500, 50000),
        (10000, 100000),
    )
    unconditional_after: int = 20000

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("schedule needs at least one step")
        previous_received = 0
        for received, limit in self.steps:
            if received <= previous_received:
                raise ValueError("steps must have increasing withdrawal counts")
            if limit <= 0:
                raise ValueError("prediction limits must be positive")
            previous_received = received
        if self.unconditional_after < self.steps[-1][0]:
            raise ValueError(
                "unconditional_after must not precede the last schedule step"
            )

    @property
    def first_trigger(self) -> int:
        """The triggering threshold: withdrawals needed for the first inference."""
        return self.steps[0][0]

    def next_trigger_after(self, received: int) -> Optional[int]:
        """The next withdrawal count at which an inference should run.

        Returns ``None`` once ``received`` is at or past the unconditional
        threshold (the last possible trigger).
        """
        for step_received, _ in self.steps:
            if received < step_received:
                return step_received
        if received < self.unconditional_after:
            return self.unconditional_after
        return None

    def accepts(self, received: int, predicted: int) -> bool:
        """Whether an inference made after ``received`` withdrawals is accepted.

        ``predicted`` is the number of prefixes the inference would reroute.
        Below the first trigger no inference is accepted at all; past the
        unconditional threshold every inference is accepted.
        """
        if received >= self.unconditional_after:
            return True
        applicable: Optional[int] = None
        for step_received, limit in self.steps:
            if received >= step_received:
                applicable = limit
        if applicable is None:
            return False
        return predicted < applicable

    @classmethod
    def permissive(cls) -> "TriggeringSchedule":
        """A schedule that accepts any inference at the first trigger.

        This is the "without history" mode of Fig. 6(a): a single inference
        after 2.5k withdrawals, accepted whatever its size.
        """
        return cls(steps=((2500, 10 ** 9),), unconditional_after=2500)


class HistoryModel:
    """Burst-size history of one session.

    Stores the sizes of past bursts and answers plausibility queries: the
    empirical probability of seeing a burst at least as large as a candidate
    prediction.  :meth:`derive_schedule` converts the history into a
    :class:`TriggeringSchedule` (the shipped default mirrors the paper's
    hand-tuned schedule, which was itself derived from one month of real
    bursts).
    """

    def __init__(self, burst_sizes: Optional[Sequence[int]] = None) -> None:
        self._sizes: List[int] = sorted(burst_sizes) if burst_sizes else []

    # -- maintenance ---------------------------------------------------------

    def record_burst(self, size: int) -> None:
        """Add one observed burst size to the history."""
        if size < 0:
            raise ValueError("burst size must be non-negative")
        bisect.insort(self._sizes, size)

    def __len__(self) -> int:
        return len(self._sizes)

    @property
    def sizes(self) -> List[int]:
        """The recorded burst sizes, sorted ascending."""
        return list(self._sizes)

    # -- queries -------------------------------------------------------------

    def probability_at_least(self, size: int) -> float:
        """Empirical probability that a burst reaches ``size`` withdrawals.

        Returns 1.0 when the history is empty (no evidence against any size),
        which makes an un-trained SWIFT behave like the history-less variant.
        """
        if not self._sizes:
            return 1.0
        index = bisect.bisect_left(self._sizes, size)
        return (len(self._sizes) - index) / len(self._sizes)

    def percentile(self, fraction: float) -> int:
        """Burst size at the given fraction (0..1) of the history."""
        if not self._sizes:
            return 0
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        index = min(len(self._sizes) - 1, int(fraction * (len(self._sizes) - 1)))
        return self._sizes[index]

    def is_plausible(self, predicted: int, minimum_probability: float = 0.05) -> bool:
        """Whether a prediction of ``predicted`` prefixes is historically plausible."""
        return self.probability_at_least(predicted) >= minimum_probability

    def derive_schedule(
        self,
        triggers: Sequence[int] = (2500, 5000, 7500, 10000),
        unconditional_after: int = 20000,
        minimum_probability: float = 0.05,
    ) -> TriggeringSchedule:
        """Build a triggering schedule from the recorded history.

        For each trigger point the acceptance limit is the burst size whose
        empirical exceedance probability drops below ``minimum_probability``,
        scaled up with the trigger (later triggers tolerate larger
        predictions).  Falls back to the paper's default schedule when the
        history is empty.
        """
        if not self._sizes:
            return TriggeringSchedule()
        base_limit = max(
            self.percentile(1.0 - minimum_probability), triggers[0] * 2
        )
        steps: List[Tuple[int, int]] = []
        for index, trigger in enumerate(sorted(triggers)):
            scale = 2 ** index
            steps.append((trigger, max(base_limit * scale, trigger * 2)))
        return TriggeringSchedule(
            steps=tuple(steps), unconditional_after=unconditional_after
        )
