"""SWIFT core: the paper's primary contribution.

* :mod:`repro.core.fit_score` — the Withdrawal Share / Path Share metrics and
  their weighted geometric mean, the Fit Score (§4.1), including the
  multi-link extension for failures sharing an endpoint (§4.2).
* :mod:`repro.core.burst_detection` — on-line detection of withdrawal peaks
  against the recent history (§4.1 "Burst detection").
* :mod:`repro.core.history` — the historical burst-size model and the
  adaptive triggering thresholds (§4.2).
* :mod:`repro.core.inference` — the inference engine tying everything
  together: tracks a session's stream, detects bursts, localises the failure
  and predicts the affected prefixes (§4).
* :mod:`repro.core.backup` — backup next-hop computation honouring rerouting
  policies (§3.2, §5).
* :mod:`repro.core.encoding` — the two-part data-plane tag encoding (§5).
* :mod:`repro.core.swifted_router` — a SWIFTED border router: a BGP speaker
  plus the SWIFT engine plus a two-stage forwarding table (§3).
"""

from repro.core.backup import (
    AggregatedBackupTable,
    BackupComputer,
    BackupSelection,
    ReroutingPolicy,
)
from repro.core.burst_detection import BurstDetector, BurstDetectorConfig, BurstState
from repro.core.encoding import EncodedTags, EncoderConfig, TagEncoder
from repro.core.fit_score import FitScoreCalculator, FitScoreConfig, LinkPrefixIndex, LinkScore
from repro.core.history import HistoryModel, TriggeringSchedule
from repro.core.inference import (
    InferenceConfig,
    InferenceEngine,
    InferenceResult,
    PrefixPrediction,
)
from repro.core.loop_guard import LoopAlert, LoopGuard
from repro.core.swifted_router import SwiftConfig, SwiftedRouter, RerouteAction

__all__ = [
    "AggregatedBackupTable",
    "BackupComputer",
    "BackupSelection",
    "BurstDetector",
    "BurstDetectorConfig",
    "BurstState",
    "EncodedTags",
    "EncoderConfig",
    "FitScoreCalculator",
    "FitScoreConfig",
    "HistoryModel",
    "InferenceConfig",
    "InferenceEngine",
    "InferenceResult",
    "LinkPrefixIndex",
    "LinkScore",
    "LoopAlert",
    "LoopGuard",
    "PrefixPrediction",
    "RerouteAction",
    "ReroutingPolicy",
    "SwiftConfig",
    "SwiftedRouter",
    "TagEncoder",
    "TriggeringSchedule",
]
