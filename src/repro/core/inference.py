"""The SWIFT inference engine (§4).

The engine consumes the BGP message stream of one peering session.  It
maintains a :class:`~repro.core.burst_detection.BurstDetector` and a
persistent :class:`~repro.core.fit_score.LinkPrefixIndex` — the link -> prefix
reverse index of the session RIB — which it updates incrementally as
announcements stream in and as quiet-time withdrawals age out.  When a burst
starts, a :class:`~repro.core.fit_score.FitScoreCalculator` is overlaid on
the live index in O(1) (no RIB scan); at every triggering threshold it:

1. scores every candidate link and greedily aggregates links sharing an
   endpoint while the aggregate fit score does not decrease (§4.2,
   "SWIFT can infer concurrent link failures");
2. keeps every candidate (single link or aggregate) whose fit score equals
   the maximum — the conservative tie handling of §4.2;
3. predicts the affected prefixes as *all* prefixes whose current path
   traverses any inferred link (§3.1, conservative prediction), answered
   from the reverse index as a union of per-link prefix sets;
4. checks the prediction against the history model / triggering schedule and
   either emits the inference or waits for the next threshold (§4.2).

Every step of the burst hot path is therefore proportional to the burst's
footprint (withdrawn prefixes and their links), not to the RIB size — the
property that lets SWIFT answer within ~2 s of the burst start (§4, Fig. 9).

The engine is deliberately independent from the data-plane machinery so it
can be evaluated on traces (as in §6) without a router attached.  Messages
can be fed one at a time (:meth:`InferenceEngine.process_message`) or in
batches (:meth:`InferenceEngine.process_batch`), which routers and the
experiment drivers prefer to amortise per-message Python overhead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.messages import BGPMessage, Update
from repro.bgp.prefix import Prefix
from repro.core import kernels
from repro.core.burst_detection import BurstDetector, BurstDetectorConfig
from repro.core.fit_score import FitScoreCalculator, FitScoreConfig, LinkPrefixIndex, LinkScore
from repro.core.history import HistoryModel, TriggeringSchedule

__all__ = [
    "InferenceConfig",
    "InferenceEngine",
    "InferenceResult",
    "PrefixPrediction",
]

Link = Tuple[int, int]

#: Signature of a pluggable calculator factory: given the engine's current
#: RIB view it returns a fit-score calculator.  Used by the parity tests and
#: speedup benchmarks to run the reference (full-scan) implementation through
#: the exact same engine logic.
CalculatorFactory = Callable[[Mapping[Prefix, ASPath]], FitScoreCalculator]


@dataclass(frozen=True)
class InferenceConfig:
    """All the knobs of the inference algorithm (paper defaults).

    ``kernel_backend`` selects the column-kernel backend for the engine's
    hot loops (see :mod:`repro.core.kernels`): ``None`` auto-selects (numpy
    when importable, the stdlib reference otherwise), ``"stdlib"`` /
    ``"numpy"`` force one.  The backend never changes results — only how
    the columns are walked.
    """

    fit_score: FitScoreConfig = field(default_factory=FitScoreConfig)
    detector: BurstDetectorConfig = field(default_factory=BurstDetectorConfig)
    schedule: TriggeringSchedule = field(default_factory=TriggeringSchedule)
    use_history: bool = True
    max_aggregation_rounds: int = 8
    score_tolerance: float = 1e-9
    kernel_backend: Optional[str] = None

    @classmethod
    def without_history(cls) -> "InferenceConfig":
        """The history-less variant evaluated in Fig. 6(a)."""
        return cls(schedule=TriggeringSchedule.permissive(), use_history=False)


@dataclass(frozen=True)
class PrefixPrediction:
    """The set of prefixes SWIFT would reroute after an inference."""

    predicted_prefixes: FrozenSet[Prefix]
    already_withdrawn: FrozenSet[Prefix]

    @property
    def future_prefixes(self) -> FrozenSet[Prefix]:
        """Predicted prefixes that have *not* been withdrawn yet.

        This is the set §6.3 scores with the Correctly Predicted Rate: the
        value of SWIFT lies in rerouting prefixes before their withdrawals
        arrive.
        """
        return self.predicted_prefixes - self.already_withdrawn

    @property
    def size(self) -> int:
        """Total number of predicted prefixes."""
        return len(self.predicted_prefixes)


@dataclass(frozen=True)
class InferenceResult:
    """One (accepted or rejected) inference."""

    timestamp: float
    withdrawals_seen: int
    inferred_links: Tuple[Link, ...]
    scores: Tuple[LinkScore, ...]
    prediction: PrefixPrediction
    accepted: bool
    burst_start: float

    @property
    def inference_delay(self) -> float:
        """Seconds elapsed between the burst start and this inference."""
        return max(0.0, self.timestamp - self.burst_start)

    @property
    def shared_endpoints(self) -> FrozenSet[int]:
        """AS numbers appearing in every inferred link (aggregation endpoints)."""
        if not self.inferred_links:
            return frozenset()
        common: Set[int] = set(self.inferred_links[0])
        for link in self.inferred_links[1:]:
            common &= set(link)
        return frozenset(common)

    @property
    def all_endpoints(self) -> FrozenSet[int]:
        """Every AS appearing as an endpoint of an inferred link."""
        endpoints: Set[int] = set()
        for a, b in self.inferred_links:
            endpoints.add(a)
            endpoints.add(b)
        return frozenset(endpoints)


class InferenceEngine:
    """Per-session SWIFT inference.

    Parameters
    ----------
    rib:
        Pre-burst Adj-RIB-In snapshot (prefix -> AS path) of the session.
        The engine builds its link/prefix index from it once — O(RIB) — and
        maintains it incrementally afterwards, so burst starts and triggering
        thresholds never rescan the RIB.
    config:
        Inference configuration; defaults to the paper's settings.
    history:
        Optional burst-size history used for plausibility checks; when absent
        the static triggering schedule alone gates acceptance.
    local_as / peer_as:
        When provided, the implicit first AS link between the local router
        and the session peer is also considered by the scoring.
    calculator_factory:
        Optional hook replacing the O(1) overlay calculator with a custom
        one (called with the engine's current RIB view at every burst start).
        Exists for the reference-parity tests and benchmarks; production use
        should leave it unset.
    """

    def __init__(
        self,
        rib: Mapping[Prefix, ASPath],
        config: Optional[InferenceConfig] = None,
        history: Optional[HistoryModel] = None,
        local_as: Optional[int] = None,
        peer_as: Optional[int] = None,
        calculator_factory: Optional[CalculatorFactory] = None,
    ) -> None:
        self.config = config or InferenceConfig()
        self.history = history
        self._rib = dict(rib)
        self._local_as = local_as
        self._peer_as = peer_as
        self._index = LinkPrefixIndex(self._rib, local_as=local_as, peer_as=peer_as)
        self._calculator_factory = calculator_factory
        self._kernel = kernels.get_backend(self.config.kernel_backend)
        self.detector = BurstDetector(self.config.detector, kernel=self._kernel)
        self._calculator: Optional[FitScoreCalculator] = None
        self._calculator_shares_index = False
        self._burst_start: Optional[float] = None
        self._withdrawals_in_burst = 0
        self._next_trigger: Optional[int] = self.config.schedule.first_trigger
        self.results: List[InferenceResult] = []
        self._accepted_result: Optional[InferenceResult] = None
        self._listeners: List[Callable[[InferenceResult], None]] = []
        # Withdrawals received in the last detection window while quiet; they
        # belong to the burst once detection fires and are replayed then.
        self._recent_withdrawals: Deque[Tuple[float, Prefix]] = deque()

    # -- wiring -------------------------------------------------------------

    def add_listener(self, callback: Callable[[InferenceResult], None]) -> None:
        """Register a callback invoked whenever an inference is *accepted*."""
        self._listeners.append(callback)

    # -- stream consumption ---------------------------------------------------

    def process_message(self, message: BGPMessage) -> Optional[InferenceResult]:
        """Feed one message; returns an accepted inference if one fires."""
        if not isinstance(message, Update):
            return None
        accepted: Optional[InferenceResult] = None

        # Age the quiet-time withdrawal buffer on *every* message timestamp —
        # announcement-only traffic must also expire stale entries, otherwise
        # a later burst would replay them and backdate its start time.
        if not self._in_burst:
            self._expire_recent(message.timestamp)

        if message.withdrawals:
            event = self.detector.observe_withdrawals(
                message.timestamp, len(message.withdrawals)
            )
            if event is not None:
                if event.kind == "start":
                    # The buffered withdrawals of the detection window belong
                    # to the burst; _start_burst replays them into the
                    # calculator.
                    self._start_burst(event.timestamp)
                else:
                    # A withdrawal arriving after a long quiet gap: the old
                    # burst is over, and this withdrawal is quiet-time traffic
                    # (possibly the first sign of a *new* burst) — it must not
                    # be attributed to the stale calculator.
                    self._end_burst(event.timestamp)
            if self._in_burst:
                self._withdrawals_in_burst += self._calculator.record_withdrawals(
                    message.withdrawals
                )
                accepted = self._maybe_infer(message.timestamp)
            else:
                for prefix in message.withdrawals:
                    self._recent_withdrawals.append((message.timestamp, prefix))
        else:
            event = self.detector.observe_time(message.timestamp)
            if event is not None and event.kind == "end":
                self._end_burst(message.timestamp)

        if message.announcements:
            # Keep the RIB view and the link/prefix index current; during a
            # burst the calculator also follows the implicit withdrawals
            # carried by path changes.
            for announcement in message.announcements:
                prefix = announcement.prefix
                path = announcement.attributes.as_path
                if self._in_burst:
                    self._calculator.record_update(prefix, path)
                    if not self._calculator_shares_index:
                        self._index.set_path(prefix, path)
                else:
                    self._index.set_path(prefix, path)
                self._rib[prefix] = path

        if (
            self._in_burst
            and self.detector.state.value == "quiet"
        ):
            self._end_burst(message.timestamp)
        return accepted

    def process_batch(
        self, messages: Iterable[BGPMessage]
    ) -> List[InferenceResult]:
        """Feed a batch of messages; returns every accepted inference.

        Routers and experiment drivers should prefer this over per-message
        calls: the loop binds the hot method once and withdrawal-heavy
        UPDATEs inside are already recorded in bulk.  The messages are
        iterated exactly once, so lazy streams are fine.
        """
        accepted: List[InferenceResult] = []
        process = self.process_message
        for message in messages:
            result = process(message)
            if result is not None:
                accepted.append(result)
        return accepted

    def process_stream(
        self, messages: Iterable[BGPMessage]
    ) -> List[InferenceResult]:
        """Feed a whole stream; returns every accepted inference."""
        return self.process_batch(messages)

    def process_columnar_run(self, run) -> List[InferenceResult]:
        """Feed a same-peer columnar run straight from its columns.

        The column-native twin of :meth:`process_batch` over the run's
        materialised messages: identical :class:`InferenceResult` sequences,
        identical burst-boundary semantics (late-withdrawal buffering, "end"
        events, quiet-state flush), but no :class:`~repro.bgp.messages.Update`
        — nor any per-message tuple — is ever constructed.  Three layers make
        that possible:

        * the detector pre-scans the run
          (:meth:`~repro.core.burst_detection.BurstDetector.observe_run`) and
          reports every burst transition with its row index, so the engine
          walks the run as homogeneous *spans* between transitions;
        * quiet spans age the withdrawal buffer and patch the RIB view / the
          persistent index from the announcement columns (interned objects,
          shared with the index);
        * burst spans are recorded in bulk
          (:meth:`~repro.core.fit_score.FitScoreCalculator.record_run`), with
          the triggering thresholds located by bisect over the cumulative
          withdrawal-bound column — the engine only stops at rows where the
          per-message path would actually have run an inference.

        ``run`` is duck-typed (``trace``/``start``/``stop``, the interface
        documented in :mod:`repro.traces.columnar`).  Returns every accepted
        inference, like :meth:`process_batch`.

        One caveat on the pre-scan: a listener fired *mid-run* observes
        detector state (``state``, ``current_burst_start``, the ``events``
        log) already advanced to the end of the run, not to the accepting
        row as under per-message replay.  Engine state and every emitted
        result are unaffected, and at run boundaries the detector state is
        identical; listeners needing at-inference detector snapshots should
        feed the engine per message (or split runs at the granularity they
        care about).
        """
        accepted: List[InferenceResult] = []
        position = run.start
        stop = run.stop
        for row, event in self.detector.observe_run(run):
            self._columnar_span(run, position, row, accepted)
            self._columnar_event_row(run, row, event, accepted)
            position = row + 1
        self._columnar_span(run, position, stop, accepted)
        return accepted

    def apply_rib_delta(
        self, delta: Mapping[Prefix, Optional[ASPath]]
    ) -> None:
        """Patch the engine's RIB view from out-of-band route changes.

        Used by :meth:`repro.core.swifted_router.SwiftedRouter.provision` to
        keep a long-lived engine in sync with Adj-RIB-In mutations that did
        not flow through :meth:`process_message` (e.g. initial table loads):
        ``path=None`` removes the prefix, anything else (re)installs it.  The
        persistent index absorbs each entry in O(path length) — no rebuild.
        Re-provisioning is a quiet-time operation; applying a delta while a
        burst is being tracked would bypass the burst-local overlay.
        """
        rib = self._rib
        index = self._index
        for prefix, path in delta.items():
            if path is None:
                rib.pop(prefix, None)
                index.remove_prefix(prefix)
            else:
                rib[prefix] = path
                index.set_path(prefix, path)

    def flush_quiet_state(self) -> None:
        """Fold buffered quiet-time withdrawals into the RIB view.

        Outside a burst, withdrawals sit in a detection-window buffer for up
        to ``window_seconds`` before they age out of the engine's RIB view.
        Re-provisioning treats them as settled churn immediately — exactly
        the state a from-scratch rebuild from the Adj-RIB-In would observe —
        so a kept-alive engine stays interchangeable with a rebuilt one.
        No-op while a burst is being tracked.
        """
        if self._in_burst:
            return
        while self._recent_withdrawals:
            _, prefix = self._recent_withdrawals.popleft()
            self._rib.pop(prefix, None)
            self._index.remove_prefix(prefix)

    def force_inference(self, timestamp: float) -> Optional[InferenceResult]:
        """Run an inference immediately, bypassing the triggering schedule.

        Used by the evaluation to score the algorithm at arbitrary points
        (e.g. "after 200 withdrawals", §6.2.2) and at the end of a burst.
        Returns ``None`` when no burst is being tracked.
        """
        if not self._in_burst:
            return None
        return self._run_inference(timestamp, accept_always=True)

    # -- state ------------------------------------------------------------------

    @property
    def _in_burst(self) -> bool:
        return self._calculator is not None

    @property
    def accepted_inference(self) -> Optional[InferenceResult]:
        """The first accepted inference of the current/most recent burst."""
        return self._accepted_result

    @property
    def withdrawals_in_current_burst(self) -> int:
        """Withdrawals counted since the current burst started."""
        return self._withdrawals_in_burst

    def current_rib(self) -> Dict[Prefix, ASPath]:
        """The engine's view of the session RIB (pre-burst + later updates)."""
        return dict(self._rib)

    @property
    def index(self) -> LinkPrefixIndex:
        """The persistent link/prefix index maintained by this engine."""
        return self._index

    # -- internals ----------------------------------------------------------------

    def _expire_recent(self, now: float) -> None:
        """Drop buffered withdrawals older than the detection window.

        Once a buffered withdrawal has aged out without a burst starting it is
        treated as ordinary churn: the prefix is also removed from the
        engine's RIB view and index so future bursts start from an accurate
        snapshot.
        """
        horizon = now - self.config.detector.window_seconds
        while self._recent_withdrawals and self._recent_withdrawals[0][0] < horizon:
            _, prefix = self._recent_withdrawals.popleft()
            self._rib.pop(prefix, None)
            self._index.remove_prefix(prefix)

    # -- columnar internals -------------------------------------------------

    def _fold_announcements(
        self, trace, a_low: int, a_high: int, calculator=None, record: bool = True
    ) -> None:
        """Fold [a_low, a_high) of the announcement columns into the RIB view.

        The one decode-and-fold loop every columnar span shares (the per-row
        quiet loop keeps its own inlined copy for speed): each announcement's
        interned (prefix, AS path) pair lands in the engine RIB, the
        persistent index is patched — directly, or through ``calculator``'s
        :meth:`~repro.core.fit_score.FitScoreCalculator.record_update` when
        one is given (in-burst, where the implicit-withdrawal bookkeeping
        must run first and a calculator sharing the index patches it itself).
        ``record=False`` is the post-:meth:`_record_span` mode: the
        calculator already recorded the window, so only the RIB mirror (and
        the index, for a non-sharing calculator) remains.
        """
        if a_high <= a_low:
            return
        pool = trace.pool
        prefix_at = pool.prefix_at
        path_at = pool.path_at
        attr_path = pool.attr_path
        ann_prefix = trace.ann_prefix
        ann_attr = trace.ann_attr
        rib = self._rib
        set_path = (
            None
            if calculator is not None and self._calculator_shares_index
            else self._index.set_path
        )
        for index in range(a_low, a_high):
            prefix = prefix_at(ann_prefix[index])
            path = path_at(attr_path[ann_attr[index]])
            if calculator is not None and record:
                calculator.record_update(prefix, path)
            if set_path is not None:
                set_path(prefix, path)
            rib[prefix] = path

    def _columnar_span(
        self, run, lo: int, hi: int, accepted: List[InferenceResult]
    ) -> None:
        """Process rows [lo, hi) of ``run``, none of which transitions."""
        if hi <= lo:
            return
        if self._in_burst:
            self._burst_span(run, lo, hi, accepted)
        else:
            self._quiet_span(run, lo, hi)

    def _quiet_span(self, run, lo: int, hi: int) -> None:
        """Quiet-mode rows: buffer withdrawals, track announcements, age.

        Mirrors the quiet branches of :meth:`process_message` row by row;
        withdrawal-free spans over an empty buffer collapse into one pass
        over the announcement columns (buffer aging is a no-op and row
        boundaries only matter to it).
        """
        trace = run.trace
        wd_end = trace.wd_end
        ann_end = trace.ann_end
        w = wd_end[lo - 1] if lo else 0
        a = ann_end[lo - 1] if lo else 0
        if not self._recent_withdrawals and wd_end[hi - 1] == w:
            self._fold_announcements(trace, a, ann_end[hi - 1])
            return
        pool = trace.pool
        prefix_at = pool.prefix_at
        path_at = pool.path_at
        attr_path = pool.attr_path
        ann_prefix = trace.ann_prefix
        ann_attr = trace.ann_attr
        rib = self._rib
        set_path = self._index.set_path
        kinds = trace.msg_kind
        times = trace.msg_time
        wd_prefix = trace.wd_prefix
        buffered = self._recent_withdrawals
        buffered_pop = buffered.popleft
        buffered_append = buffered.append
        rib_pop = rib.pop
        remove_prefix = self._index.remove_prefix
        window_seconds = self.config.detector.window_seconds
        last_wd = wd_end[hi - 1]
        kernel = self._kernel
        if kernel.VECTORISED:
            # Sparse walk: one kernel pass locates the rows carrying
            # prefixes (the only rows with per-row work); intermediate
            # UPDATE rows only age the buffer, and expiry is monotone in
            # the timestamp, so deferring it to the next event row — and,
            # for trailing rows, to the span's last UPDATE row — leaves
            # identical buffer / RIB / index state at every point the
            # per-row loop could observe it.
            for row in kernel.event_rows(kinds, wd_end, ann_end, lo, hi):
                timestamp = times[row]
                if buffered:
                    horizon = timestamp - window_seconds
                    while buffered and buffered[0][0] < horizon:
                        _, prefix = buffered_pop()
                        rib_pop(prefix, None)
                        remove_prefix(prefix)
                w_high = wd_end[row]
                a_high = ann_end[row]
                while w < w_high:
                    buffered_append((timestamp, prefix_at(wd_prefix[w])))
                    w += 1
                while a < a_high:
                    prefix = prefix_at(ann_prefix[a])
                    path = path_at(attr_path[ann_attr[a]])
                    set_path(prefix, path)
                    rib[prefix] = path
                    a += 1
            if buffered:
                last = kernel.last_update_row(kinds, lo, hi)
                if last is not None:
                    horizon = times[last] - window_seconds
                    while buffered and buffered[0][0] < horizon:
                        _, prefix = buffered_pop()
                        rib_pop(prefix, None)
                        remove_prefix(prefix)
            return
        for row in range(lo, hi):
            w_high = wd_end[row]
            a_high = ann_end[row]
            if kinds[row] != 0:
                w = w_high
                a = a_high
                continue
            timestamp = times[row]
            if buffered:
                # Inlined _expire_recent: the buffer ages on every quiet
                # UPDATE timestamp, expired prefixes leave the RIB view.
                horizon = timestamp - window_seconds
                while buffered and buffered[0][0] < horizon:
                    _, prefix = buffered_pop()
                    rib_pop(prefix, None)
                    remove_prefix(prefix)
            elif w == last_wd:
                # Buffer drained and no withdrawals left in the span: the
                # remaining rows are pure announcement traffic — fold them
                # in one pass over the announcement columns.
                self._fold_announcements(trace, a, ann_end[hi - 1])
                return
            while w < w_high:
                buffered_append((timestamp, prefix_at(wd_prefix[w])))
                w += 1
            while a < a_high:
                prefix = prefix_at(ann_prefix[a])
                path = path_at(attr_path[ann_attr[a]])
                set_path(prefix, path)
                rib[prefix] = path
                a += 1

    def _burst_span(
        self, run, lo: int, hi: int, accepted: List[InferenceResult]
    ) -> None:
        """In-burst rows: bulk-record between triggering thresholds.

        The per-message path runs :meth:`_maybe_infer` after every
        withdrawal-bearing message, but the call is a no-op until the burst
        counter reaches the next trigger — and the counter's trajectory is
        pure column arithmetic (``wd_end`` deltas).  So the span is recorded
        in slices: bisect the cumulative bound column for the row where the
        counter crosses the trigger, bulk-record up to and including it, run
        the inference there, repeat.  Once an inference is accepted (or the
        schedule is exhausted) the rest of the span records in one call.
        """
        trace = run.trace
        pool = trace.pool
        wd_end = trace.wd_end
        ann_end = trace.ann_end
        times = trace.msg_time
        kernel = self._kernel
        position = lo
        while position < hi:
            if self._accepted_result is not None or self._next_trigger is None:
                self._withdrawals_in_burst += self._record_span(run, position, hi)
                return
            base = wd_end[position - 1] if position else 0
            needed = self._next_trigger - self._withdrawals_in_burst
            if needed > 0:
                row = kernel.find_crossing(wd_end, base + needed, position, hi)
            else:
                # Defensive: the schedule guarantees needed > 0 after every
                # inference, but an externally mutated trigger still stops
                # at the next withdrawal-bearing row, as per-message would.
                row = kernel.next_positive_row(wd_end, base, position, hi)
            if row >= hi:
                self._withdrawals_in_burst += self._record_span(run, position, hi)
                return
            # The trigger row itself replays the per-message order exactly:
            # its withdrawals are recorded, the inference runs, and only
            # then its announcements land — process_message applies a
            # message's announcements *after* the withdrawal branch's
            # trigger check, and an announcement clearing a withdrawal on
            # the trigger row must not be visible to the inference.
            self._withdrawals_in_burst += self._record_span(run, position, row)
            w_low = wd_end[row - 1] if row else 0
            record_rows = getattr(self._calculator, "record_withdrawal_rows", None)
            if record_rows is not None:
                self._withdrawals_in_burst += record_rows(
                    pool, trace.wd_prefix, w_low, wd_end[row]
                )
            else:
                self._withdrawals_in_burst += self._calculator.record_withdrawals(
                    pool.prefixes_at(trace.wd_prefix[w_low : wd_end[row]])
                )
            result = self._maybe_infer(times[row])
            if result is not None:
                accepted.append(result)
            self._fold_announcements(
                trace,
                ann_end[row - 1] if row else 0,
                ann_end[row],
                calculator=self._calculator,
            )
            position = row + 1

    def _record_span(self, run, lo: int, hi: int) -> int:
        """Record rows [lo, hi) into the burst calculator; mirror the RIB.

        Returns the withdrawal entries processed (the burst-counter
        increment).  The calculator handles its own withdrawal/announcement
        interleaving (:meth:`~repro.core.fit_score.FitScoreCalculator.record_run`);
        the engine then folds the span's announcements into its RIB view —
        and into the persistent index when the calculator does not share it
        — exactly as the announcement branch of :meth:`process_message` does.
        """
        if hi <= lo:
            return 0
        processed = self._calculator.record_run(run, lo, hi)
        # Folding after the bulk record is equivalent to interleaving: the
        # maps are last-wins per prefix and nothing reads them mid-span.
        trace = run.trace
        ann_end = trace.ann_end
        self._fold_announcements(
            trace,
            ann_end[lo - 1] if lo else 0,
            ann_end[hi - 1],
            calculator=self._calculator,
            record=False,
        )
        return processed

    def _columnar_event_row(
        self, run, row: int, event, accepted: List[InferenceResult]
    ) -> None:
        """Process the one row where the detector reported a transition.

        Replays the corresponding branch of :meth:`process_message`: a
        "start" row ages the quiet buffer, opens the burst (replaying the
        buffer), records its own withdrawals and runs the first trigger
        check; an "end" row tears the burst down and attributes its own
        withdrawals to quiet time.  Announcements on the row land wherever
        the new mode puts them.
        """
        trace = run.trace
        prefix_at = trace.pool.prefix_at
        wd_end = trace.wd_end
        ann_end = trace.ann_end
        timestamp = trace.msg_time[row]
        w_low = wd_end[row - 1] if row else 0
        w_high = wd_end[row]
        a_low = ann_end[row - 1] if row else 0
        a_high = ann_end[row]
        if not self._in_burst:
            self._expire_recent(timestamp)
        if event.kind == "start":
            self._start_burst(event.timestamp)
            if w_high > w_low:
                record_rows = getattr(
                    self._calculator, "record_withdrawal_rows", None
                )
                if record_rows is not None:
                    self._withdrawals_in_burst += record_rows(
                        trace.pool, trace.wd_prefix, w_low, w_high
                    )
                else:
                    self._withdrawals_in_burst += self._calculator.record_withdrawals(
                        trace.pool.prefixes_at(trace.wd_prefix[w_low:w_high])
                    )
                result = self._maybe_infer(timestamp)
                if result is not None:
                    accepted.append(result)
            self._fold_announcements(
                trace, a_low, a_high, calculator=self._calculator
            )
        else:
            self._end_burst(event.timestamp)
            buffered = self._recent_withdrawals
            wd_prefix = trace.wd_prefix
            for index in range(w_low, w_high):
                buffered.append((timestamp, prefix_at(wd_prefix[index])))
            self._fold_announcements(trace, a_low, a_high)

    def _start_burst(self, timestamp: float) -> None:
        if self._calculator_factory is not None:
            self._calculator = self._calculator_factory(self._rib)
            self._calculator_shares_index = (
                getattr(self._calculator, "index", None) is self._index
            )
        else:
            # O(1): overlay the live index instead of rescanning the RIB.
            self._calculator = FitScoreCalculator.from_index(
                self._index, config=self.config.fit_score, kernel=self._kernel
            )
            self._calculator_shares_index = True
        self._burst_start = (
            self._recent_withdrawals[0][0] if self._recent_withdrawals else timestamp
        )
        self._withdrawals_in_burst = 0
        self._next_trigger = self.config.schedule.first_trigger
        self._accepted_result = None
        # Replay the withdrawals of the detection window: they are part of the
        # burst even though they arrived before the detector fired.
        if self._recent_withdrawals:
            replay = [prefix for _, prefix in self._recent_withdrawals]
            self._recent_withdrawals.clear()
            self._withdrawals_in_burst += self._calculator.record_withdrawals(replay)

    def _end_burst(self, timestamp: float) -> None:
        if self.history is not None and self._withdrawals_in_burst > 0:
            self.history.record_burst(self._withdrawals_in_burst)
        self._calculator = None
        self._calculator_shares_index = False
        self._burst_start = None
        self._withdrawals_in_burst = 0
        self._next_trigger = self.config.schedule.first_trigger
        self._recent_withdrawals.clear()

    def _maybe_infer(self, timestamp: float) -> Optional[InferenceResult]:
        if self._accepted_result is not None:
            return None
        if self._next_trigger is None:
            return None
        if self._withdrawals_in_burst < self._next_trigger:
            return None
        result = self._run_inference(timestamp, accept_always=False)
        if result is not None and result.accepted:
            return result
        self._next_trigger = self.config.schedule.next_trigger_after(
            self._withdrawals_in_burst
        )
        return None

    def _run_inference(
        self, timestamp: float, accept_always: bool
    ) -> Optional[InferenceResult]:
        assert self._calculator is not None and self._burst_start is not None
        calculator = self._calculator
        scores = calculator.all_scores()
        if not scores:
            return None

        inferred_links, best_scores = self._aggregate(calculator, scores)
        predicted = calculator.prefixes_via_links(inferred_links)
        withdrawn_within = getattr(calculator, "withdrawn_within", None)
        already_withdrawn = (
            withdrawn_within(predicted)
            if withdrawn_within is not None
            else calculator.withdrawn_prefixes & predicted
        )
        prediction = PrefixPrediction(
            predicted_prefixes=predicted,
            already_withdrawn=already_withdrawn,
        )

        accepted = accept_always or self._accept(prediction)
        result = InferenceResult(
            timestamp=timestamp,
            withdrawals_seen=self._withdrawals_in_burst,
            inferred_links=tuple(sorted(inferred_links)),
            scores=tuple(best_scores),
            prediction=prediction,
            accepted=accepted,
            burst_start=self._burst_start,
        )
        self.results.append(result)
        if accepted and self._accepted_result is None:
            self._accepted_result = result
            for listener in self._listeners:
                listener(result)
        return result

    def _accept(self, prediction: PrefixPrediction) -> bool:
        received = self._withdrawals_in_burst
        predicted = prediction.size
        if not self.config.schedule.accepts(received, predicted):
            return False
        if self.config.use_history and self.history is not None and len(self.history):
            # The schedule already encodes coarse plausibility; the history
            # adds a session-specific check for outlandish predictions.
            if predicted > received and not self.history.is_plausible(predicted):
                return False
        return True

    def _aggregate(
        self, calculator: FitScoreCalculator, scores: Sequence[LinkScore]
    ) -> Tuple[List[Link], List[LinkScore]]:
        """Greedy aggregation of links sharing an endpoint (§4.2).

        Starting from the best-scoring link, links are merged (best first) as
        long as they share a common endpoint with the current aggregate and
        the aggregate fit score *strictly increases* ("until the FS for all
        the aggregated links does not increase anymore", §4.2).  All
        candidates (single links or aggregates) whose score ties with the
        maximum are returned.

        The aggregate is scored incrementally: the per-link W/P counts are
        already on each candidate's :class:`LinkScore`, so each trial adds
        them to running sums instead of re-summing the whole set via
        :meth:`FitScoreCalculator.score_set` — O(1) per considered link
        instead of O(aggregate size) (ROADMAP perf idea #5).  The arithmetic
        is identical to :meth:`score_set` on distinct canonical links.
        """
        best_single = scores[0]
        tolerance = self.config.score_tolerance
        # Calculators without the incremental hook (e.g. the retained seed
        # reference implementation) fall back to the full re-summation.
        score_from_counts = getattr(calculator, "score_from_counts", None)

        aggregate_links: List[Link] = [best_single.links[0]]
        aggregate_score = best_single
        aggregate_withdrawn = best_single.withdrawn_count
        aggregate_routed = best_single.still_routed_count
        common_endpoints: Set[int] = set(best_single.links[0])
        rounds = 0
        for candidate in scores[1:]:
            if rounds >= self.config.max_aggregation_rounds:
                break
            link = candidate.links[0]
            shared = common_endpoints & set(link)
            if not shared:
                continue
            trial_links = aggregate_links + [link]
            if score_from_counts is not None:
                trial_score = score_from_counts(
                    trial_links,
                    aggregate_withdrawn + candidate.withdrawn_count,
                    aggregate_routed + candidate.still_routed_count,
                )
            else:
                trial_score = calculator.score_set(trial_links)
            if trial_score.fit_score > aggregate_score.fit_score + tolerance:
                aggregate_links = trial_links
                aggregate_score = trial_score
                aggregate_withdrawn = trial_score.withdrawn_count
                aggregate_routed = trial_score.still_routed_count
                common_endpoints = shared
                rounds += 1

        # Conservative tie handling: return every single link whose fit score
        # ties with the best observed score.
        best_value = max(aggregate_score.fit_score, best_single.fit_score)
        tied = [
            score.links[0]
            for score in scores
            if score.fit_score + tolerance >= best_value
        ]
        inferred: List[Link] = list(dict.fromkeys(aggregate_links + tied))
        reported: List[LinkScore] = [aggregate_score] if len(aggregate_links) > 1 else []
        reported.extend(
            score for score in scores if score.links[0] in set(inferred)
        )
        return inferred, reported
