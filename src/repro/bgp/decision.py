"""The BGP decision process.

Implements the standard best-path selection steps a router applies to the
candidate routes for a prefix (RFC 4271 §9.1, simplified to the attributes we
model):

1. highest LOCAL_PREF,
2. shortest AS path,
3. lowest ORIGIN,
4. lowest MED (compared across all candidates, i.e. "always-compare-med"),
5. lowest peer AS number (deterministic tie break standing in for lowest
   router-id).

The process is pluggable so the AS-level propagation simulator can substitute
Gao–Rexford preference (customer > peer > provider) for step 1, as real
operators do via LOCAL_PREF assignment.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.bgp.rib import RibEntry

__all__ = ["DecisionProcess", "default_decision_process", "gao_rexford_ranking"]


# A ranking function maps a candidate to a sortable key; *smaller is better*.
RankingFunction = Callable[[RibEntry], Tuple]


class DecisionProcess:
    """Selects the best route among candidates using a ranking function.

    Parameters
    ----------
    ranking:
        Callable mapping a :class:`RibEntry` to a tuple; the candidate with
        the smallest tuple wins.  Defaults to the standard BGP ranking.
    prefix_independent:
        Declares that the ranking depends only on the candidate's path
        attributes and peer AS — true for every standard BGP step (and for
        Gao–Rexford preference), and the property that lets the batched
        speaker path run one selection per *distinct candidate profile*
        instead of one per prefix.  Set to ``False`` for exotic rankings
        that read ``entry.prefix`` or ``entry.learned_at``; the batched
        path then falls back to per-prefix selection.
    """

    def __init__(
        self,
        ranking: Optional[RankingFunction] = None,
        prefix_independent: bool = True,
    ) -> None:
        self._ranking = ranking or standard_ranking
        self.prefix_independent = prefix_independent

    def select(self, candidates: Iterable[RibEntry]) -> Optional[RibEntry]:
        """Return the preferred candidate, or ``None`` if there are none.

        Candidates whose AS path contains a loop are discarded, matching the
        loop-prevention rule of eBGP.
        """
        valid = [entry for entry in candidates if not entry.as_path.has_loop()]
        if not valid:
            return None
        return min(valid, key=self._ranking)

    def rank(self, candidates: Iterable[RibEntry]) -> List[RibEntry]:
        """Return all loop-free candidates sorted from most to least preferred."""
        valid = [entry for entry in candidates if not entry.as_path.has_loop()]
        return sorted(valid, key=self._ranking)


def standard_ranking(entry: RibEntry) -> Tuple:
    """The default BGP ranking key (smaller tuple = more preferred)."""
    return (
        -entry.attributes.local_pref,
        len(entry.as_path),
        int(entry.attributes.origin),
        entry.attributes.med,
        entry.peer_as,
    )


def gao_rexford_ranking(
    relationship_of: Callable[[int], int],
) -> RankingFunction:
    """Build a ranking that prefers customer > peer > provider routes.

    Parameters
    ----------
    relationship_of:
        Callable mapping a peer AS number to a preference class: ``0`` for a
        customer, ``1`` for a peer, ``2`` for a provider.  Routes from lower
        classes are preferred regardless of path length, which is how
        operators implement the economic "prefer revenue-generating routes"
        rule with LOCAL_PREF.
    """

    def ranking(entry: RibEntry) -> Tuple:
        return (
            relationship_of(entry.peer_as),
            -entry.attributes.local_pref,
            len(entry.as_path),
            int(entry.attributes.origin),
            entry.attributes.med,
            entry.peer_as,
        )

    return ranking


def default_decision_process() -> DecisionProcess:
    """Return a decision process using the standard BGP ranking."""
    return DecisionProcess(standard_ranking)
