"""A minimal multi-session BGP speaker.

The :class:`BGPSpeaker` glues sessions, the decision process and the Loc-RIB
together: it accepts messages from any of its peering sessions, re-runs best
path selection for the touched prefixes, and reports best-route changes.
The case-study "vanilla router" (§2.1.2 / §7) builds on this speaker, adding
a timing model for FIB installation; the SWIFTED router wraps the same
speaker with the SWIFT engine.

Replay workloads should prefer the batched path: :meth:`BGPSpeaker.receive_batch`
applies every Adj-RIB-In / Loc-RIB candidate change of a batch first and then
runs the decision process **once per touched prefix** instead of once per
message — and, because the standard ranking depends only on a candidate's
attributes and peer AS, once per *distinct candidate profile* when prefixes
share their candidate sets (as table dumps and failure bursts overwhelmingly
do).  The batched path matches per-message :meth:`BGPSpeaker.receive` in the
final Loc-RIB and in the multiset of loss-of-reachability / recovery events:
candidate-set emptiness is tracked at message boundaries, so a prefix that
transiently loses every route mid-batch still reports its blackhole (and the
subsequent recovery), without forcing a per-message decision pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bgp.decision import DecisionProcess, default_decision_process
from repro.bgp.messages import BGPMessage, Update
from repro.bgp.prefix import Prefix
from repro.bgp.rib import LocRib, RibEntry, RouteChange, RouteChangeKind
from repro.bgp.session import PeeringSession

__all__ = ["BGPSpeaker", "BestRouteChange", "SpeakerBatch"]

#: Module-level so the batched re-selection builds its profile keys with
#: C-level ``map`` calls instead of a Python-level lambda per candidate.
_attrgetter_attributes = attrgetter("attributes")


@dataclass(frozen=True)
class BestRouteChange:
    """A change of the best route for a prefix after processing messages."""

    prefix: Prefix
    old: Optional[RibEntry]
    new: Optional[RibEntry]

    @property
    def is_loss_of_reachability(self) -> bool:
        """True when the prefix went from routed to unrouted."""
        return self.old is not None and self.new is None

    @property
    def is_recovery(self) -> bool:
        """True when the prefix went from unrouted to routed."""
        return self.old is None and self.new is not None

    @property
    def next_hop_changed(self) -> bool:
        """True when both routes exist but point at different next hops."""
        return (
            self.old is not None
            and self.new is not None
            and self.old.next_hop != self.new.next_hop
        )


class BGPSpeaker:
    """A border router speaking eBGP over several peering sessions.

    Parameters
    ----------
    local_as:
        The router's AS number.
    decision_process:
        Best-path selection logic; defaults to the standard BGP ranking.
    """

    def __init__(
        self,
        local_as: int,
        decision_process: Optional[DecisionProcess] = None,
    ) -> None:
        self.local_as = local_as
        self.decision_process = decision_process or default_decision_process()
        self.loc_rib = LocRib()
        self._sessions: Dict[int, PeeringSession] = {}
        self._best_route_listeners: List[Callable[[List[BestRouteChange]], None]] = []
        # Per-prefix memo of the decision process's full candidate ranking,
        # invalidated whenever the prefix's candidate set changes.  Serves
        # both the per-message re-selection (the ranked head is the best
        # route) and alternate_routes(), whose per-prefix sorts dominate
        # cold backup computation.
        self._ranked_cache: Dict[Prefix, List[RibEntry]] = {}

    # -- session management -----------------------------------------------

    def add_peer(self, peer_as: int, name: Optional[str] = None) -> PeeringSession:
        """Create (and establish) a session with ``peer_as``."""
        if peer_as in self._sessions:
            raise ValueError(f"session with AS {peer_as} already exists")
        session = PeeringSession(self.local_as, peer_as, name=name)
        session.establish()
        self._sessions[peer_as] = session
        return session

    def remove_peer(self, peer_as: int) -> List[BestRouteChange]:
        """Tear down the session with ``peer_as`` and withdraw its routes."""
        session = self._sessions.pop(peer_as, None)
        if session is None:
            raise KeyError(peer_as)
        affected = list(session.rib_in.prefixes())
        session.close()
        for prefix in affected:
            self.loc_rib.remove_candidate(prefix, peer_as)
            self._ranked_cache.pop(prefix, None)
        return self._reselect(affected)

    def session(self, peer_as: int) -> PeeringSession:
        """Return the session with ``peer_as`` (KeyError if unknown)."""
        return self._sessions[peer_as]

    def sessions(self) -> List[PeeringSession]:
        """All sessions, in insertion order."""
        return list(self._sessions.values())

    @property
    def peer_ases(self) -> List[int]:
        """AS numbers of all configured peers."""
        return list(self._sessions)

    def add_best_route_listener(
        self, callback: Callable[[List[BestRouteChange]], None]
    ) -> None:
        """Register a callback invoked with the best-route changes of each batch."""
        self._best_route_listeners.append(callback)

    # -- message handling -------------------------------------------------

    def receive(self, message: BGPMessage) -> List[BestRouteChange]:
        """Process one message from the peer it names and update best routes."""
        session = self._sessions.get(message.peer_as)
        if session is None:
            raise KeyError(f"no session with AS {message.peer_as}")
        changes = session.process(message)
        touched: List[Prefix] = []
        ranked_cache_pop = self._ranked_cache.pop
        for change in changes:
            if change.kind == RouteChangeKind.UNCHANGED:
                continue
            touched.append(change.prefix)
            ranked_cache_pop(change.prefix, None)
            if change.new is not None:
                self.loc_rib.set_candidate(change.new)
            else:
                self.loc_rib.remove_candidate(change.prefix, message.peer_as)
        best_changes = self._reselect(touched)
        if best_changes:
            for listener in self._best_route_listeners:
                listener(best_changes)
        return best_changes

    def receive_batch(self, messages: Iterable[BGPMessage]) -> List[BestRouteChange]:
        """Process a batch of messages, running best-path selection per prefix.

        All Adj-RIB-In and Loc-RIB candidate changes are applied first (in
        bulk per consecutive same-peer run); the decision process then runs
        once per *touched prefix* — grouped by candidate profile when the
        ranking allows it — rather than once per message, which is the
        difference between O(messages x touched) and O(touched) selection
        work on withdrawal bursts and path-exploration storms.  The
        best-route listeners fire once with the coalesced change list.

        Matches calling :meth:`receive` per message in the final Loc-RIB and
        in the multiset of loss-of-reachability / recovery events (transient
        blackholes are synthesised from candidate-set transitions tracked at
        message boundaries).  Intermediate next-hop flaps within a batch are
        coalesced away.  Messages are iterated exactly once (lazy streams
        are fine).
        """
        batch = self.begin_batch()
        run: List[BGPMessage] = []
        run_peer: Optional[int] = None
        for message in messages:
            if message.peer_as != run_peer:
                if run:
                    batch.add_run(run_peer, run)
                    run = []
                run_peer = message.peer_as
            run.append(message)
        if run:
            batch.add_run(run_peer, run)
        return batch.commit()

    def begin_batch(self) -> "SpeakerBatch":
        """Start an explicit batch; see :class:`SpeakerBatch`.

        Useful when the caller interleaves speaker updates with other
        per-message work (e.g. the SWIFTED router feeding inference engines)
        and wants a single decision pass at the end.
        """
        return SpeakerBatch(self)

    def receive_all(self, messages: Iterable[BGPMessage]) -> List[BestRouteChange]:
        """Process a stream of messages with batched (coalesced) semantics.

        Delegates to :meth:`receive_batch`: the final Loc-RIB and the
        loss-of-reachability / recovery events match per-message replay, but
        intermediate next-hop flaps inside the stream are merged into one
        ``pre-batch -> final`` change per prefix.  Callers that need every
        intermediate change must call :meth:`receive` per message.
        """
        return self.receive_batch(messages)

    def receive_columnar(self, source, kernel=None) -> List[BestRouteChange]:
        """Process a columnar trace (or an iterable of columnar runs).

        The preferred replay entry point for array-backed traces: each
        same-peer run is applied straight from its columns
        (:meth:`~repro.bgp.session.PeeringSession.process_columnar_run`),
        skipping per-message object construction entirely when the sessions
        have no observers and stream recording is off.  Semantics match
        :meth:`receive_batch` over the materialised message stream exactly
        (same final Loc-RIB, same loss-of-reachability / recovery multiset).

        ``source`` is either an object exposing ``iter_batches()`` (a
        :class:`~repro.traces.columnar.ColumnarTrace`) or an iterable of
        :class:`~repro.traces.columnar.ColumnarRun` views.  ``kernel``
        selects the column-kernel backend (:mod:`repro.core.kernels`) for
        run segmentation and the session-level column walks; ``None``
        auto-selects.
        """
        if kernel is None:
            from repro.core import kernels

            kernel = kernels.default_backend()
        iter_batches = getattr(source, "iter_batches", None)
        runs = iter_batches(kernel=kernel) if iter_batches is not None else source
        batch = self.begin_batch()
        for run in runs:
            batch.add_columnar_run(run, kernel=kernel)
        return batch.commit()

    # -- queries ----------------------------------------------------------

    def best_route(self, prefix: Prefix) -> Optional[RibEntry]:
        """The current best route for ``prefix``, or ``None``."""
        return self.loc_rib.best(prefix)

    def alternate_routes(self, prefix: Prefix) -> List[RibEntry]:
        """Candidate routes other than the current best, most preferred first."""
        best = self.loc_rib.best(prefix)
        if best is None:
            return list(self._ranked(prefix))
        best_peer = best.peer_as
        return [entry for entry in self._ranked(prefix) if entry.peer_as != best_peer]

    def routed_prefixes(self) -> frozenset:
        """Prefixes that currently have a best route."""
        return frozenset(self.loc_rib.prefixes())

    def lpm_route(self, address: int) -> Optional[RibEntry]:
        """Longest-prefix-match best route for a destination address.

        Answers through the Loc-RIB's compressed trie view, so a full DFZ
        table resolves a dataplane-style lookup without scanning prefixes.
        """
        return self.loc_rib.best_lookup(address)

    def covered_routed_prefixes(self, prefix: Prefix) -> List[Prefix]:
        """Routed prefixes equal to or more specific than ``prefix``, sorted."""
        return [covered for covered, _ in self.loc_rib.covered_best(prefix)]

    # -- internals --------------------------------------------------------

    def _ranked(self, prefix: Prefix) -> List[RibEntry]:
        """The full candidate ranking of a prefix, memoised until it changes.

        The head of the list is what ``select()`` would install (both filter
        looped paths and use the same key, so stable ``sorted`` and ``min``
        agree on ties); the tail is the alternate-route order.
        """
        ranked = self._ranked_cache.get(prefix)
        if ranked is None:
            ranked = self._ranked_cache[prefix] = self.decision_process.rank(
                self.loc_rib.candidates(prefix)
            )
        return ranked

    def _reselect(self, prefixes: Sequence[Prefix]) -> List[BestRouteChange]:
        changes: List[BestRouteChange] = []
        ranked_of = self._ranked
        for prefix in prefixes:
            old = self.loc_rib.best(prefix)
            ranked = ranked_of(prefix)
            new = ranked[0] if ranked else None
            if old is new:
                continue
            if old is not None and new is not None and old == new:
                continue
            self.loc_rib.set_best(new, prefix=prefix)
            changes.append(BestRouteChange(prefix=prefix, old=old, new=new))
        return changes

    def _reselect_batch(self, prefixes: Sequence[Prefix]) -> List[BestRouteChange]:
        """Batched re-selection, grouped by candidate profile.

        Two prefixes whose candidate sets consist of the *same attribute
        objects from the same peers* (the common case for table loads and
        failure bursts, where whole path-sharing prefix groups change
        together) rank identically under a prefix-independent decision
        process, so the winner peer is computed once per distinct profile
        and reused for every member prefix.  Falls back to per-prefix
        :meth:`_reselect` for rankings that are not prefix-independent.
        """
        if not self.decision_process.prefix_independent:
            return self._reselect(prefixes)
        candidates_of = self.loc_rib._candidates
        select = self.decision_process.select
        set_best = self.loc_rib.set_best
        best_of = self.loc_rib.best
        attributes_of = _attrgetter_attributes
        # Profile key: the candidate peers (in insertion order — identical
        # for prefixes with the same announcement history, which is what
        # groups share anyway) plus the identity of each candidate's
        # attribute object.  Built with C-level tuple/map to keep the
        # per-prefix cost below a single ranking evaluation.
        groups: Dict[Tuple, List[Prefix]] = {}
        for prefix in prefixes:
            peers = candidates_of.get(prefix)
            if peers:
                key = (tuple(peers), tuple(map(id, map(attributes_of, peers.values()))))
            else:
                key = ()
            group = groups.get(key)
            if group is None:
                groups[key] = [prefix]
            else:
                group.append(prefix)
        changes: List[BestRouteChange] = []
        for key, members in groups.items():
            if key:
                winner = select(list(candidates_of[members[0]].values()))
                winner_peer = None if winner is None else winner.peer_as
            else:
                winner_peer = None
            for prefix in members:
                old = best_of(prefix)
                new = (
                    candidates_of[prefix][winner_peer]
                    if winner_peer is not None
                    else None
                )
                if old is new:
                    continue
                if (
                    old is not None
                    and new is not None
                    and old.peer_as == new.peer_as
                    and old == new
                ):
                    continue
                set_best(new, prefix=prefix)
                changes.append(BestRouteChange(prefix=prefix, old=old, new=new))
        return changes


class SpeakerBatch:
    """An in-progress batch of messages on a :class:`BGPSpeaker`.

    Adj-RIB-In and Loc-RIB *candidate* state is kept current as messages are
    added (it is order-sensitive), but best-path selection is deferred to
    :meth:`commit`, where it runs once per touched prefix — grouped by
    candidate profile when the decision process declares itself
    prefix-independent.  Between those points ``loc_rib.best()``
    intentionally still answers with the pre-batch best route, which is what
    lets the deferred selection reconstruct the same ``old -> new``
    transitions the per-message path would have reported.

    Loss-of-reachability parity with the per-message path is preserved
    without per-message selection: the batch tracks, at message boundaries,
    whether each touched prefix still has a loop-free candidate (the same
    condition under which ``select()`` installs a route), and synthesises
    the loss / recovery events for prefixes that transiently lost every
    usable route mid-batch.
    """

    def __init__(self, speaker: BGPSpeaker) -> None:
        self._speaker = speaker
        # Touched prefixes awaiting re-selection, in first-touch order
        # (matching the per-message emission order).  The value doubles as
        # the candidate-set emptiness tracker: True when the prefix had at
        # least one candidate after the last message that touched it
        # (initialised from the pre-batch best on first touch).
        self._pending: Dict[Prefix, bool] = {}
        # Mid-batch reachability transitions, in observation order:
        # (prefix, went_down, entry) — entry is the candidate removed by a
        # down transition / installed by an up transition.
        self._transitions: List[Tuple[Prefix, bool, Optional[RibEntry]]] = []
        self._committed = False

    def add(self, message: BGPMessage) -> None:
        """Apply one message's RIB changes, deferring best-path selection."""
        self.add_run(message.peer_as, (message,))

    def add_run(
        self, peer_as: Optional[int], messages: Sequence[BGPMessage]
    ) -> None:
        """Apply a consecutive same-peer run of messages in bulk."""
        session = self._session_for(peer_as)
        self._absorb(peer_as, session.process_batch(messages))

    def add_columnar_run(self, run, kernel=None) -> None:
        """Apply a same-peer columnar run (no message objects on the fast path).

        ``run`` is a :class:`~repro.traces.columnar.ColumnarRun` (duck-typed:
        anything carrying ``peer_as`` and accepted by
        :meth:`~repro.bgp.session.PeeringSession.process_columnar_run`).
        Equivalent to ``add_run(run.peer_as, run.materialise())``; ``kernel``
        is forwarded to the session's column walk.
        """
        session = self._session_for(run.peer_as)
        self._absorb(run.peer_as, session.process_columnar_run(run, kernel=kernel))

    def _session_for(self, peer_as: Optional[int]):
        if self._committed:
            raise RuntimeError("batch already committed")
        session = self._speaker._sessions.get(peer_as)
        if session is None:
            raise KeyError(f"no session with AS {peer_as}")
        return session

    def _absorb(
        self, peer_as: Optional[int], per_message_changes: Iterable[List[RouteChange]]
    ) -> None:
        """Fold a run's per-message RIB changes into the batch state."""
        speaker = self._speaker
        loc_rib = speaker.loc_rib
        candidates_of = loc_rib._candidates
        best_of = loc_rib.best
        pending = self._pending
        transitions = self._transitions
        set_candidate = loc_rib.set_candidate
        remove_candidate = loc_rib.remove_candidate
        ranked_cache_pop = speaker._ranked_cache.pop
        unchanged = RouteChangeKind.UNCHANGED

        # Reachability is evaluated at message boundaries, so a
        # withdraw+reannounce inside one UPDATE stays atomic, exactly as in
        # the per-message path.  On a prefix's first touch the pre-message
        # state comes from the (still untouched) best-route table —
        # selection is deferred, so it reflects the pre-batch reachability.
        # "Reachable" means a loop-free candidate exists — matching what
        # select() would install — so a looped announcement neither recovers
        # a prefix nor masks a loss (has_loop() is cached on the path).
        def loop_free_exists(prefix: Prefix) -> bool:
            peers = candidates_of.get(prefix)
            if peers:
                for entry in peers.values():
                    if not entry.attributes.as_path.has_loop():
                        return True
            return False

        for changes in per_message_changes:
            if not changes:
                continue
            if len(changes) == 1:
                change = changes[0]
                if change.kind is unchanged:
                    continue
                prefix = change.prefix
                ranked_cache_pop(prefix, None)
                new = change.new
                before = pending.get(prefix)
                if before is None:
                    before = best_of(prefix) is not None
                if new is not None:
                    set_candidate(new)
                    if not new.attributes.as_path.has_loop():
                        if not before:
                            transitions.append((prefix, False, new))
                        pending[prefix] = True
                    else:
                        # A looped announcement may *replace* the prefix's
                        # only usable candidate: probe instead of assuming
                        # reachability is unchanged.
                        now = loop_free_exists(prefix)
                        if before and not now and change.old is not None:
                            transitions.append((prefix, True, change.old))
                        pending[prefix] = now
                else:
                    remove_candidate(prefix, peer_as)
                    now = loop_free_exists(prefix)
                    if before and not now:
                        transitions.append((prefix, True, change.old))
                    pending[prefix] = now
                continue
            last_change: Dict[Prefix, RouteChange] = {}
            for change in changes:
                if change.kind is unchanged:
                    continue
                prefix = change.prefix
                ranked_cache_pop(prefix, None)
                if change.new is not None:
                    set_candidate(change.new)
                else:
                    remove_candidate(prefix, peer_as)
                if prefix not in pending:
                    pending[prefix] = best_of(prefix) is not None
                last_change[prefix] = change
            for prefix, change in last_change.items():
                # Multi-change messages may mix removals and (possibly
                # looped) announcements of the same prefix, so probe the
                # candidate set directly rather than reasoning from the
                # last change alone.
                before = pending[prefix]
                now = loop_free_exists(prefix)
                if now and not before:
                    entry = change.new
                    if entry is None or entry.attributes.as_path.has_loop():
                        entry = next(
                            candidate
                            for candidate in candidates_of[prefix].values()
                            if not candidate.attributes.as_path.has_loop()
                        )
                    transitions.append((prefix, False, entry))
                elif before and not now:
                    entry = change.old if change.old is not None else best_of(prefix)
                    if entry is not None:
                        transitions.append((prefix, True, entry))
                pending[prefix] = now

    def commit(self) -> List[BestRouteChange]:
        """Run the deferred selection and return the batch's changes.

        The returned list contains the synthesised transient loss / recovery
        events (for prefixes that flapped through unreachability mid-batch)
        followed by the coalesced ``pre-batch -> final`` best-route changes;
        together they carry the same multiset of loss-of-reachability and
        recovery events as the per-message path.  The best-route listeners
        fire once with the combined list.
        """
        if self._committed:
            raise RuntimeError("batch already committed")
        self._committed = True
        speaker = self._speaker
        final_changes = speaker._reselect_batch(list(self._pending))
        changes = self._reconcile_transitions(final_changes)
        changes.extend(final_changes)
        if changes:
            for listener in speaker._best_route_listeners:
                listener(changes)
        return changes

    def _reconcile_transitions(
        self, final_changes: List[BestRouteChange]
    ) -> List[BestRouteChange]:
        """Synthesise the transient events the coalesced changes hide.

        Every tracked down (up) transition corresponds to one per-message
        loss (recovery) event.  The final change of a prefix already reports
        at most one of each — its last down when the prefix ends the batch
        unreachable, its last up when it ends reachable after starting
        unreachable — so those are skipped and every other transition is
        emitted as a synthetic event.
        """
        transitions = self._transitions
        if not transitions:
            return []
        loss_covered = {
            change.prefix for change in final_changes if change.is_loss_of_reachability
        }
        recovery_covered = {
            change.prefix for change in final_changes if change.is_recovery
        }
        last_down: Dict[Prefix, int] = {}
        last_up: Dict[Prefix, int] = {}
        for index, (prefix, went_down, _) in enumerate(transitions):
            if went_down:
                last_down[prefix] = index
            else:
                last_up[prefix] = index
        synthetic: List[BestRouteChange] = []
        for index, (prefix, went_down, entry) in enumerate(transitions):
            if went_down:
                if prefix in loss_covered and last_down[prefix] == index:
                    continue
                synthetic.append(BestRouteChange(prefix=prefix, old=entry, new=None))
            else:
                if prefix in recovery_covered and last_up[prefix] == index:
                    continue
                synthetic.append(BestRouteChange(prefix=prefix, old=None, new=entry))
        return synthetic
