"""A minimal multi-session BGP speaker.

The :class:`BGPSpeaker` glues sessions, the decision process and the Loc-RIB
together: it accepts messages from any of its peering sessions, re-runs best
path selection for the touched prefixes, and reports best-route changes.
The case-study "vanilla router" (§2.1.2 / §7) builds on this speaker, adding
a timing model for FIB installation; the SWIFTED router wraps the same
speaker with the SWIFT engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bgp.decision import DecisionProcess, default_decision_process
from repro.bgp.messages import BGPMessage, Update
from repro.bgp.prefix import Prefix
from repro.bgp.rib import LocRib, RibEntry, RouteChange, RouteChangeKind
from repro.bgp.session import PeeringSession

__all__ = ["BGPSpeaker", "BestRouteChange"]


@dataclass(frozen=True)
class BestRouteChange:
    """A change of the best route for a prefix after processing messages."""

    prefix: Prefix
    old: Optional[RibEntry]
    new: Optional[RibEntry]

    @property
    def is_loss_of_reachability(self) -> bool:
        """True when the prefix went from routed to unrouted."""
        return self.old is not None and self.new is None

    @property
    def is_recovery(self) -> bool:
        """True when the prefix went from unrouted to routed."""
        return self.old is None and self.new is not None

    @property
    def next_hop_changed(self) -> bool:
        """True when both routes exist but point at different next hops."""
        return (
            self.old is not None
            and self.new is not None
            and self.old.next_hop != self.new.next_hop
        )


class BGPSpeaker:
    """A border router speaking eBGP over several peering sessions.

    Parameters
    ----------
    local_as:
        The router's AS number.
    decision_process:
        Best-path selection logic; defaults to the standard BGP ranking.
    """

    def __init__(
        self,
        local_as: int,
        decision_process: Optional[DecisionProcess] = None,
    ) -> None:
        self.local_as = local_as
        self.decision_process = decision_process or default_decision_process()
        self.loc_rib = LocRib()
        self._sessions: Dict[int, PeeringSession] = {}
        self._best_route_listeners: List[Callable[[List[BestRouteChange]], None]] = []

    # -- session management -----------------------------------------------

    def add_peer(self, peer_as: int, name: Optional[str] = None) -> PeeringSession:
        """Create (and establish) a session with ``peer_as``."""
        if peer_as in self._sessions:
            raise ValueError(f"session with AS {peer_as} already exists")
        session = PeeringSession(self.local_as, peer_as, name=name)
        session.establish()
        self._sessions[peer_as] = session
        return session

    def remove_peer(self, peer_as: int) -> List[BestRouteChange]:
        """Tear down the session with ``peer_as`` and withdraw its routes."""
        session = self._sessions.pop(peer_as, None)
        if session is None:
            raise KeyError(peer_as)
        affected = list(session.rib_in.prefixes())
        session.close()
        for prefix in affected:
            self.loc_rib.remove_candidate(prefix, peer_as)
        return self._reselect(affected)

    def session(self, peer_as: int) -> PeeringSession:
        """Return the session with ``peer_as`` (KeyError if unknown)."""
        return self._sessions[peer_as]

    def sessions(self) -> List[PeeringSession]:
        """All sessions, in insertion order."""
        return list(self._sessions.values())

    @property
    def peer_ases(self) -> List[int]:
        """AS numbers of all configured peers."""
        return list(self._sessions)

    def add_best_route_listener(
        self, callback: Callable[[List[BestRouteChange]], None]
    ) -> None:
        """Register a callback invoked with the best-route changes of each batch."""
        self._best_route_listeners.append(callback)

    # -- message handling -------------------------------------------------

    def receive(self, message: BGPMessage) -> List[BestRouteChange]:
        """Process one message from the peer it names and update best routes."""
        session = self._sessions.get(message.peer_as)
        if session is None:
            raise KeyError(f"no session with AS {message.peer_as}")
        changes = session.process(message)
        touched: List[Prefix] = []
        for change in changes:
            if change.kind == RouteChangeKind.UNCHANGED:
                continue
            touched.append(change.prefix)
            if change.new is not None:
                self.loc_rib.set_candidate(change.new)
            else:
                self.loc_rib.remove_candidate(change.prefix, message.peer_as)
        best_changes = self._reselect(touched)
        if best_changes:
            for listener in self._best_route_listeners:
                listener(best_changes)
        return best_changes

    def receive_all(self, messages: Iterable[BGPMessage]) -> List[BestRouteChange]:
        """Process a stream of messages; returns every best-route change."""
        all_changes: List[BestRouteChange] = []
        for message in messages:
            all_changes.extend(self.receive(message))
        return all_changes

    # -- queries ----------------------------------------------------------

    def best_route(self, prefix: Prefix) -> Optional[RibEntry]:
        """The current best route for ``prefix``, or ``None``."""
        return self.loc_rib.best(prefix)

    def alternate_routes(self, prefix: Prefix) -> List[RibEntry]:
        """Candidate routes other than the current best, most preferred first."""
        best = self.loc_rib.best(prefix)
        candidates = [
            entry
            for entry in self.loc_rib.candidates(prefix)
            if best is None or entry.peer_as != best.peer_as
        ]
        return self.decision_process.rank(candidates)

    def routed_prefixes(self) -> frozenset:
        """Prefixes that currently have a best route."""
        return frozenset(self.loc_rib.prefixes())

    # -- internals --------------------------------------------------------

    def _reselect(self, prefixes: Sequence[Prefix]) -> List[BestRouteChange]:
        changes: List[BestRouteChange] = []
        for prefix in prefixes:
            old = self.loc_rib.best(prefix)
            new = self.decision_process.select(self.loc_rib.candidates(prefix))
            if old is new:
                continue
            if old is not None and new is not None and old == new:
                continue
            self.loc_rib.set_best(new, prefix=prefix)
            changes.append(BestRouteChange(prefix=prefix, old=old, new=new))
        return changes
