"""Routing Information Bases.

A SWIFTED router needs, per peering session, the set of prefixes currently
reachable and their AS paths: that is the Adj-RIB-In.  The Loc-RIB stores the
outcome of the decision process across all sessions, which is what the SWIFT
encoding algorithm reads to compute tags (the "best AS paths" column in
Fig. 5 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.prefix import Prefix

__all__ = ["AdjRibIn", "LocRib", "RibEntry", "RouteChange", "RouteChangeKind"]


@dataclass(frozen=True)
class RibEntry:
    """A route stored in a RIB: a prefix with its attributes and source peer."""

    prefix: Prefix
    attributes: PathAttributes
    peer_as: int
    learned_at: float = 0.0

    @property
    def as_path(self) -> ASPath:
        """Shortcut to the entry's AS path."""
        return self.attributes.as_path

    @property
    def next_hop(self) -> int:
        """Shortcut to the entry's next hop (an AS number in our model)."""
        return self.attributes.next_hop


class RouteChangeKind(Enum):
    """What happened to the best route for a prefix after an input event."""

    NEW = "new"
    UPDATED = "updated"
    WITHDRAWN = "withdrawn"
    UNCHANGED = "unchanged"


@dataclass(frozen=True)
class RouteChange:
    """Result of feeding one announcement/withdrawal through a RIB."""

    kind: RouteChangeKind
    prefix: Prefix
    old: Optional[RibEntry] = None
    new: Optional[RibEntry] = None


class AdjRibIn:
    """Per-peer RIB holding the routes announced on one session.

    Mirrors the RIB a border router maintains per eBGP neighbor.  SWIFT's
    Path Share metric P(l, t) — "prefixes whose paths still traverse l at t" —
    is answered from this structure via :meth:`prefixes_via_link`.
    """

    def __init__(self, peer_as: int) -> None:
        self.peer_as = peer_as
        self._routes: Dict[Prefix, RibEntry] = {}
        # Reverse index: canonical AS link -> set of prefixes whose current
        # path traverses the link.  Kept in sync on every announce/withdraw
        # so the inference engine can query path shares in O(1).
        self._link_index: Dict[Tuple[int, int], set] = {}

    # -- mutation ---------------------------------------------------------

    def announce(
        self, prefix: Prefix, attributes: PathAttributes, timestamp: float = 0.0
    ) -> RouteChange:
        """Install or replace the route for ``prefix``."""
        old = self._routes.get(prefix)
        entry = RibEntry(
            prefix=prefix,
            attributes=attributes,
            peer_as=self.peer_as,
            learned_at=timestamp,
        )
        if old is not None:
            self._unindex(old)
        self._routes[prefix] = entry
        self._index(entry)
        kind = RouteChangeKind.UPDATED if old is not None else RouteChangeKind.NEW
        return RouteChange(kind=kind, prefix=prefix, old=old, new=entry)

    def withdraw(self, prefix: Prefix, timestamp: float = 0.0) -> RouteChange:
        """Remove the route for ``prefix`` if present."""
        old = self._routes.pop(prefix, None)
        if old is None:
            return RouteChange(kind=RouteChangeKind.UNCHANGED, prefix=prefix)
        self._unindex(old)
        return RouteChange(kind=RouteChangeKind.WITHDRAWN, prefix=prefix, old=old)

    def clear(self) -> None:
        """Drop every route (session reset)."""
        self._routes.clear()
        self._link_index.clear()

    # -- queries ----------------------------------------------------------

    def get(self, prefix: Prefix) -> Optional[RibEntry]:
        """Return the route for ``prefix`` or ``None``."""
        return self._routes.get(prefix)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[Prefix]:
        return iter(self._routes)

    def prefixes(self) -> Iterator[Prefix]:
        """Iterate over all prefixes with a route."""
        return iter(self._routes)

    def entries(self) -> Iterator[RibEntry]:
        """Iterate over all stored routes."""
        return iter(self._routes.values())

    def prefixes_via_link(self, link: Tuple[int, int]) -> frozenset:
        """Prefixes whose current AS path traverses the (undirected) link."""
        canonical = link if link[0] <= link[1] else (link[1], link[0])
        members = self._link_index.get(canonical)
        return frozenset(members) if members else frozenset()

    def prefix_count_via_link(self, link: Tuple[int, int]) -> int:
        """Number of prefixes currently routed over the link."""
        canonical = link if link[0] <= link[1] else (link[1], link[0])
        members = self._link_index.get(canonical)
        return len(members) if members else 0

    def links(self) -> Iterator[Tuple[int, int]]:
        """Iterate over every AS link traversed by at least one route."""
        for link, members in self._link_index.items():
            if members:
                yield link

    def link_prefix_counts(self) -> Dict[Tuple[int, int], int]:
        """Snapshot mapping link -> number of prefixes routed over it."""
        return {link: len(members) for link, members in self._link_index.items() if members}

    def prefixes_via_as(self, asn: int) -> frozenset:
        """Prefixes whose current AS path visits the AS ``asn``."""
        result = set()
        for prefix, entry in self._routes.items():
            if entry.as_path.traverses_as(asn):
                result.add(prefix)
        return frozenset(result)

    # -- internals --------------------------------------------------------

    def _index(self, entry: RibEntry) -> None:
        for link in entry.as_path.links():
            self._link_index.setdefault(link, set()).add(entry.prefix)

    def _unindex(self, entry: RibEntry) -> None:
        for link in entry.as_path.links():
            members = self._link_index.get(link)
            if members is None:
                continue
            members.discard(entry.prefix)
            if not members:
                del self._link_index[link]


class LocRib:
    """The router-wide best-route table.

    Stores, per prefix, the best entry chosen by the decision process as well
    as the full set of candidate entries (one per peer announcing the prefix).
    The candidates are what SWIFT mines for backup next-hops: "the AS paths
    received from AS 4 also uses (5, 6)" reasoning in §5 requires knowing all
    the alternatives, not only the best one.
    """

    def __init__(self) -> None:
        self._best: Dict[Prefix, RibEntry] = {}
        self._candidates: Dict[Prefix, Dict[int, RibEntry]] = {}

    # -- mutation ---------------------------------------------------------

    def set_candidate(self, entry: RibEntry) -> None:
        """Record ``entry`` as the route offered by ``entry.peer_as``."""
        self._candidates.setdefault(entry.prefix, {})[entry.peer_as] = entry

    def remove_candidate(self, prefix: Prefix, peer_as: int) -> Optional[RibEntry]:
        """Remove the candidate from ``peer_as`` for ``prefix`` if present."""
        peers = self._candidates.get(prefix)
        if not peers:
            return None
        removed = peers.pop(peer_as, None)
        if not peers:
            self._candidates.pop(prefix, None)
        return removed

    def set_best(self, entry: Optional[RibEntry], prefix: Optional[Prefix] = None) -> None:
        """Install ``entry`` as best route (or clear it when ``entry`` is None)."""
        if entry is None:
            if prefix is None:
                raise ValueError("prefix required when clearing a best route")
            self._best.pop(prefix, None)
        else:
            self._best[entry.prefix] = entry

    def clear(self) -> None:
        """Drop all state."""
        self._best.clear()
        self._candidates.clear()

    # -- queries ----------------------------------------------------------

    def best(self, prefix: Prefix) -> Optional[RibEntry]:
        """Return the best route for ``prefix`` or ``None``."""
        return self._best.get(prefix)

    def candidates(self, prefix: Prefix) -> List[RibEntry]:
        """Return all candidate routes for ``prefix`` (any peer)."""
        return list(self._candidates.get(prefix, {}).values())

    def candidate_from(self, prefix: Prefix, peer_as: int) -> Optional[RibEntry]:
        """Return the candidate offered by a specific peer, if any."""
        return self._candidates.get(prefix, {}).get(peer_as)

    def best_entries(self) -> Iterator[RibEntry]:
        """Iterate over all best routes."""
        return iter(self._best.values())

    def prefixes(self) -> Iterator[Prefix]:
        """Iterate over prefixes that have a best route."""
        return iter(self._best)

    def __len__(self) -> int:
        return len(self._best)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._best

    def best_paths_by_prefix(self) -> Dict[Prefix, ASPath]:
        """Snapshot of prefix -> best AS path (input to the encoding algorithm)."""
        return {prefix: entry.as_path for prefix, entry in self._best.items()}
