"""Routing Information Bases.

A SWIFTED router needs, per peering session, the set of prefixes currently
reachable and their AS paths: that is the Adj-RIB-In.  The Loc-RIB stores the
outcome of the decision process across all sessions, which is what the SWIFT
encoding algorithm reads to compute tags (the "best AS paths" column in
Fig. 5 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.prefix import Prefix
from repro.bgp.trie import PrefixTrie

__all__ = ["AdjRibIn", "LocRib", "RibEntry", "RouteChange", "RouteChangeKind"]


class RibEntry:
    """A route stored in a RIB: a prefix with its attributes and source peer.

    A plain ``__slots__`` class rather than a dataclass: one entry is built
    per announcement on the replay hot path, and a frozen dataclass pays an
    ``object.__setattr__`` per field per construction.  Treat instances as
    immutable all the same.
    """

    __slots__ = ("prefix", "attributes", "peer_as", "learned_at")

    def __init__(
        self,
        prefix: Prefix,
        attributes: PathAttributes,
        peer_as: int,
        learned_at: float = 0.0,
    ) -> None:
        self.prefix = prefix
        self.attributes = attributes
        self.peer_as = peer_as
        self.learned_at = learned_at

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RibEntry):
            return NotImplemented
        return (
            self.prefix == other.prefix
            and self.attributes == other.attributes
            and self.peer_as == other.peer_as
            and self.learned_at == other.learned_at
        )

    def __hash__(self) -> int:
        return hash((self.prefix, self.attributes, self.peer_as, self.learned_at))

    def __repr__(self) -> str:
        return (
            f"RibEntry(prefix={self.prefix!r}, attributes={self.attributes!r}, "
            f"peer_as={self.peer_as}, learned_at={self.learned_at})"
        )

    @property
    def as_path(self) -> ASPath:
        """Shortcut to the entry's AS path."""
        return self.attributes.as_path

    @property
    def next_hop(self) -> int:
        """Shortcut to the entry's next hop (an AS number in our model)."""
        return self.attributes.next_hop


class RouteChangeKind(Enum):
    """What happened to the best route for a prefix after an input event."""

    NEW = "new"
    UPDATED = "updated"
    WITHDRAWN = "withdrawn"
    UNCHANGED = "unchanged"


class RouteChange:
    """Result of feeding one announcement/withdrawal through a RIB.

    Like :class:`RibEntry`, a ``__slots__`` class for construction speed on
    the replay hot path; treat instances as immutable.
    """

    __slots__ = ("kind", "prefix", "old", "new")

    def __init__(
        self,
        kind: RouteChangeKind,
        prefix: Prefix,
        old: Optional[RibEntry] = None,
        new: Optional[RibEntry] = None,
    ) -> None:
        self.kind = kind
        self.prefix = prefix
        self.old = old
        self.new = new

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RouteChange):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.prefix == other.prefix
            and self.old == other.old
            and self.new == other.new
        )

    def __repr__(self) -> str:
        return (
            f"RouteChange(kind={self.kind!r}, prefix={self.prefix!r}, "
            f"old={self.old!r}, new={self.new!r})"
        )


class AdjRibIn:
    """Per-peer RIB holding the routes announced on one session.

    Mirrors the RIB a border router maintains per eBGP neighbor.  SWIFT's
    Path Share metric P(l, t) — "prefixes whose paths still traverse l at t" —
    is answered from this structure via :meth:`prefixes_via_link`.
    """

    def __init__(self, peer_as: int) -> None:
        self.peer_as = peer_as
        self._routes: Dict[Prefix, RibEntry] = {}
        # Reverse index: canonical AS link -> set of prefixes whose current
        # path traverses the link.  Kept in sync on every announce/withdraw
        # so the inference engine can query path shares in O(1).
        self._link_index: Dict[Tuple[int, int], set] = {}
        # While a bulk run is open, link-index maintenance is deferred:
        # maps each touched prefix to its pre-run entry, so end_bulk() can
        # apply one net old->final index transition per prefix instead of
        # churning the index at every intermediate path change.
        self._bulk_original: Optional[Dict[Prefix, Optional[RibEntry]]] = None
        # LPM view over _routes, built lazily on the first longest-prefix
        # query (bulk-loaded from the sorted route table) and maintained
        # incrementally afterwards.  ``None`` means "not materialised yet"
        # so sessions that never ask LPM questions pay nothing.
        self._prefix_trie: Optional[PrefixTrie[RibEntry]] = None

    # -- mutation ---------------------------------------------------------

    def begin_bulk(self) -> None:
        """Start a bulk run: link-index updates are coalesced per prefix.

        Between :meth:`begin_bulk` and :meth:`end_bulk` the link index is
        stale for the touched prefixes (route lookups stay exact); readers
        that need path shares mid-run must close the bulk first.  Used by
        :meth:`repro.bgp.session.PeeringSession.process_batch`, where a
        path-exploration run may rewrite a prefix's path many times but only
        the net transition is observable.
        """
        if self._bulk_original is None:
            self._bulk_original = {}

    def end_bulk(self) -> None:
        """Close a bulk run, applying the net link-index transitions."""
        original = self._bulk_original
        if original is None:
            return
        self._bulk_original = None
        routes = self._routes
        for prefix, old in original.items():
            new = routes.get(prefix)
            if old is new:
                continue
            if old is not None:
                self._unindex(old)
            if new is not None:
                self._index(new)

    def announce(
        self, prefix: Prefix, attributes: PathAttributes, timestamp: float = 0.0
    ) -> RouteChange:
        """Install or replace the route for ``prefix``."""
        old = self._routes.get(prefix)
        entry = RibEntry(
            prefix=prefix,
            attributes=attributes,
            peer_as=self.peer_as,
            learned_at=timestamp,
        )
        bulk = self._bulk_original
        if bulk is not None:
            if prefix not in bulk:
                bulk[prefix] = old
        else:
            if old is not None:
                self._unindex(old)
        self._routes[prefix] = entry
        if self._prefix_trie is not None:
            self._prefix_trie.insert(prefix, entry)
        if bulk is None:
            self._index(entry)
        kind = RouteChangeKind.UPDATED if old is not None else RouteChangeKind.NEW
        return RouteChange(kind=kind, prefix=prefix, old=old, new=entry)

    def withdraw(self, prefix: Prefix, timestamp: float = 0.0) -> RouteChange:
        """Remove the route for ``prefix`` if present."""
        old = self._routes.pop(prefix, None)
        if old is None:
            return RouteChange(kind=RouteChangeKind.UNCHANGED, prefix=prefix)
        if self._prefix_trie is not None:
            self._prefix_trie.remove(prefix)
        bulk = self._bulk_original
        if bulk is not None:
            if prefix not in bulk:
                bulk[prefix] = old
        else:
            self._unindex(old)
        return RouteChange(kind=RouteChangeKind.WITHDRAWN, prefix=prefix, old=old)

    def clear(self) -> None:
        """Drop every route (session reset)."""
        self._routes.clear()
        self._link_index.clear()
        self._prefix_trie = None
        if self._bulk_original is not None:
            self._bulk_original = {}

    # -- queries ----------------------------------------------------------

    def get(self, prefix: Prefix) -> Optional[RibEntry]:
        """Return the route for ``prefix`` or ``None``."""
        return self._routes.get(prefix)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[Prefix]:
        return iter(self._routes)

    def prefixes(self) -> Iterator[Prefix]:
        """Iterate over all prefixes with a route."""
        return iter(self._routes)

    def entries(self) -> Iterator[RibEntry]:
        """Iterate over all stored routes."""
        return iter(self._routes.values())

    def prefix_trie(self) -> PrefixTrie[RibEntry]:
        """The LPM view over this session's routes (built lazily, kept live).

        First call bulk-loads the compressed trie from the sorted route
        table; afterwards announce/withdraw keep it incrementally in sync,
        so holding on to the returned trie across updates is safe.
        """
        trie = self._prefix_trie
        if trie is None:
            trie = PrefixTrie()
            trie.build_from_sorted(sorted(self._routes.items()))
            self._prefix_trie = trie
        return trie

    def lookup(self, address: int) -> Optional[RibEntry]:
        """Longest-prefix-match route for a 32-bit destination address."""
        match = self.prefix_trie().lookup(address)
        return match[1] if match is not None else None

    def covering_route(self, prefix: Prefix) -> Optional[RibEntry]:
        """The most specific route whose prefix covers ``prefix`` (or itself)."""
        match = self.prefix_trie().lookup_prefix(prefix)
        return match[1] if match is not None else None

    def covered_routes(self, prefix: Prefix) -> Iterator[Tuple[Prefix, RibEntry]]:
        """Yield routes equal to or more specific than ``prefix``, sorted."""
        return self.prefix_trie().covered_by(prefix)

    def prefixes_via_link(self, link: Tuple[int, int]) -> frozenset:
        """Prefixes whose current AS path traverses the (undirected) link."""
        canonical = link if link[0] <= link[1] else (link[1], link[0])
        members = self._link_index.get(canonical)
        return frozenset(members) if members else frozenset()

    def prefix_count_via_link(self, link: Tuple[int, int]) -> int:
        """Number of prefixes currently routed over the link."""
        canonical = link if link[0] <= link[1] else (link[1], link[0])
        members = self._link_index.get(canonical)
        return len(members) if members else 0

    def links(self) -> Iterator[Tuple[int, int]]:
        """Iterate over every AS link traversed by at least one route."""
        for link, members in self._link_index.items():
            if members:
                yield link

    def link_prefix_counts(self) -> Dict[Tuple[int, int], int]:
        """Snapshot mapping link -> number of prefixes routed over it."""
        return {link: len(members) for link, members in self._link_index.items() if members}

    def prefixes_via_as(self, asn: int) -> frozenset:
        """Prefixes whose current AS path visits the AS ``asn``."""
        result = set()
        for prefix, entry in self._routes.items():
            if entry.as_path.traverses_as(asn):
                result.add(prefix)
        return frozenset(result)

    # -- internals --------------------------------------------------------

    def _index(self, entry: RibEntry) -> None:
        for link in entry.as_path.links():
            self._link_index.setdefault(link, set()).add(entry.prefix)

    def _unindex(self, entry: RibEntry) -> None:
        for link in entry.as_path.links():
            members = self._link_index.get(link)
            if members is None:
                continue
            members.discard(entry.prefix)
            if not members:
                del self._link_index[link]


#: Shared empty mapping returned by ``LocRib.candidate_map`` for unknown
#: prefixes, so the hot path never allocates.
_NO_CANDIDATES: Dict[int, "RibEntry"] = {}


class LocRib:
    """The router-wide best-route table.

    Stores, per prefix, the best entry chosen by the decision process as well
    as the full set of candidate entries (one per peer announcing the prefix).
    The candidates are what SWIFT mines for backup next-hops: "the AS paths
    received from AS 4 also uses (5, 6)" reasoning in §5 requires knowing all
    the alternatives, not only the best one.
    """

    def __init__(self) -> None:
        self._best: Dict[Prefix, RibEntry] = {}
        self._candidates: Dict[Prefix, Dict[int, RibEntry]] = {}
        # Lazily-built LPM view over _best; same contract as
        # ``AdjRibIn._prefix_trie`` (None until first longest-prefix query,
        # incrementally maintained afterwards).
        self._best_trie: Optional[PrefixTrie[RibEntry]] = None

    # -- mutation ---------------------------------------------------------

    def set_candidate(self, entry: RibEntry) -> None:
        """Record ``entry`` as the route offered by ``entry.peer_as``."""
        self._candidates.setdefault(entry.prefix, {})[entry.peer_as] = entry

    def remove_candidate(self, prefix: Prefix, peer_as: int) -> Optional[RibEntry]:
        """Remove the candidate from ``peer_as`` for ``prefix`` if present."""
        peers = self._candidates.get(prefix)
        if not peers:
            return None
        removed = peers.pop(peer_as, None)
        if not peers:
            self._candidates.pop(prefix, None)
        return removed

    def set_best(self, entry: Optional[RibEntry], prefix: Optional[Prefix] = None) -> None:
        """Install ``entry`` as best route (or clear it when ``entry`` is None)."""
        if entry is None:
            if prefix is None:
                raise ValueError("prefix required when clearing a best route")
            removed = self._best.pop(prefix, None)
            if removed is not None and self._best_trie is not None:
                self._best_trie.remove(prefix)
        else:
            self._best[entry.prefix] = entry
            if self._best_trie is not None:
                self._best_trie.insert(entry.prefix, entry)

    def clear(self) -> None:
        """Drop all state."""
        self._best.clear()
        self._candidates.clear()
        self._best_trie = None

    # -- queries ----------------------------------------------------------

    def best(self, prefix: Prefix) -> Optional[RibEntry]:
        """Return the best route for ``prefix`` or ``None``."""
        return self._best.get(prefix)

    def candidates(self, prefix: Prefix) -> List[RibEntry]:
        """Return all candidate routes for ``prefix`` (any peer)."""
        return list(self._candidates.get(prefix, {}).values())

    def candidate_map(self, prefix: Prefix) -> Dict[int, RibEntry]:
        """The live peer -> candidate mapping of a prefix (do not mutate).

        Exposed for read-only hot paths (e.g. profile-grouped backup
        computation) that need the candidate *identities* without paying for
        a list copy per prefix.
        """
        return self._candidates.get(prefix, _NO_CANDIDATES)

    def candidate_from(self, prefix: Prefix, peer_as: int) -> Optional[RibEntry]:
        """Return the candidate offered by a specific peer, if any."""
        return self._candidates.get(prefix, {}).get(peer_as)

    def best_entries(self) -> Iterator[RibEntry]:
        """Iterate over all best routes."""
        return iter(self._best.values())

    def prefixes(self) -> Iterator[Prefix]:
        """Iterate over prefixes that have a best route."""
        return iter(self._best)

    def __len__(self) -> int:
        return len(self._best)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._best

    def best_trie(self) -> PrefixTrie[RibEntry]:
        """The LPM view over the best-route table (built lazily, kept live).

        First call bulk-loads the compressed trie from the sorted best
        table; :meth:`set_best` keeps it incrementally in sync afterwards.
        """
        trie = self._best_trie
        if trie is None:
            trie = PrefixTrie()
            trie.build_from_sorted(sorted(self._best.items()))
            self._best_trie = trie
        return trie

    def best_lookup(self, address: int) -> Optional[RibEntry]:
        """Longest-prefix-match best route for a 32-bit destination address."""
        match = self.best_trie().lookup(address)
        return match[1] if match is not None else None

    def covering_best(self, prefix: Prefix) -> Optional[RibEntry]:
        """The most specific best route whose prefix covers ``prefix``."""
        match = self.best_trie().lookup_prefix(prefix)
        return match[1] if match is not None else None

    def covered_best(self, prefix: Prefix) -> Iterator[Tuple[Prefix, RibEntry]]:
        """Yield best routes equal to or more specific than ``prefix``, sorted."""
        return self.best_trie().covered_by(prefix)

    def best_paths_by_prefix(self) -> Dict[Prefix, ASPath]:
        """Snapshot of prefix -> best AS path (input to the encoding algorithm)."""
        return {prefix: entry.as_path for prefix, entry in self._best.items()}
