"""Path-compressed (Patricia) prefix trie with longest-prefix-match lookup.

The data-plane models (two-stage forwarding table, vanilla-router FIB), the
RIBs and the covering-prefix backup aggregation all need longest-prefix-match
semantics.  The original per-bit trie (kept as
:class:`repro.bgp.trie_reference.ReferencePrefixTrie`) allocates one node per
significant bit and walks per-prefix bit tuples — at DFZ scale that is
several nodes per route plus a memoised bit decomposition per prefix, which
makes the trie itself the first casualty of internet scale.

This implementation stores *spans*: every node carries the absolute
``(network, length)`` key of the point it occupies — packed into a single
integer slot, ``(network << 6) | length`` — and an edge skips straight from
a node to the next branching point (or stored entry).  Key comparisons are
a handful of integer operations against a precomputed mask table — no
per-bit hops, no bit tuples.  Structural invariants:

* the root always exists with key ``(0, 0)`` (it stores ``0.0.0.0/0``);
* every non-root node either stores an entry or is a branching point with
  two children, so the trie holds at most ``2n - 1`` nodes (plus the root)
  for ``n`` entries — bounded memory per route regardless of prefix length;
* a child's key strictly extends its parent's key, so every walk is bounded
  by 32 levels.

Beyond the reference surface it adds bulk :meth:`PrefixTrie.build_from_sorted`
construction (one linear pass over a sorted table, the full-table load path)
and subtree-aggregate queries (:meth:`PrefixTrie.covering_entry`,
:meth:`PrefixTrie.subtree_agg`) used by the covering-prefix backup
aggregation in :mod:`repro.core.backup`.
"""

from __future__ import annotations

from sys import getsizeof
from typing import (
    Callable,
    Dict,
    Generic,
    Iterable,
    Iterator,
    Optional,
    Tuple,
    TypeVar,
)

from repro.bgp.prefix import Prefix

__all__ = ["PrefixTrie"]

V = TypeVar("V")
A = TypeVar("A")

#: ``_MASKS[l]`` keeps the top ``l`` bits of a 32-bit address.
_MASKS = tuple(
    0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
    for length in range(33)
)


class _Node(Generic[V]):
    """A trie node occupying the absolute key ``(net, plen)``.

    The key is packed as ``(net << 6) | plen`` into one slot: a DFZ-scale
    trie is millions of nodes, and one slot fewer per node is tens of
    megabytes.  ``prefix`` doubles as the has-value flag: it is set (to the
    stored :class:`Prefix` object) exactly when an entry lives here, and
    ``None`` on purely structural branching nodes.
    """

    __slots__ = ("key", "zero", "one", "prefix", "value")

    def __init__(self, net: int, plen: int) -> None:
        self.key = (net << 6) | plen
        self.zero: Optional["_Node[V]"] = None
        self.one: Optional["_Node[V]"] = None
        self.prefix: Optional[Prefix] = None
        self.value: Optional[V] = None


def _common_length(net_a: int, len_a: int, net_b: int, len_b: int) -> int:
    """Length of the longest common prefix of two ``(network, length)`` keys."""
    limit = len_a if len_a < len_b else len_b
    diff = (net_a ^ net_b) & _MASKS[limit]
    if diff == 0:
        return limit
    return 32 - diff.bit_length()


class PrefixTrie(Generic[V]):
    """Map from :class:`~repro.bgp.prefix.Prefix` to arbitrary values.

    Provides dictionary-like exact operations plus longest-prefix-match
    queries on 32-bit addresses.  Iteration order is sorted by prefix.
    Drop-in compatible with the per-bit reference twin; see the module
    docstring for the structural differences.
    """

    def __init__(self) -> None:
        self._root: _Node[V] = _Node(0, 0)
        self._size = 0

    # -- mutation ---------------------------------------------------------

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored under ``prefix``."""
        net = prefix.network
        plen = prefix.length
        masks = _MASKS
        node = self._root
        while True:
            # Invariant: node's key covers (net, plen).
            node_len = node.key & 63
            if node_len == plen:
                if node.prefix is None:
                    self._size += 1
                node.prefix = prefix
                node.value = value
                return
            bit = (net >> (31 - node_len)) & 1
            child = node.one if bit else node.zero
            if child is None:
                leaf: _Node[V] = _Node(net, plen)
                leaf.prefix = prefix
                leaf.value = value
                if bit:
                    node.one = leaf
                else:
                    node.zero = leaf
                self._size += 1
                return
            child_net = child.key >> 6
            child_len = child.key & 63
            common = _common_length(net, plen, child_net, child_len)
            if common == child_len:
                node = child
                continue
            if common == plen:
                # The new prefix sits on the edge above ``child``.
                mid: _Node[V] = _Node(net, plen)
                mid.prefix = prefix
                mid.value = value
                if (child_net >> (31 - plen)) & 1:
                    mid.one = child
                else:
                    mid.zero = child
            else:
                # Keys diverge below the edge: branch at the common point.
                mid = _Node(net & masks[common], common)
                leaf = _Node(net, plen)
                leaf.prefix = prefix
                leaf.value = value
                if (child_net >> (31 - common)) & 1:
                    mid.one = child
                    mid.zero = leaf
                else:
                    mid.zero = child
                    mid.one = leaf
            if bit:
                node.one = mid
            else:
                node.zero = mid
            self._size += 1
            return

    def build_from_sorted(self, items: Iterable[Tuple[Prefix, V]]) -> None:
        """Bulk-load a sorted stream of ``(prefix, value)`` pairs.

        ``items`` must be sorted by ``(network, length)`` — i.e. plain
        ``sorted()`` order of :class:`Prefix` — without duplicate prefixes,
        and the trie must be empty.  Construction is a single linear pass
        maintaining the rightmost spine as a stack: each new key is attached
        (after at most amortised O(1) spine pops) without re-walking the trie
        from the root, which is what makes a ~1M-entry full-table load take
        seconds instead of re-paying a root-to-leaf descent per prefix.
        """
        if self._size:
            raise ValueError("build_from_sorted requires an empty trie")
        masks = _MASKS
        spine = [self._root]
        size = 0
        previous = (-1, -1)
        for prefix, value in items:
            net = prefix.network
            plen = prefix.length
            key = (net, plen)
            if key <= previous:
                raise ValueError(
                    "build_from_sorted input must be sorted by (network, "
                    f"length) without duplicates; saw {prefix} after "
                    f"{previous}"
                )
            previous = key
            while True:
                top = spine[-1]
                top_net = top.key >> 6
                top_len = top.key & 63
                common = _common_length(net, plen, top_net, top_len)
                if common == top_len:
                    break  # top covers the new key
                below = spine[-2]
                below_len = below.key & 63
                if below_len >= common:
                    spine.pop()
                    continue
                # Split the below->top edge at the divergence point.  The
                # new key always lands on the freshly opened side (sorted
                # input keeps the in-construction region on the spine).
                mid: _Node[V] = _Node(net & masks[common], common)
                if (top_net >> (31 - common)) & 1:
                    mid.one = top
                else:
                    mid.zero = top
                if ((mid.key >> 6) >> (31 - below_len)) & 1:
                    below.one = mid
                else:
                    below.zero = mid
                spine[-1] = mid
                break
            top = spine[-1]
            top_len = top.key & 63
            if top_len == plen:
                # Only reachable for the root / 0.0.0.0/0 with sorted input.
                top.prefix = prefix
                top.value = value
            else:
                leaf: _Node[V] = _Node(net, plen)
                leaf.prefix = prefix
                leaf.value = value
                if (net >> (31 - top_len)) & 1:
                    top.one = leaf
                else:
                    top.zero = leaf
                spine.append(leaf)
            size += 1
        self._size = size

    def remove(self, prefix: Prefix) -> V:
        """Remove ``prefix`` and return its value; raise ``KeyError`` if absent."""
        net = prefix.network
        plen = prefix.length
        masks = _MASKS
        path = []
        node = self._root
        while node.key & 63 < plen:
            bit = (net >> (31 - (node.key & 63))) & 1
            child = node.one if bit else node.zero
            if child is None:
                raise KeyError(prefix)
            child_len = child.key & 63
            if child_len > plen or (net ^ (child.key >> 6)) & masks[child_len]:
                raise KeyError(prefix)
            path.append(node)
            node = child
        if node.prefix is None or (net ^ (node.key >> 6)) & masks[plen]:
            raise KeyError(prefix)
        value = node.value
        node.prefix = None
        node.value = None
        self._size -= 1
        # Contract: a valueless non-root node with fewer than two children
        # is structurally unnecessary — splice it out (and, after removing a
        # leaf, re-check its parent, which may have become a pass-through).
        while path:
            if node.prefix is not None:
                break
            zero, one = node.zero, node.one
            if zero is not None and one is not None:
                break
            child = zero if zero is not None else one
            parent = path[-1]
            if parent.zero is node:
                parent.zero = child
            else:
                parent.one = child
            if child is not None:
                break
            node = parent
            path.pop()
        return value  # type: ignore[return-value]

    def clear(self) -> None:
        """Remove every entry."""
        self._root = _Node(0, 0)
        self._size = 0

    # -- exact queries ----------------------------------------------------

    def get(self, prefix: Prefix, default: Optional[V] = None) -> Optional[V]:
        """Return the value stored exactly under ``prefix`` or ``default``."""
        node = self._find_exact(prefix)
        if node is None or node.prefix is None:
            return default
        return node.value

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._find_exact(prefix)
        return node is not None and node.prefix is not None

    def __getitem__(self, prefix: Prefix) -> V:
        node = self._find_exact(prefix)
        if node is None or node.prefix is None:
            raise KeyError(prefix)
        return node.value  # type: ignore[return-value]

    def __setitem__(self, prefix: Prefix, value: V) -> None:
        self.insert(prefix, value)

    def __delitem__(self, prefix: Prefix) -> None:
        self.remove(prefix)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # -- longest prefix match ---------------------------------------------

    def lookup(self, address: int) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix-match lookup of a 32-bit address.

        Returns the ``(prefix, value)`` pair of the most specific matching
        entry, or ``None`` when no entry covers the address.
        """
        masks = _MASKS
        best: Optional[Tuple[Prefix, V]] = None
        node = self._root
        while True:
            if node.prefix is not None:
                best = (node.prefix, node.value)  # type: ignore[assignment]
            node_len = node.key & 63
            if node_len == 32:
                return best
            bit = (address >> (31 - node_len)) & 1
            child = node.one if bit else node.zero
            if child is None:
                return best
            child_key = child.key
            if (address ^ (child_key >> 6)) & masks[child_key & 63]:
                return best
            node = child

    def lookup_prefix(self, prefix: Prefix) -> Optional[Tuple[Prefix, V]]:
        """Return the most specific entry covering ``prefix`` (possibly itself)."""
        return self.covering_entry(prefix)

    def covering_entry(
        self, prefix: Prefix, strict: bool = False
    ) -> Optional[Tuple[Prefix, V]]:
        """The most specific stored entry whose prefix covers ``prefix``.

        With ``strict=True`` the entry stored under ``prefix`` itself is
        excluded, so the answer is the nearest *proper* covering entry —
        what the backup aggregation asks when deciding whether a prefix's
        subtree collapses into its parent's entry.
        """
        net = prefix.network
        plen = prefix.length
        masks = _MASKS
        best: Optional[Tuple[Prefix, V]] = None
        node = self._root
        while True:
            node_len = node.key & 63
            if node.prefix is not None and not (strict and node_len == plen):
                best = (node.prefix, node.value)  # type: ignore[assignment]
            if node_len >= plen:
                return best
            bit = (net >> (31 - node_len)) & 1
            child = node.one if bit else node.zero
            if child is None:
                return best
            child_len = child.key & 63
            if child_len > plen or (net ^ (child.key >> 6)) & masks[child_len]:
                return best
            node = child

    def covered_by(self, prefix: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """Yield every stored entry equal to or more specific than ``prefix``.

        Entries come out in sorted prefix order (the subtree is walked
        shorter-prefix-first, zero branch before one branch).
        """
        node = self._subtree_root(prefix)
        if node is not None:
            yield from self._walk(node)

    def subtree_agg(
        self,
        prefix: Prefix,
        reducer: Callable[[A, Prefix, V], A],
        initial: A,
    ) -> A:
        """Fold ``reducer`` over every stored entry covered by ``prefix``.

        ``reducer(acc, entry_prefix, value)`` is applied in sorted prefix
        order starting from ``initial``.  One subtree descent plus a walk of
        the covered entries — no per-entry trie lookups — which is what the
        covering-prefix aggregation uses to ask "does every entry under this
        prefix share one candidate profile?" without materialising lists.
        """
        acc = initial
        node = self._subtree_root(prefix)
        if node is None:
            return acc
        stack = [node]
        while stack:
            current = stack.pop()
            if current.prefix is not None:
                acc = reducer(acc, current.prefix, current.value)
            # No ordering guarantee is needed for a fold, but keep the
            # sorted walk anyway so order-sensitive reducers behave.
            if current.one is not None:
                stack.append(current.one)
            if current.zero is not None:
                stack.append(current.zero)
        return acc

    # -- iteration --------------------------------------------------------

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Yield ``(prefix, value)`` pairs in sorted prefix order."""
        yield from self._walk(self._root)

    def keys(self) -> Iterator[Prefix]:
        """Yield stored prefixes in sorted order."""
        for prefix, _ in self.items():
            yield prefix

    def values(self) -> Iterator[V]:
        """Yield stored values in sorted prefix order."""
        for _, value in self.items():
            yield value

    def __iter__(self) -> Iterator[Prefix]:
        return self.keys()

    # -- size accounting ---------------------------------------------------

    def node_count(self) -> int:
        """Number of trie nodes currently allocated (at most ``2n`` for ``n`` entries)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if node.zero is not None:
                stack.append(node.zero)
            if node.one is not None:
                stack.append(node.one)
        return count

    def memory_bytes(self) -> int:
        """Bytes held by the trie's node structure itself.

        Counts the node objects only: the stored prefixes and values are
        references shared with the caller (the RIB, the FIB, the backup
        table) and span keys are packed machine integers, so nothing else
        is private to the trie.  Directly comparable with the per-bit
        reference twin's measurement, which additionally owns the memoised
        bit decompositions its walks require.
        """
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += getsizeof(node)
            if node.zero is not None:
                stack.append(node.zero)
            if node.one is not None:
                stack.append(node.one)
        return total

    # -- internals --------------------------------------------------------

    def _find_exact(self, prefix: Prefix) -> Optional[_Node[V]]:
        net = prefix.network
        plen = prefix.length
        node = self._root
        while node.key & 63 < plen:
            bit = (net >> (31 - (node.key & 63))) & 1
            child = node.one if bit else node.zero
            if child is None or child.key & 63 > plen:
                return None
            node = child
        if node.key != (net << 6) | plen:
            return None
        return node

    def _subtree_root(self, prefix: Prefix) -> Optional[_Node[V]]:
        """The shallowest node whose key is covered by ``prefix`` (or None)."""
        net = prefix.network
        plen = prefix.length
        masks = _MASKS
        node = self._root
        while node.key & 63 < plen:
            bit = (net >> (31 - (node.key & 63))) & 1
            child = node.one if bit else node.zero
            if child is None:
                return None
            child_len = child.key & 63
            limit = child_len if child_len < plen else plen
            if (net ^ (child.key >> 6)) & masks[limit]:
                return None
            node = child
        return node

    def _walk(self, node: _Node[V]) -> Iterator[Tuple[Prefix, V]]:
        if node.prefix is not None:
            yield node.prefix, node.value  # type: ignore[misc]
        if node.zero is not None:
            yield from self._walk(node.zero)
        if node.one is not None:
            yield from self._walk(node.one)

    def to_dict(self) -> Dict[Prefix, V]:
        """Materialise the trie as a plain dictionary."""
        return dict(self.items())
